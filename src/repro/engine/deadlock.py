"""Waits-for-graph deadlock detection.

Locking with blocking introduces deadlocks the paper leaves to the
scheduler ("in practice, the scheduler must have some power to decide to
abort transactions, as when it detects deadlocks").  The engine detects
them eagerly: every blocked access registers waits-for edges from the
waiting transaction to the (non-ancestor) holders blocking it; a cycle
means deadlock and a victim is chosen.

With nesting, the unit that can wait is any transaction in the tree, and a
conflict's real adversaries are *top-level* subtrees: a lock held by a
descendant of the waiter's own top-level ancestor cannot be waited out
(the holder may itself be waiting inside the same tree).  Edges are
therefore recorded between transactions but cycles are detected on the
graph collapsed to top-level ancestors, which both catches parent/child
self-waits (collapsed self-loop) and classic cross-tree cycles.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.core.names import TransactionName


def top_level(name: TransactionName) -> TransactionName:
    """The top-level ancestor of *name* (its first path component)."""
    return name[:1]


class WaitsForGraph:
    """Waits-for edges with cycle detection over top-level groups."""

    def __init__(self):
        self._waits: Dict[TransactionName, Set[TransactionName]] = {}
        # Waiters bucketed by top-level ancestor, so subtree removal
        # (fired on every abort) scans one tree's waiters instead of
        # every waiter in the engine.
        self._tops: Dict[TransactionName, Set[TransactionName]] = {}

    def add_wait(
        self,
        waiter: TransactionName,
        blockers: Iterable[TransactionName],
    ) -> Optional[List[TransactionName]]:
        """Record that *waiter* waits on *blockers*.

        Returns a deadlock cycle as a list of top-level transaction names
        (closing back on the first element) when one is created, else None.
        """
        edges = self._waits.setdefault(waiter, set())
        edges.update(blockers)
        self._tops.setdefault(top_level(waiter), set()).add(waiter)
        return self.find_cycle(top_level(waiter))

    def remove_waiter(self, waiter: TransactionName) -> None:
        """Drop every edge out of *waiter* (it was granted or aborted)."""
        if self._waits.pop(waiter, None) is not None:
            top = top_level(waiter)
            bucket = self._tops.get(top)
            if bucket is not None:
                bucket.discard(waiter)
                if not bucket:
                    del self._tops[top]

    def remove_subtree(self, doomed: TransactionName) -> None:
        """Drop edges out of every waiter in *doomed*'s subtree."""
        if not doomed:
            self._waits.clear()
            self._tops.clear()
            return
        top = top_level(doomed)
        bucket = self._tops.get(top)
        if not bucket:
            return
        if len(doomed) == 1:
            # Whole tree: the bucket is exactly the victim set.
            for waiter in bucket:
                del self._waits[waiter]
            del self._tops[top]
            return
        victims = [
            waiter
            for waiter in bucket
            if waiter[: len(doomed)] == doomed
        ]
        for waiter in victims:
            del self._waits[waiter]
            bucket.discard(waiter)
        if not bucket:
            del self._tops[top]

    def _group_edges(self) -> Dict[TransactionName, Set[TransactionName]]:
        grouped: Dict[TransactionName, Set[TransactionName]] = {}
        for waiter, blockers in self._waits.items():
            source = top_level(waiter)
            targets = grouped.setdefault(source, set())
            for blocker in blockers:
                target = top_level(blocker)
                if target != source:
                    targets.add(target)
        return grouped

    def find_cycle(
        self, start: Optional[TransactionName] = None
    ) -> Optional[List[TransactionName]]:
        """Find a cycle among top-level groups; return it or None.

        When *start* is given only cycles reachable from it are sought
        (sufficient after adding edges out of that group).
        """
        grouped = self._group_edges()
        roots: Sequence[TransactionName]
        if start is not None:
            roots = [start]
        else:
            roots = list(grouped)
        for root in roots:
            cycle = self._dfs_cycle(root, grouped)
            if cycle is not None:
                return cycle
        return None

    @staticmethod
    def _dfs_cycle(
        root: TransactionName,
        grouped: Dict[TransactionName, Set[TransactionName]],
    ) -> Optional[List[TransactionName]]:
        path: List[TransactionName] = []
        on_path: Set[TransactionName] = set()
        finished: Set[TransactionName] = set()

        def visit(node: TransactionName) -> Optional[List[TransactionName]]:
            if node in on_path:
                at = path.index(node)
                return path[at:] + [node]
            if node in finished:
                return None
            path.append(node)
            on_path.add(node)
            for target in sorted(grouped.get(node, ())):
                found = visit(target)
                if found is not None:
                    return found
            on_path.discard(node)
            path.pop()
            finished.add(node)
            return None

        return visit(root)


def choose_victim(
    cycle: Sequence[TransactionName],
    started_at: Dict[TransactionName, float],
) -> TransactionName:
    """Pick the deadlock victim: the youngest top-level in the cycle.

    Youngest-first minimises wasted work; ties break on the name so the
    choice is deterministic.
    """
    members = list(dict.fromkeys(cycle))
    return max(
        members,
        key=lambda name: (started_at.get(name, 0.0), name),
    )
