"""System R-style savepoints built on nested transactions.

The paper's introduction calls System R's recovery blocks "a primitive
example" of nesting: "a recovery block can be aborted and the transaction
restarted at the last savepoint".  This module recovers that interface
*from* nesting: a :class:`SavepointSession` wraps one engine transaction
and maintains a chain of open subtransactions; ``savepoint()`` pushes a
fresh child, ``rollback_to(sp)`` aborts the suffix of the chain (undoing
exactly the work since that savepoint, courtesy of Moss' version map),
and ``commit()`` folds the chain up and commits the wrapped transaction.

Example::

    session = SavepointSession(engine.begin_top())
    session.perform("acct", BankAccount.deposit(10))
    mark = session.savepoint()
    session.perform("acct", BankAccount.withdraw(999))
    session.rollback_to(mark)          # the withdraw never happened
    session.commit()
"""

from __future__ import annotations

from typing import Any, List

from repro.core.object_spec import Operation
from repro.engine.transaction import Transaction
from repro.errors import InvalidTransactionState


class Savepoint:
    """An opaque marker returned by :meth:`SavepointSession.savepoint`."""

    def __init__(self, depth: int):
        self._depth = depth

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<Savepoint depth=%d>" % self._depth


class SavepointSession:
    """Savepoint semantics over one nested transaction.

    The wrapped transaction's work always happens in the deepest open
    subtransaction, so rolling back to a savepoint aborts a suffix of the
    chain -- exactly the state restoration Moss' algorithm provides.
    """

    def __init__(self, txn: Transaction):
        self._root = txn
        self._chain: List[Transaction] = [txn.begin_child()]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def transaction(self) -> Transaction:
        """The wrapped top transaction."""
        return self._root

    @property
    def depth(self) -> int:
        """Number of open savepoint frames (>= 1 while the session lives)."""
        return len(self._chain)

    def _require_open(self) -> None:
        if not self._chain:
            raise InvalidTransactionState("savepoint session is closed")
        if not self._root.is_active:
            raise InvalidTransactionState(
                "the session's transaction is no longer active"
            )

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def perform(self, object_name: str, operation: Operation) -> Any:
        """Run one access inside the current savepoint frame."""
        self._require_open()
        return self._chain[-1].perform(object_name, operation)

    def begin_child(self) -> Transaction:
        """Open an ordinary subtransaction inside the current frame."""
        self._require_open()
        return self._chain[-1].begin_child()

    def savepoint(self) -> Savepoint:
        """Mark the current state; later work can be undone back to here."""
        self._require_open()
        marker = Savepoint(len(self._chain))
        self._chain.append(self._chain[-1].begin_child())
        return marker

    def rollback_to(self, savepoint: Savepoint) -> None:
        """Undo every access performed since *savepoint* was taken.

        The savepoint stays valid: work may resume and be rolled back to
        the same mark again (System R semantics).
        """
        self._require_open()
        if savepoint._depth > len(self._chain) - 1:
            raise InvalidTransactionState(
                "savepoint is no longer on the chain"
            )
        while len(self._chain) > savepoint._depth:
            frame = self._chain.pop()
            if frame.is_active:
                frame.abort()
        # Reopen a working frame at the savepoint.
        self._chain.append(self._chain[-1].begin_child())

    def rollback_all(self) -> None:
        """Undo everything since the session started (the session stays
        usable)."""
        self._require_open()
        while len(self._chain) > 1:
            frame = self._chain.pop()
            if frame.is_active:
                frame.abort()
        first = self._chain.pop()
        if first.is_active:
            first.abort()
        self._chain.append(self._root.begin_child())

    def commit(self, value: Any = None) -> None:
        """Fold up every open frame and commit the wrapped transaction."""
        self._require_open()
        while self._chain:
            frame = self._chain.pop()
            if frame.is_active:
                frame.commit()
        self._root.commit(value)

    def abort(self) -> None:
        """Abort the wrapped transaction (and every frame with it)."""
        self._require_open()
        self._chain.clear()
        self._root.abort()
