"""Model-alphabet trace recording for engine runs.

When tracing is enabled the engine emits exactly the operation alphabet of
the formal model (:mod:`repro.core.events`) in the order its atomic steps
happen.  The recorder also keeps enough structure (tree shape, access
classification, commit values) to rebuild a
:class:`~repro.core.names.SystemType` after the fact, so a finished run can
be replayed against the R/W Locking system automata and checked for serial
correctness -- the engine-conformance pipeline of
:mod:`repro.checking.conformance`.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict, List, Optional, Tuple

from repro.core.events import Event
from repro.core.names import (
    ROOT,
    AccessSpec,
    SystemType,
    TransactionName,
)
from repro.core.object_spec import ObjectSpec, Operation


class TraceRecorder:
    """Collects an engine run's events and its emergent system type.

    With ``max_events`` set, the recorder runs in bounded ring-buffer
    mode: only the newest *max_events* events are retained
    (:attr:`dropped_events` counts the evicted head), so long fuzz or
    soak runs can keep tracing without unbounded memory growth.  A
    truncated trace still supports tail inspection and debugging, but
    not conformance replay -- the replay needs the events from the
    very first CREATE, so leave ``max_events`` unset for checking runs.
    """

    def __init__(self, max_events: Optional[int] = None):
        if max_events is not None and max_events < 1:
            raise ValueError(
                "max_events must be positive, got %r" % (max_events,)
            )
        self.max_events = max_events
        self.events: "deque[Event]" = deque(maxlen=max_events)
        self.dropped_events = 0
        self._children: Dict[TransactionName, List[TransactionName]] = {
            ROOT: []
        }
        self._accesses: Dict[TransactionName, AccessSpec] = {}
        self.commit_values: Dict[TransactionName, Any] = {}

    @property
    def bounded(self) -> bool:
        return self.max_events is not None

    def record(self, event: Event) -> None:
        """Append one event to the trace (evicting the head if bounded)."""
        if (
            self.max_events is not None
            and len(self.events) == self.max_events
        ):
            self.dropped_events += 1
        self.events.append(event)

    def record_internal(self, name: TransactionName) -> None:
        """Register *name* as an internal transaction node."""
        mother = name[:-1]
        self._children.setdefault(mother, []).append(name)
        self._children.setdefault(name, [])

    def record_access(
        self,
        name: TransactionName,
        object_name: str,
        operation: Operation,
    ) -> None:
        """Register *name* as an access leaf."""
        mother = name[:-1]
        self._children.setdefault(mother, []).append(name)
        self._accesses[name] = AccessSpec(object_name, operation)

    def record_commit_value(
        self, name: TransactionName, value: Any
    ) -> None:
        self.commit_values[name] = value

    def schedule(self) -> Tuple[Event, ...]:
        """The recorded events as an immutable schedule."""
        return tuple(self.events)

    def system_type(self, specs: Dict[str, ObjectSpec]) -> SystemType:
        """Rebuild the concrete system type this run inhabited."""
        return SystemType(self._children, self._accesses, specs)

    def analyze(self, specs: Dict[str, ObjectSpec]):
        """Run the schedule linter and race detector on this trace.

        Returns ``(schedule_report, race_report)``; see
        :mod:`repro.analysis`.  Imported lazily so plain engine runs do
        not pay for the analysis machinery.
        """
        from repro.analysis import analyze_trace

        return analyze_trace(self.schedule(), self.system_type(specs))


class NullRecorder:
    """A recorder that drops everything (tracing disabled).

    It deliberately has no :meth:`~TraceRecorder.system_type`: the
    conformance checker uses that method's absence to reject engines
    that were not constructed with ``trace=True``.  It *does* expose an
    empty :meth:`schedule` so digest/replay code can hash "the trace"
    uniformly across traced and untraced engines.
    """

    def record(self, event: Event) -> None:
        pass

    def schedule(self) -> Tuple[Event, ...]:
        return ()

    def record_internal(self, name: TransactionName) -> None:
        pass

    def record_access(self, name, object_name, operation) -> None:
        pass

    def record_commit_value(self, name, value) -> None:
        pass
