"""Lock modes and conflict rules."""

from __future__ import annotations

import enum
from typing import Iterable, Set

from repro.core.names import TransactionName, is_ancestor


class LockMode(enum.Enum):
    """Read or write; two locks conflict when held by different
    transactions and at least one is a write lock."""

    READ = "read"
    WRITE = "write"


def conflicts(mode_a: LockMode, mode_b: LockMode) -> bool:
    """Return True if the two modes conflict (ignoring holders)."""
    return mode_a is LockMode.WRITE or mode_b is LockMode.WRITE


def covers(held: LockMode, wanted: LockMode) -> bool:
    """True when a held *held*-mode lock is at least as strong as *wanted*.

    Write covers both modes; read covers only read.  The lock-grant
    fast path uses this ordering to decide whether an ancestor's
    existing lock already subsumes a request.
    """
    return held is LockMode.WRITE or wanted is LockMode.READ


def blocking_holders(
    requester: TransactionName,
    mode: LockMode,
    write_holders: Iterable[TransactionName],
    read_holders: Iterable[TransactionName],
) -> Set[TransactionName]:
    """Holders that prevent *requester* from acquiring *mode*.

    Moss' rule: every holder of a conflicting lock must be an ancestor of
    the requester.  The returned set contains the non-ancestor conflicting
    holders (empty means the request may be granted).
    """
    blockers = {
        holder
        for holder in write_holders
        if not is_ancestor(holder, requester)
    }
    if mode is LockMode.WRITE:
        blockers.update(
            holder
            for holder in read_holders
            if not is_ancestor(holder, requester)
        )
    return blockers
