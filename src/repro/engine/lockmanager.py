"""The Moss R/W lock manager: one :class:`ManagedObject` per shared object.

A :class:`ManagedObject` is the engine-side twin of the M(X) automaton
(:mod:`repro.core.rw_object`): the same lockholder sets, the same version
map, the same grant rule, the same commit/abort lock movement.  The
conformance harness (:mod:`repro.checking.conformance`) replays engine
traces against M(X) to demonstrate the two stay in lockstep.

Hot-path layer
--------------

Moss' grant rule only asks whether every *conflicting holder is an
ancestor of the requester*, and his own invariants make that decidable
without scanning the holder sets (see ``docs/PERFORMANCE.md`` for the
full argument):

* write holders always form an ancestry chain (Lemma 21), so "all
  write holders are ancestors of R" is equivalent to "the *deepest*
  write holder is an ancestor of R" -- one O(1) interned-ancestry test
  (:class:`repro.core.names.NameTable`);
* the ancestors of R form a chain, so "all read holders are ancestors
  of R" can only hold when the read holders form a chain themselves;
  the object tracks chain-ness and the deepest read holder
  incrementally, giving the same O(1) test for write requests.

When the fast test cannot certify a grant the unoptimised
:func:`~repro.engine.locks.blocking_holders` scan runs, so
:class:`~repro.errors.LockDenied` blockers and messages are
byte-identical to the pre-optimisation engine.  ``FAST_GRANTS = False``
(class or instance) disables the fast path entirely; the benchmark
``bench_e20_lockpath`` uses that switch to measure the win.

The lock tables additionally keep a *depth index* (holders bucketed by
tree depth), making subtree queries and abort discards proportional to
the holders at-or-below the doomed depth instead of the whole table,
and a :attr:`ManagedObject.generation` counter bumped by commit/abort
lock movement so observers can cheaply detect change windows.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from repro.core.names import (
    ROOT,
    TransactionName,
    default_table,
    parent,
)
from repro.core.object_spec import ObjectSpec, Operation
from repro.engine.locks import LockMode, blocking_holders
from repro.engine.versions import VersionMap
from repro.errors import EngineError, LockDenied
from repro.kernel.store import ObjectStore


class ManagedObject:
    """Lock table plus version map for one object."""

    #: Enable the O(1) grant fast path.  The slow path is always kept
    #: correct and byte-identical; flipping this off (class-wide or per
    #: instance) restores the pre-optimisation scan for benchmarking
    #: and differential testing.
    FAST_GRANTS = True

    #: This class reports every grant through :attr:`granted_hook`, so
    #: a :class:`LockManager` may index which objects each top-level
    #: tree holds locks on (and skip the others on commit/abort).
    HOLDER_INDEXED = True

    #: Interned-name table used for O(1) ancestry tests.
    NAMES = default_table()

    def __init__(self, spec: ObjectSpec):
        self.spec = spec
        self.write_holders: Set[TransactionName] = {ROOT}
        self.read_holders: Set[TransactionName] = set()
        self.versions = VersionMap(spec.initial_value())
        #: Bumped by every commit/abort/rehome lock movement (never by
        #: a plain grant): a cheap change ticket for holders_view()
        #: readers and for tests pinning fast-path invalidation.
        self.generation = 0
        #: Optional ``(owner)`` callable invoked after every grant;
        #: installed by :class:`LockManager` to maintain its
        #: held-objects index.  ``None`` costs one attribute test.
        self.granted_hook = None
        # Depth-indexed holder sets: depth -> holders at that depth.
        self._write_depths: Dict[int, Set[TransactionName]] = {0: {ROOT}}
        self._read_depths: Dict[int, Set[TransactionName]] = {}
        # Fast-path aggregates.  Write holders form an ancestry chain,
        # so the deepest one decides grants; read holders are tracked
        # with an incremental chain-ness flag (see module docstring).
        self._deepest_write: Optional[TransactionName] = ROOT
        self._deepest_read: Optional[TransactionName] = None
        self._reads_chain = True

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def current_value(self) -> Any:
        """The current state of the object (deepest write version)."""
        return self.versions.current()

    def committed_value(self) -> Any:
        """The state as committed to the root (version of T0)."""
        return self.versions.get(ROOT)

    def blockers(
        self,
        requester: TransactionName,
        mode: LockMode,
        operation: Optional[Operation] = None,
    ) -> Set[TransactionName]:
        """Non-ancestor conflicting holders preventing the request.

        *operation* is accepted for interface parity with semantic
        locking; Moss' rule only needs the mode.  When the O(1)
        aggregates certify the grant the holder scan is skipped
        entirely; otherwise the unoptimised scan runs and its result
        (and therefore every ``LockDenied``) is byte-identical to the
        pre-fast-path engine.
        """
        # Fast certificate -- sound, not complete: taking the early
        # return implies the scan would find no blockers; falling
        # through only means the scan must decide.  The ancestry tests
        # are inlined tuple-prefix compares because the requester is a
        # fresh access leaf the NameTable deliberately never interns
        # (aggregate holders, by contrast, are table-backed tuples).
        if self.FAST_GRANTS:
            deepest_write = self._deepest_write
            if (
                deepest_write is None
                or requester[: len(deepest_write)] == deepest_write
            ):
                if mode is LockMode.READ or not self.read_holders:
                    return set()
                if self._reads_chain:
                    deepest_read = self._deepest_read
                    if requester[: len(deepest_read)] == deepest_read:
                        return set()
        return blocking_holders(
            requester, mode, self.write_holders, self.read_holders
        )

    def holders(self) -> Tuple[Set[TransactionName], Set[TransactionName]]:
        """Return ``(write_holders, read_holders)`` copies.

        .. deprecated::
            Kept for API compatibility.  Inspection-only readers
            (conformance, observability) should use
            :meth:`holders_view`, which does not copy.
        """
        return set(self.write_holders), set(self.read_holders)

    def holders_view(
        self,
    ) -> Tuple[Set[TransactionName], Set[TransactionName]]:
        """Zero-copy ``(write_holders, read_holders)`` read-only view.

        The returned sets are the live tables: treat them as frozen
        and do not hold them across engine transitions
        (:attr:`generation` changes when locks move).  Mutating lock
        state outside the transition methods violates the repo's
        CD001 invariant.
        """
        return self.write_holders, self.read_holders

    # ------------------------------------------------------------------
    # Aggregate maintenance (single entry points for holder mutation)
    # ------------------------------------------------------------------
    def _add_holder(self, name: TransactionName, mode: LockMode) -> None:
        """Add *name* to the *mode* holder set, keeping aggregates."""
        if mode is LockMode.WRITE:
            if name in self.write_holders:
                return
            self.write_holders.add(name)
            self._write_depths.setdefault(len(name), set()).add(name)
            deepest = self._deepest_write
            if deepest is None or len(name) >= len(deepest):
                self._deepest_write = name
            return
        if name in self.read_holders:
            return
        self.read_holders.add(name)
        self._read_depths.setdefault(len(name), set()).add(name)
        if not self._reads_chain:
            return
        deepest = self._deepest_read
        if deepest is None or name[: len(deepest)] == deepest:
            self._deepest_read = name
        elif deepest[: len(name)] != name:
            # Incomparable with the deepest holder: the read holders
            # no longer form a chain, so no write request can pass the
            # fast test until aborts/commits restore chain-ness.
            self._reads_chain = False
            self._deepest_read = None

    def _discard_holder(
        self, name: TransactionName, mode: LockMode
    ) -> None:
        """Remove *name* from the *mode* holder set, keeping aggregates."""
        if mode is LockMode.WRITE:
            if name not in self.write_holders:
                return
            self.write_holders.discard(name)
            bucket = self._write_depths[len(name)]
            bucket.discard(name)
            if not bucket:
                del self._write_depths[len(name)]
            if name == self._deepest_write:
                self._deepest_write = self._max_depth_member(
                    self._write_depths
                )
            return
        if name not in self.read_holders:
            return
        self.read_holders.discard(name)
        bucket = self._read_depths[len(name)]
        bucket.discard(name)
        if not bucket:
            del self._read_depths[len(name)]
        if self._reads_chain:
            # Any subset of a chain is a chain; only the deepest
            # pointer can change, and the new deepest is simply the
            # deepest survivor.
            if name == self._deepest_read:
                self._deepest_read = self._max_depth_member(
                    self._read_depths
                )
        else:
            # A removal can restore chain-ness; rebuild from the
            # surviving holders.
            self._rebuild_read_aggregates()

    @staticmethod
    def _max_depth_member(
        depths: Dict[int, Set[TransactionName]],
    ) -> Optional[TransactionName]:
        if not depths:
            return None
        deepest = depths[max(depths)]
        return max(deepest)

    def _rebuild_read_aggregates(self) -> None:
        if not self.read_holders:
            self._deepest_read = None
            self._reads_chain = True
            return
        ordered = sorted(self.read_holders, key=len)
        names = self.NAMES
        for shallow, deep in zip(ordered, ordered[1:]):
            if not names.is_ancestor(shallow, deep):
                self._reads_chain = False
                self._deepest_read = None
                return
        self._reads_chain = True
        self._deepest_read = ordered[-1]

    def _subtree_members(
        self,
        depths: Dict[int, Set[TransactionName]],
        name: TransactionName,
    ) -> List[TransactionName]:
        """Holders at-or-below *name*, via the depth index."""
        cutoff = len(name)
        found: List[TransactionName] = []
        for depth, members in depths.items():
            if depth < cutoff:
                continue
            if depth == cutoff:
                if name in members:
                    found.append(name)
            else:
                for holder in members:
                    if holder[:cutoff] == name:
                        found.append(holder)
        return found

    # ------------------------------------------------------------------
    # Moss' transitions
    # ------------------------------------------------------------------
    def acquire(
        self,
        owner: TransactionName,
        operation: Operation,
        mode: LockMode,
    ) -> Any:
        """Grant *owner* the lock and apply *operation*; return its result.

        Raises :class:`~repro.errors.LockDenied` (carrying the blockers)
        when a conflicting non-ancestor holds a lock.  On a write grant the
        new object state is stored as *owner*'s version; reads leave the
        version map untouched.
        """
        blockers = self.blockers(owner, mode)
        if blockers:
            raise LockDenied(
                "%s blocked on %r by %r"
                % (self.spec.name, owner, sorted(blockers)),
                blockers=blockers,
            )
        result, new_value = self.spec.apply(self.current_value(), operation)
        if mode is LockMode.WRITE:
            self._add_holder(owner, LockMode.WRITE)
            self.versions.install(owner, new_value)
        else:
            self._add_holder(owner, LockMode.READ)
        hook = self.granted_hook
        if hook is not None:
            hook(owner)
        return result

    def on_commit(self, name: TransactionName) -> None:
        """Pass *name*'s locks (and version) to its parent.

        The move is specialised rather than discard+add: when the
        *deepest* holder of a chain moves up, its replacement deepest
        is exactly its parent (every other holder was an ancestor of
        *name*, hence at the parent's depth or above), so no bucket
        re-scan is needed -- this runs once per access under Moss'
        instantaneous-leaf modelling.
        """
        mother = parent(name)
        if mother is None:
            raise EngineError("cannot commit the root")
        moved = False
        if name in self.write_holders:
            self.write_holders.discard(name)
            bucket = self._write_depths[len(name)]
            bucket.discard(name)
            if not bucket:
                del self._write_depths[len(name)]
            if mother not in self.write_holders:
                self.write_holders.add(mother)
                self._write_depths.setdefault(
                    len(mother), set()
                ).add(mother)
            if name == self._deepest_write:
                self._deepest_write = mother
            self.versions.promote(name)
            moved = True
        if name in self.read_holders:
            self.read_holders.discard(name)
            bucket = self._read_depths[len(name)]
            bucket.discard(name)
            if not bucket:
                del self._read_depths[len(name)]
            if mother not in self.read_holders:
                self.read_holders.add(mother)
                self._read_depths.setdefault(
                    len(mother), set()
                ).add(mother)
            if self._reads_chain:
                # Replacing a chain member with its parent keeps the
                # chain (the parent is comparable to every holder the
                # member was comparable to).
                if name == self._deepest_read:
                    self._deepest_read = mother
            else:
                self._rebuild_read_aggregates()
            moved = True
        if moved:
            self.generation += 1

    def on_abort(self, name: TransactionName) -> None:
        """Discard every lock and version held below *name* (inclusive).

        The common no-op abort (nothing held below *name*) returns
        without rebuilding either holder set; the depth index makes the
        discard itself proportional to the holders at-or-below
        *name*'s depth rather than the whole table.
        """
        doomed_writes = self._subtree_members(self._write_depths, name)
        doomed_reads = self._subtree_members(self._read_depths, name)
        if not doomed_writes and not doomed_reads:
            # No locks below means no versions below either -- except
            # under deliberately broken policies (analysis faults) that
            # strand versions; the version map is small, so the scan
            # keeps even that case correct.
            if self.versions.discard_subtree(name):
                self.generation += 1
            return
        for holder in doomed_writes:
            self._discard_holder(holder, LockMode.WRITE)
        for holder in doomed_reads:
            self._discard_holder(holder, LockMode.READ)
        self.versions.discard_subtree(name)
        self.generation += 1

    def rehome(
        self,
        access: TransactionName,
        owner: TransactionName,
        mode: LockMode,
    ) -> None:
        """Move *access*'s fresh lock (and version) directly to *owner*.

        Flat policies grant to an ancestor rather than the access
        itself; the transition keeps all lock-table mutation inside
        the managed object.
        """
        if mode is LockMode.WRITE:
            self._discard_holder(access, LockMode.WRITE)
            self._add_holder(owner, LockMode.WRITE)
            if self.versions.has(access):
                value = self.versions.get(access)
                self.versions.discard_subtree(access)
                self.versions.install(owner, value)
        else:
            self._discard_holder(access, LockMode.READ)
            self._add_holder(owner, LockMode.READ)
        self.generation += 1

    def is_locked_by_subtree(self, name: TransactionName) -> bool:
        """True if some lock is held by *name* or a descendant."""
        cutoff = len(name)
        for depths in (self._write_depths, self._read_depths):
            for depth, members in depths.items():
                if depth < cutoff:
                    continue
                if depth == cutoff:
                    if name in members:
                        return True
                elif any(
                    holder[:cutoff] == name for holder in members
                ):
                    return True
        return False

    def holds_lock(self, name: TransactionName) -> bool:
        """True if *name* itself holds a read or write lock here."""
        return name in self.write_holders or name in self.read_holders


class LockManager:
    """All managed objects of one engine, kept in an ObjectStore.

    *make_managed* lets a locking policy substitute its own per-object
    structure (e.g. semantic locking's undo-log objects); the default is
    the Moss :class:`ManagedObject`.  *shards*/*sharding* configure the
    kernel :class:`~repro.kernel.store.ObjectStore` so the thread-safe
    facade can stripe its locking per shard.

    When every managed object supports it (``HOLDER_INDEXED``), the
    manager maintains a *held-objects index* -- for each top-level
    tree, the set of objects where that tree holds any lock -- fed by
    the objects' grant hooks.  Commit/abort propagation then visits
    only the objects the finishing tree could possibly hold, in store
    registration order (so the ``touched`` lists, and therefore traces
    and fuzz digests, are byte-identical to the full scan).
    """

    def __init__(
        self,
        specs: Iterable[ObjectSpec],
        make_managed=None,
        shards: int = 1,
        sharding=None,
    ):
        if make_managed is None:
            make_managed = ManagedObject
        self.store = ObjectStore(
            specs, make_managed, shards=shards, sharding=sharding
        )
        #: The name-to-ManagedObject mapping (the store's own dict).
        self.objects: Dict[str, ManagedObject] = self.store.objects
        #: Optional callable ``(kind, name, objects)`` invoked after every
        #: lock-table transition (``"acquire"``/``"commit"``/``"abort"``).
        #: The deterministic fuzzer uses it to digest lock movement for
        #: byte-for-byte replay checking; ``None`` costs one attribute
        #: test per transition.
        self.observer = None
        #: Optional :class:`repro.obs.Observer` fed the same transitions
        #: (lock inheritance/release metrics).  Installed by the engine.
        self.obs = None
        # Held-objects index: top-level name -> object names where that
        # tree holds any lock.  A superset (pruned on tree completion),
        # so commit/abort may use it to skip untouched objects.
        self._held_by_top: Dict[TransactionName, Set[str]] = {}
        self._indexed = all(
            getattr(type(managed), "HOLDER_INDEXED", False)
            for managed in self.objects.values()
        )
        if self._indexed:
            for object_name, managed in self.objects.items():
                managed.granted_hook = self._granted_hook(object_name)

    def _granted_hook(self, object_name: str):
        held = self._held_by_top

        def granted(owner: TransactionName) -> None:
            top = owner[:1]
            if top:
                bucket = held.get(top)
                if bucket is None:
                    bucket = held.setdefault(top, set())
                bucket.add(object_name)

        return granted

    def _candidates(self, name: TransactionName):
        """Objects that may hold locks of *name*'s tree, in store order."""
        if not self._indexed or not name:
            return self.objects
        held = self._held_by_top.get(name[:1])
        if not held:
            return ()
        if len(held) == len(self.objects):
            return self.objects
        rank = self.store.rank_of
        return sorted(held, key=rank)

    def _prune(self, top: TransactionName) -> None:
        """Drop index entries for objects *top*'s tree no longer holds."""
        held = self._held_by_top.get(top)
        if held is None:
            return
        released = [
            object_name
            for object_name in held
            if not self.objects[object_name].is_locked_by_subtree(top)
        ]
        for object_name in released:
            held.discard(object_name)
        if not held:
            self._held_by_top.pop(top, None)

    def notify(
        self, kind: str, name: TransactionName, objects: Iterable[str]
    ) -> None:
        """Report one lock-table transition to the observers, if any."""
        if self.observer is not None or self.obs is not None:
            objects = tuple(objects)
            if self.observer is not None:
                self.observer(kind, name, objects)
            if self.obs is not None:
                self.obs.lock_transition(kind, name, objects)

    def object(self, name: str) -> ManagedObject:
        return self.store.object(name)

    def on_commit(self, name: TransactionName) -> List[str]:
        """Propagate a commit to every object; return the touched names."""
        touched = []
        for object_name in self._candidates(name):
            managed = self.objects[object_name]
            if managed.holds_lock(name):
                managed.on_commit(name)
                touched.append(object_name)
        if self._indexed and len(name) == 1:
            # A committing top-level passes its locks to the root; its
            # tree no longer holds anything anywhere.
            self._prune(name)
        self.notify("commit", name, touched)
        return touched

    def on_abort(self, name: TransactionName) -> List[str]:
        """Propagate an abort to every object; return the touched names."""
        touched = []
        for object_name in self._candidates(name):
            managed = self.objects[object_name]
            if managed.is_locked_by_subtree(name):
                managed.on_abort(name)
                touched.append(object_name)
        if self._indexed and name:
            self._prune(name[:1])
        self.notify("abort", name, touched)
        return touched
