"""The Moss R/W lock manager: one :class:`ManagedObject` per shared object.

A :class:`ManagedObject` is the engine-side twin of the M(X) automaton
(:mod:`repro.core.rw_object`): the same lockholder sets, the same version
map, the same grant rule, the same commit/abort lock movement.  The
conformance harness (:mod:`repro.checking.conformance`) replays engine
traces against M(X) to demonstrate the two stay in lockstep.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from repro.core.names import (
    ROOT,
    TransactionName,
    is_descendant,
    parent,
)
from repro.core.object_spec import ObjectSpec, Operation
from repro.engine.locks import LockMode, blocking_holders
from repro.engine.versions import VersionMap
from repro.errors import EngineError, LockDenied
from repro.kernel.store import ObjectStore


class ManagedObject:
    """Lock table plus version map for one object."""

    def __init__(self, spec: ObjectSpec):
        self.spec = spec
        self.write_holders: Set[TransactionName] = {ROOT}
        self.read_holders: Set[TransactionName] = set()
        self.versions = VersionMap(spec.initial_value())

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def current_value(self) -> Any:
        """The current state of the object (deepest write version)."""
        return self.versions.current()

    def committed_value(self) -> Any:
        """The state as committed to the root (version of T0)."""
        return self.versions.get(ROOT)

    def blockers(
        self,
        requester: TransactionName,
        mode: LockMode,
        operation: Optional[Operation] = None,
    ) -> Set[TransactionName]:
        """Non-ancestor conflicting holders preventing the request.

        *operation* is accepted for interface parity with semantic
        locking; Moss' rule only needs the mode.
        """
        return blocking_holders(
            requester, mode, self.write_holders, self.read_holders
        )

    def holders(self) -> Tuple[Set[TransactionName], Set[TransactionName]]:
        """Return ``(write_holders, read_holders)`` copies."""
        return set(self.write_holders), set(self.read_holders)

    # ------------------------------------------------------------------
    # Moss' transitions
    # ------------------------------------------------------------------
    def acquire(
        self,
        owner: TransactionName,
        operation: Operation,
        mode: LockMode,
    ) -> Any:
        """Grant *owner* the lock and apply *operation*; return its result.

        Raises :class:`~repro.errors.LockDenied` (carrying the blockers)
        when a conflicting non-ancestor holds a lock.  On a write grant the
        new object state is stored as *owner*'s version; reads leave the
        version map untouched.
        """
        blockers = self.blockers(owner, mode)
        if blockers:
            raise LockDenied(
                "%s blocked on %r by %r"
                % (self.spec.name, owner, sorted(blockers)),
                blockers=blockers,
            )
        result, new_value = self.spec.apply(self.current_value(), operation)
        if mode is LockMode.WRITE:
            self.write_holders.add(owner)
            self.versions.install(owner, new_value)
        else:
            self.read_holders.add(owner)
        return result

    def on_commit(self, name: TransactionName) -> None:
        """Pass *name*'s locks (and version) to its parent."""
        mother = parent(name)
        if mother is None:
            raise EngineError("cannot commit the root")
        if name in self.write_holders:
            self.write_holders.discard(name)
            self.write_holders.add(mother)
            self.versions.promote(name)
        if name in self.read_holders:
            self.read_holders.discard(name)
            self.read_holders.add(mother)

    def on_abort(self, name: TransactionName) -> None:
        """Discard every lock and version held below *name* (inclusive)."""
        self.write_holders = {
            holder
            for holder in self.write_holders
            if not is_descendant(holder, name)
        }
        self.read_holders = {
            holder
            for holder in self.read_holders
            if not is_descendant(holder, name)
        }
        self.versions.discard_subtree(name)

    def rehome(
        self,
        access: TransactionName,
        owner: TransactionName,
        mode: LockMode,
    ) -> None:
        """Move *access*'s fresh lock (and version) directly to *owner*.

        Flat policies grant to an ancestor rather than the access
        itself; the transition keeps all lock-table mutation inside
        the managed object.
        """
        if mode is LockMode.WRITE:
            self.write_holders.discard(access)
            self.write_holders.add(owner)
            if self.versions.has(access):
                value = self.versions.get(access)
                self.versions.discard_subtree(access)
                self.versions.install(owner, value)
        else:
            self.read_holders.discard(access)
            self.read_holders.add(owner)

    def is_locked_by_subtree(self, name: TransactionName) -> bool:
        """True if some lock is held by *name* or a descendant."""
        return any(
            is_descendant(holder, name)
            for holder in self.write_holders | self.read_holders
        )

    def holds_lock(self, name: TransactionName) -> bool:
        """True if *name* itself holds a read or write lock here."""
        return name in self.write_holders or name in self.read_holders


class LockManager:
    """All managed objects of one engine, kept in an ObjectStore.

    *make_managed* lets a locking policy substitute its own per-object
    structure (e.g. semantic locking's undo-log objects); the default is
    the Moss :class:`ManagedObject`.  *shards*/*sharding* configure the
    kernel :class:`~repro.kernel.store.ObjectStore` so the thread-safe
    facade can stripe its locking per shard.
    """

    def __init__(
        self,
        specs: Iterable[ObjectSpec],
        make_managed=None,
        shards: int = 1,
        sharding=None,
    ):
        if make_managed is None:
            make_managed = ManagedObject
        self.store = ObjectStore(
            specs, make_managed, shards=shards, sharding=sharding
        )
        #: The name-to-ManagedObject mapping (the store's own dict).
        self.objects: Dict[str, ManagedObject] = self.store.objects
        #: Optional callable ``(kind, name, objects)`` invoked after every
        #: lock-table transition (``"acquire"``/``"commit"``/``"abort"``).
        #: The deterministic fuzzer uses it to digest lock movement for
        #: byte-for-byte replay checking; ``None`` costs one attribute
        #: test per transition.
        self.observer = None
        #: Optional :class:`repro.obs.Observer` fed the same transitions
        #: (lock inheritance/release metrics).  Installed by the engine.
        self.obs = None

    def notify(
        self, kind: str, name: TransactionName, objects: Iterable[str]
    ) -> None:
        """Report one lock-table transition to the observers, if any."""
        if self.observer is not None or self.obs is not None:
            objects = tuple(objects)
            if self.observer is not None:
                self.observer(kind, name, objects)
            if self.obs is not None:
                self.obs.lock_transition(kind, name, objects)

    def object(self, name: str) -> ManagedObject:
        return self.store.object(name)

    def on_commit(self, name: TransactionName) -> List[str]:
        """Propagate a commit to every object; return the touched names."""
        touched = []
        for object_name, managed in self.objects.items():
            if managed.holds_lock(name):
                managed.on_commit(name)
                touched.append(object_name)
        self.notify("commit", name, touched)
        return touched

    def on_abort(self, name: TransactionName) -> List[str]:
        """Propagate an abort to every object; return the touched names."""
        touched = []
        for object_name, managed in self.objects.items():
            if managed.is_locked_by_subtree(name):
                managed.on_abort(name)
                touched.append(object_name)
        self.notify("abort", name, touched)
        return touched
