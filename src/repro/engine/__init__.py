"""A production-style nested-transaction engine implementing Moss' algorithm.

This package is the executable substitute for the Argus data-management
runtime the paper's algorithm shipped in: a single-process engine with

* a Moss R/W lock manager (:mod:`~repro.engine.lockmanager`) whose state is
  exactly the M(X) automaton state -- lockholder sets plus a per-holder
  version map;
* nested begin/access/commit/abort transaction handles
  (:mod:`~repro.engine.transaction`, :mod:`~repro.engine.engine`);
* waits-for-graph deadlock detection (:mod:`~repro.engine.deadlock`);
* pluggable locking policies (:mod:`~repro.engine.policies`): ``moss-rw``,
  ``exclusive`` (the all-writes degeneration), ``flat-2pl``;
* model-alphabet trace emission (:mod:`~repro.engine.trace`) so engine runs
  can be replayed against the formal model (``repro.checking``).

The engine is non-blocking: a conflicting access raises
:class:`~repro.errors.LockDenied` carrying the blockers, and the caller
(usually the discrete-event simulator in :mod:`repro.sim`) decides how to
wait.  This sidesteps the GIL: concurrency is simulated, which is all the
locking theory needs.
"""

from repro.engine.engine import Engine
from repro.engine.policies import (
    ExclusivePolicy,
    FlatTwoPhasePolicy,
    LockingPolicy,
    MossPolicy,
    make_policy,
)
from repro.engine.savepoints import Savepoint, SavepointSession
from repro.engine.threadsafe import ThreadSafeEngine, ThreadSafeTransaction
from repro.engine.transaction import Transaction, TransactionStatus

__all__ = [
    "Engine",
    "ExclusivePolicy",
    "FlatTwoPhasePolicy",
    "LockingPolicy",
    "MossPolicy",
    "Savepoint",
    "SavepointSession",
    "ThreadSafeEngine",
    "ThreadSafeTransaction",
    "Transaction",
    "TransactionStatus",
    "make_policy",
]
