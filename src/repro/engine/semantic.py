"""Commutativity-based (semantic) locking with undo recovery.

The paper's introduction lists "arbitrary conflict-based locking" among
the known protocols and cites Weihl's thesis [We] on atomic data types;
Moss' read/write rule is the coarsest useful conflict relation.  This
module implements the finer-grained scheme at the engine level:

* the conflict relation comes from the ADT
  (:meth:`~repro.core.object_spec.ObjectSpec.conflicts`): operations that
  commute in both state and return values need not conflict -- two
  counter ``bump``s, set operations on different elements, two account
  ``credit``s;
* because non-conflicting writers interleave, Moss' per-holder *version*
  recovery no longer works (versions would fork); recovery is by **undo
  logs** instead: every state-changing operation records its inverse
  (:meth:`~repro.core.object_spec.ObjectSpec.inverse`), and an abort
  applies the doomed subtree's inverses newest-first.  Commutativity is
  exactly what makes out-of-order undo sound: the surviving entries
  commute with the removed ones.

Select it with ``Engine(specs, policy="semantic")``.  Locks still flow
to the parent on commit (Moss inheritance) and conflicting holders must
still be ancestors -- only the conflict test and the recovery mechanism
change.  Correctness is validated in the tests by the generalized
precedence-graph oracle and direct state checks; this policy does *not*
refine the paper's M(X) automaton (its concurrency exceeds Moss'), so
trace conformance is intentionally unavailable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Set

from repro.core.names import (
    ROOT,
    TransactionName,
    is_ancestor,
    is_descendant,
    parent,
)
from repro.core.object_spec import ObjectSpec, Operation
from repro.engine.locks import LockMode
from repro.engine.policies import MossPolicy
from repro.errors import EngineError, LockDenied


@dataclass
class LogEntry:
    """One granted operation: who ran it, what it was, how to undo it."""

    holder: TransactionName
    operation: Operation
    undo: Optional[Operation]


class SemanticManagedObject:
    """Lock table + undo log for one object under semantic locking.

    Duck-types :class:`~repro.engine.lockmanager.ManagedObject` (the
    engine calls ``blockers`` / ``acquire`` / ``on_commit`` /
    ``on_abort`` / value accessors), but holds a single evolving value
    plus a chronological operation log instead of per-holder versions.
    """

    #: Grants are reported through :attr:`granted_hook`, so the
    #: LockManager's held-objects index works for this class too.
    HOLDER_INDEXED = True

    def __init__(self, spec: ObjectSpec):
        self.spec = spec
        self.value: Any = spec.initial_value()
        self.log: List[LogEntry] = []
        self.granted_hook = None

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def current_value(self) -> Any:
        """The value including uncommitted effects."""
        return self.value

    def committed_value(self) -> Any:
        """The value with every uncommitted entry undone (computed)."""
        value = self.value
        for entry in reversed(self.log):
            if entry.holder == ROOT:
                continue
            if entry.undo is not None:
                _, value = self.spec.apply(value, entry.undo)
        return value

    def blockers(
        self,
        requester: TransactionName,
        mode: LockMode = LockMode.WRITE,
        operation: Optional[Operation] = None,
    ) -> Set[TransactionName]:
        """Non-ancestor holders of *conflicting* operations."""
        if operation is None:
            raise EngineError(
                "semantic locking needs the operation to test conflicts"
            )
        found: Set[TransactionName] = set()
        for entry in self.log:
            if entry.holder == ROOT:
                continue
            if is_ancestor(entry.holder, requester):
                continue
            if self.spec.conflicts(entry.operation, operation):
                found.add(entry.holder)
        return found

    def holds_lock(self, name: TransactionName) -> bool:
        return any(entry.holder == name for entry in self.log)

    def is_locked_by_subtree(self, name: TransactionName) -> bool:
        return any(
            is_descendant(entry.holder, name)
            for entry in self.log
            if entry.holder != ROOT or name == ROOT
        )

    # ------------------------------------------------------------------
    # Transitions
    # ------------------------------------------------------------------
    def acquire(
        self,
        owner: TransactionName,
        operation: Operation,
        mode: LockMode = LockMode.WRITE,
    ) -> Any:
        """Run *operation* for *owner*; log its inverse; return result."""
        blockers = self.blockers(owner, mode, operation=operation)
        if blockers:
            raise LockDenied(
                "%s blocked on %r by %r"
                % (self.spec.name, owner, sorted(blockers)),
                blockers=blockers,
            )
        result, new_value = self.spec.apply(self.value, operation)
        undo = (
            None
            if operation.is_read
            else self.spec.inverse(operation, result)
        )
        self.value = new_value
        self.log.append(LogEntry(owner, operation, undo))
        hook = self.granted_hook
        if hook is not None:
            hook(owner)
        return result

    def on_commit(self, name: TransactionName) -> None:
        """Pass *name*'s log entries (its locks) to the parent."""
        mother = parent(name)
        if mother is None:
            raise EngineError("cannot commit the root")
        for entry in self.log:
            if entry.holder == name:
                entry.holder = mother
        if mother == ROOT:
            # Committed to the top: the effects are permanent; the undo
            # information is no longer needed.
            self.log = [
                entry for entry in self.log if entry.holder != ROOT
            ]

    def on_abort(self, name: TransactionName) -> None:
        """Undo the subtree's operations, newest first, and drop them."""
        survivors: List[LogEntry] = []
        doomed: List[LogEntry] = []
        for entry in self.log:
            if entry.holder != ROOT and is_descendant(entry.holder, name):
                doomed.append(entry)
            else:
                survivors.append(entry)
        for entry in reversed(doomed):
            if entry.undo is not None:
                _, self.value = self.spec.apply(self.value, entry.undo)
        self.log = survivors


class SemanticPolicy(MossPolicy):
    """Moss' structure with the ADT's own conflict relation.

    Lock ownership, inheritance and abort scoping are unchanged; only the
    conflict test (per-operation) and recovery (undo logs) differ.
    """

    name = "semantic"

    @property
    def model_conformant(self) -> bool:
        return False

    def make_managed(self, spec: ObjectSpec) -> SemanticManagedObject:
        return SemanticManagedObject(spec)
