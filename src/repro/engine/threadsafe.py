"""A thread-safe facade over the engine, with blocking lock waits.

The core engine is deliberately single-threaded and non-blocking (the
simulator supplies concurrency).  Applications that want to drive one
engine from several Python threads can wrap it in
:class:`ThreadSafeEngine`: every engine transition runs under one mutex,
and :meth:`ThreadSafeTransaction.perform` *blocks* on lock conflicts
using a condition variable signalled by every commit/abort, with
wound-wait deadlock resolution (older transaction wins, younger restarts
via :class:`~repro.errors.TransactionAborted`).

The GIL makes true parallelism moot, but the facade gives downstream
code the familiar blocking API -- and the test suite uses it to check the
engine under genuinely interleaved thread schedules.
"""

from __future__ import annotations

import threading
from typing import Any, Iterable, Optional, Union

from repro.core.object_spec import ObjectSpec, Operation
from repro.engine.engine import Engine
from repro.engine.policies import LockingPolicy
from repro.engine.transaction import Transaction
from repro.errors import LockDenied


class ThreadSafeTransaction:
    """A handle bound to a :class:`ThreadSafeEngine`."""

    def __init__(self, facade: "ThreadSafeEngine", inner: Transaction):
        self._facade = facade
        self._inner = inner

    @property
    def name(self):
        # Immutable after construction, safe to read without the lock.
        return self._inner.name  # repro-lint: ignore[CD002]

    @property
    def is_active(self) -> bool:
        with self._facade._mutex:
            return self._inner.is_active

    def begin_child(self) -> "ThreadSafeTransaction":
        with self._facade._mutex:
            child = self._inner.begin_child()
        return ThreadSafeTransaction(self._facade, child)

    def perform(
        self,
        object_name: str,
        operation: Operation,
        timeout: Optional[float] = None,
    ) -> Any:
        """Run one access, blocking while conflicting locks are held.

        Raises :class:`~repro.errors.TransactionAborted` when this
        transaction is wounded by an older one while waiting, and
        :class:`~repro.errors.LockDenied` on timeout.
        """
        return self._facade._perform_blocking(
            self._inner, object_name, operation, timeout
        )

    def commit(self, value: Any = None) -> None:
        with self._facade._mutex:
            self._inner.commit(value)
            self._facade._released.notify_all()

    def abort(self) -> None:
        with self._facade._mutex:
            self._inner.abort()
            self._facade._released.notify_all()

    def __enter__(self) -> "ThreadSafeTransaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is None:
            if self.is_active:
                self.commit()
        else:
            if self.is_active:
                self.abort()
        return False


class ThreadSafeEngine:
    """Mutex-guarded engine with blocking, wound-wait access waits."""

    def __init__(
        self,
        specs: Iterable[ObjectSpec],
        policy: Union[str, LockingPolicy] = "moss-rw",
        trace: bool = False,
    ):
        self._engine = Engine(specs, policy=policy, trace=trace)
        self._mutex = threading.Lock()
        self._released = threading.Condition(self._mutex)

    @property
    def engine(self) -> Engine:
        """The wrapped engine (synchronise access yourself)."""
        return self._engine

    def begin_top(self) -> ThreadSafeTransaction:
        with self._mutex:
            inner = self._engine.begin_top()
        return ThreadSafeTransaction(self, inner)

    def object_value(self, object_name: str) -> Any:
        with self._mutex:
            return self._engine.object_value(object_name)

    # ------------------------------------------------------------------
    # Blocking access with wound-wait
    # ------------------------------------------------------------------
    def _age(self, top):
        # Callers hold the mutex (only _perform_blocking calls this).
        return self._engine.started_at.get(  # repro-lint: ignore[CD002]
            top, float("inf")
        )

    def _perform_blocking(
        self,
        txn: Transaction,
        object_name: str,
        operation: Operation,
        timeout: Optional[float],
    ) -> Any:
        with self._released:
            while True:
                try:
                    result = txn.perform(object_name, operation)
                except LockDenied as denial:
                    my_top = txn.name[:1]
                    wounded = False
                    for blocker in denial.blockers:
                        target = blocker[:1]
                        if target == my_top:
                            continue
                        if self._age(target) > self._age(my_top):
                            victim = self._engine.transactions.get(target)
                            if victim is not None and victim.is_active:
                                victim.abort()
                                wounded = True
                    if wounded:
                        self._released.notify_all()
                        continue
                    signalled = self._released.wait(timeout=timeout)
                    if not signalled:
                        raise LockDenied(
                            "timed out waiting for %r" % object_name,
                            blockers=denial.blockers,
                        ) from None
                    continue
                self._released.notify_all()
                return result
