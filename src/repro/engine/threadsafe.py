"""A thread-safe facade over any registered scheme, with blocking waits.

The core engines are deliberately single-threaded and non-blocking (the
simulator supplies concurrency).  Applications that want to drive one
engine from several Python threads wrap it in :class:`ThreadSafeEngine`,
built for any scheme in the kernel registry
(:func:`repro.kernel.get_scheme`): :meth:`ThreadSafeTransaction.perform`
*blocks* on conflicts, with wound-wait deadlock resolution (older
transaction wins, younger restarts via
:class:`~repro.errors.TransactionAborted`).

Locking regimes
---------------

The facade has two internal regimes, chosen at construction:

* **Striped** (the default for schemes whose ``perform`` is
  object-local, e.g. every locking policy): the kernel
  :class:`~repro.kernel.store.ObjectStore` assigns each object to a
  shard, and each shard gets its own *stripe* lock and condition
  variable.  ``perform`` takes only its object's stripe, so accesses to
  objects on different stripes proceed concurrently; structural
  operations (commit, abort, wound) take the tree-state mutex **plus
  every stripe** (in index order -- the fixed order makes the hierarchy
  acyclic), so they still see and mutate a quiescent engine.  Waiters
  park on their stripe's condition with a generation counter (captured
  under the stripe lock at denial time) so a release that lands between
  the denial and the wait cannot be lost; commits and aborts bump and
  signal only the stripes their tree actually performed on (tracked in
  ``_touched``), so waiters on unrelated objects are not woken at all.
  The GIL still serialises bytecode, but the striping removes the
  single-mutex handoff on every access and wakes only plausible
  waiters, which is what ``bench_e18_scalability`` measures.  Two caveats, both documented
  invariants rather than bugs: a single transaction *handle* must be
  driven by one thread at a time (handles are not internally locked),
  and the engine's own ``stats`` counters for accesses/denials are
  best-effort under striping (increments from different stripes may
  race); object values and commit counts are exact.
* **Global mutex**: every transition under one lock, one condition
  signalled by every commit/abort.  Used when scheduler hooks are
  installed (the fuzzer owns the interleaving), when ``trace=True``
  (the recorder needs a linearised event order for conformance
  replay), for schemes that are not object-local (MVTO's timestamp
  conflicts discard buffers across every object from inside
  ``perform``), or on request with ``stripes=0`` (the benchmark
  baseline).

Scheduler hooks
---------------

The deterministic concurrency fuzzer (:mod:`repro.fuzz`) needs to own
the interleaving of worker threads, so the facade exposes *yield-point
hooks*: when :meth:`ThreadSafeEngine.install_hooks` has installed a
controller, every lock acquire, blocking wait, commit and abort routes
through it instead of the free-running condition-variable path.
Installing hooks drops the facade to the global-mutex regime (install
them before starting worker threads).  The hooks object is duck-typed;
it must provide::

    yield_point(kind, txn_name, detail)   # "acquire"/"denied"/"commit"/"abort"
    park_blocked(txn_name, blockers, object_name)  # wait for a release
    on_release(txn_name)                  # locks shed (commit/abort/wound)
    inject_deny(txn_name, object_name) -> bool     # fault injection point

With no hooks installed (the default) behaviour is unchanged and the
hot path pays a single attribute check.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, Iterable, Optional, Set

from repro.core.names import TransactionName, pretty_name
from repro.core.object_spec import ObjectSpec, Operation
from repro.engine.transaction import Transaction, TransactionStatus
from repro.errors import (
    EngineError,
    LockDenied,
    RetryLater,
    TransactionAborted,
)
from repro.kernel import get_scheme

#: Default stripe count in auto mode (clamped to the object count by
#: the store; more stripes than objects would only idle).
DEFAULT_STRIPES = 16


def _timeout_denial(object_name: str, denial: LockDenied) -> LockDenied:
    """The exception a timed-out blocking wait raises.

    Preserves the :class:`~repro.errors.RetryLater` subtype (and its
    ``retry_after_ms`` hint) when the underlying denial was an ordered
    wait, so remote callers keep the never-a-deadlock signal and the
    backoff hint across the facade's timeout translation.
    """
    if isinstance(denial, RetryLater):
        return RetryLater(
            "timed out waiting for %r" % object_name,
            blockers=denial.blockers,
            retry_after_ms=denial.retry_after_ms,
        )
    return LockDenied(
        "timed out waiting for %r" % object_name,
        blockers=denial.blockers,
    )


class _LockedObserver:
    """Serialise every call into an Observer shared across stripes.

    The obs layer is written for one driving thread; under striped
    locking two performs on different stripes can instrument
    concurrently, so the facade hands the engine this wrapper instead.
    Metrics stay exact (each counter increment runs under the wrapper's
    lock); the cost is one uncontended lock per instrumented event,
    paid only when an observer is attached *and* striping is on.
    """

    def __init__(self, inner):
        self._locked_inner = inner
        self._locked_lock = threading.Lock()

    def __getattr__(self, name):
        attr = getattr(self._locked_inner, name)
        if not callable(attr):
            return attr
        lock = self._locked_lock

        def call(*args, **kwargs):
            with lock:
                return attr(*args, **kwargs)

        # Cache so __getattr__ runs once per method name.
        setattr(self, name, call)
        return call


class ThreadSafeTransaction:
    """A handle bound to a :class:`ThreadSafeEngine`.

    A handle may move between threads, but must be driven by one thread
    at a time; handles carry no internal lock of their own.
    """

    def __init__(self, facade: "ThreadSafeEngine", inner: Transaction):
        self._facade = facade
        self._inner = inner

    @property
    def name(self):
        # Immutable after construction, safe to read without the lock.
        return self._inner.name  # repro-lint: ignore[CD002]

    @property
    def is_active(self) -> bool:
        # Status is written only under the mutex (striped structural
        # ops additionally hold every stripe), so the mutex suffices.
        with self._facade._mutex:
            return self._inner.is_active

    @property
    def status(self) -> TransactionStatus:
        """The current status (a dead handle may have been wounded)."""
        with self._facade._mutex:
            return self._inner.status

    def begin_child(self) -> "ThreadSafeTransaction":
        with self._facade._mutex:
            child = self._inner.begin_child()
        return ThreadSafeTransaction(self._facade, child)

    def perform(
        self,
        object_name: str,
        operation: Operation,
        timeout: Optional[float] = None,
    ) -> Any:
        """Run one access, blocking while conflicting locks are held.

        Raises :class:`~repro.errors.TransactionAborted` when this
        transaction is wounded by an older one while waiting, and
        :class:`~repro.errors.LockDenied` on timeout.  *timeout* bounds
        the **total** blocking time of the call (a monotonic deadline),
        not each individual wait.
        """
        return self._facade._perform_blocking(
            self._inner, object_name, operation, timeout
        )

    def commit(self, value: Any = None) -> None:
        hooks = self._facade._hooks
        if hooks is not None:
            # Names are immutable after construction.
            hooks.yield_point(
                "commit", self._inner.name, None  # repro-lint: ignore[CD002]
            )
        self._facade._finish(self._inner, "commit", value)
        if hooks is not None:
            hooks.on_release(self._inner.name)  # repro-lint: ignore[CD002]

    def abort(self) -> None:
        hooks = self._facade._hooks
        if hooks is not None:
            # Names are immutable after construction.
            hooks.yield_point(
                "abort", self._inner.name, None  # repro-lint: ignore[CD002]
            )
        self._facade._finish(self._inner, "abort", None)
        if hooks is not None:
            hooks.on_release(self._inner.name)  # repro-lint: ignore[CD002]

    def __enter__(self) -> "ThreadSafeTransaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is None:
            if self.is_active:
                self.commit()
        else:
            if self.is_active:
                self.abort()
        return False


class ThreadSafeEngine:
    """Blocking, wound-wait facade over a registered kernel scheme.

    Parameters
    ----------
    specs:
        The object specifications making up the store.
    policy:
        Anything :func:`repro.kernel.get_scheme` resolves: a registered
        scheme name (``"moss-rw"``, ``"mvto"``, ...), a
        :class:`~repro.engine.policies.LockingPolicy` instance, or a
        :class:`~repro.kernel.registry.Scheme`.
    trace / trace_limit:
        Passed to the scheme factory; tracing forces the global-mutex
        regime (conformance replay needs a linearised trace).
    observer:
        Optional :class:`repro.obs.Observer`; under striping it is
        wrapped in a :class:`_LockedObserver` so its counters stay
        exact.
    stripes:
        ``None`` (default) -- auto: stripe when the scheme allows it,
        with up to :data:`DEFAULT_STRIPES` stripes.  ``0`` -- force the
        single global mutex.  ``n > 0`` -- request exactly *n* stripes
        (clamped to the object count).
    """

    def __init__(
        self,
        specs: Iterable[ObjectSpec],
        policy="moss-rw",
        trace: bool = False,
        trace_limit: Optional[int] = None,
        observer=None,
        stripes: Optional[int] = None,
    ):
        specs = list(specs)
        self.scheme = get_scheme(policy)
        requested = DEFAULT_STRIPES if stripes is None else stripes
        self._striped = bool(
            requested > 0
            and not trace
            and self.scheme.capabilities.object_local_performs
        )
        self._obs = (
            _LockedObserver(observer)
            if observer is not None and self._striped
            else observer
        )
        self._engine = self.scheme.build(
            specs,
            observer=self._obs,
            trace=trace,
            trace_limit=trace_limit,
            shards=requested if self._striped else 1,
        )
        # In the striped regime `_mutex` is the tree-state lock:
        # structural operations hold it *plus* every stripe; in the
        # global regime it is the one engine mutex.  `_released` is the
        # global-regime condition signalled by every commit/abort.
        self._mutex = threading.Lock()
        self._released = threading.Condition(self._mutex)
        self._hooks = None
        # Stripe structures (unused but tiny in the global regime).
        count = self._engine.store.shards
        self._stripe_index = self._engine.store.shard_of
        self._stripe_locks = [threading.Lock() for _ in range(count)]
        self._stripe_conds = [
            threading.Condition(lock) for lock in self._stripe_locks
        ]
        # Per-stripe release generations: bumped (under all stripe
        # locks) by every structural op, read (under one stripe lock)
        # by waiters, so a release between a denial and the wait is
        # never lost.
        self._stripe_gens = [0] * count
        # Stripes each live top-level tree has performed on, recorded
        # under the object's stripe lock before the engine transition
        # runs.  Commit/abort can only release locks on objects the
        # tree touched, so _finish wakes just these stripes instead of
        # broadcasting to every waiter in the system.
        self._touched: Dict[TransactionName, Set[int]] = {}

    @property
    def engine(self):
        """The wrapped engine (synchronise access yourself)."""
        return self._engine

    @property
    def capabilities(self):
        """The wrapped scheme's capability flags."""
        return self.scheme.capabilities

    @property
    def striped(self) -> bool:
        """True when running the striped regime (not the global mutex)."""
        return self._striped

    def attach_auditor(self, auditor=None, config=None):
        """Attach an online serializability auditor; returns it.

        Mirrors :meth:`repro.engine.engine.Engine.attach_auditor`; the
        default config comes from the scheme's capability flags (the
        trust dial).  When the facade has no observer yet, a
        lightweight audit-only one (:class:`repro.obs.AuditObserver`)
        is created -- *without* the :class:`_LockedObserver` wrap even
        under striping, because :class:`~repro.audit.OnlineAuditor`
        serialises its own state and the audit-only observer carries
        none.  Attach before starting worker threads.
        """
        from repro.audit import AuditConfig, OnlineAuditor

        if auditor is None:
            if config is None:
                config = AuditConfig.for_capabilities(self.capabilities)
            auditor = OnlineAuditor(config)
        with self._mutex:
            obs = self._obs
            if obs is None:
                from repro.obs import AuditObserver

                obs = AuditObserver()
                self._obs = obs
                self._engine.obs = obs
                locks = getattr(self._engine, "locks", None)
                if locks is not None:
                    locks.obs = obs
            obs.attach_auditor(auditor)
        return auditor

    def attach_wal(self, wal=None, sink=None, segment_bytes=None):
        """Attach a write-ahead log to the wrapped engine; returns it.

        Mirrors :meth:`repro.engine.engine.Engine.attach_wal`
        (capability-gated on ``capabilities.durable``).  The log writer
        carries its own lock, so striped performs may append
        concurrently; the append order is then the log's serialization
        of those (non-conflicting) transitions.  Attach before starting
        worker threads.
        """
        if not self.capabilities.durable:
            raise EngineError(
                "scheme %r is not durable "
                "(capabilities.durable is False)" % self.scheme.name
            )
        attach = getattr(self._engine, "attach_wal", None)
        if attach is None:
            raise EngineError(
                "scheme %r has no write-ahead log support"
                % self.scheme.name
            )
        with self._mutex:
            attached = attach(
                wal=wal, sink=sink, segment_bytes=segment_bytes
            )
            # Group-commit sinks coalesce fsyncs across concurrent
            # committers, but only if their flush *waits* overlap --
            # impossible inside this facade's commit locks.  Defer:
            # the engine tickets the flush during commit and the
            # facade awaits it after releasing its locks.
            sink_obj = getattr(attached, "sink", None)
            if hasattr(sink_obj, "flush_begin") and hasattr(
                self._engine, "wal_defers"
            ):
                self._engine.wal_defers = True
            return attached

    def install_hooks(self, hooks) -> None:
        """Install (or clear, with ``None``) the scheduler hooks.

        Installing a controller drops the facade to the global-mutex
        regime for the rest of its life (the controller owns the
        interleaving; stripes would hide schedule decisions from it).
        Install hooks before starting worker threads.
        """
        if hooks is not None:
            self._striped = False
        self._hooks = hooks

    def begin_top(self) -> ThreadSafeTransaction:
        with self._mutex:
            inner = self._engine.begin_top()
        return ThreadSafeTransaction(self, inner)

    def abort_top(self, name, cause: Optional[str] = None) -> bool:
        """Idempotently abort the top-level tree containing *name*.

        Safe to call from any thread, including one that does not own
        the transaction's handle -- the session reaper of the network
        front-end (:mod:`repro.serve`) uses it to clean up after
        disconnected clients.  *name* is a transaction name tuple (any
        member of the tree; its top-level ancestor is the victim).

        Returns True when an active tree was aborted, False when the
        name is unknown or the tree already finished -- double aborts
        and abort-after-commit races are no-ops, never errors.  The
        owning thread's next engine call on an aborted handle raises
        :class:`~repro.errors.TransactionAborted` (same contract as a
        wound).  ``cause`` optionally tags the abort for the observer's
        ``txn.abort`` cause label.
        """
        top = tuple(name)[:1]
        if not top:
            return False
        pending = []
        try:
            if self._striped and self._hooks is None:

                def try_abort():
                    # Under the mutex plus every stripe (structural
                    # op).
                    table = (
                        self._engine.transactions  # repro-lint: ignore[CD002]
                    )
                    victim = table.get(top)
                    if victim is None or not victim.is_active:
                        return False
                    obs = self._obs
                    if obs is not None and cause is not None:
                        obs.mark_abort_cause(top, cause)
                    try:
                        victim.abort()
                    finally:
                        waiter = self._pop_pending_flush()
                        if waiter is not None:
                            pending.append(waiter)
                    return True

                def released_stripes():
                    touched = self._touched.pop(top, None)
                    if not touched:
                        return ()
                    return sorted(touched)

                return self._run_structural(
                    try_abort, bump="if-true", stripes=released_stripes
                )
            with self._mutex:
                victim = self._engine.transactions.get(top)
                if victim is None or not victim.is_active:
                    return False
                obs = self._obs
                if obs is not None and cause is not None:
                    obs.mark_abort_cause(top, cause)
                try:
                    victim.abort()
                finally:
                    waiter = self._pop_pending_flush()
                    if waiter is not None:
                        pending.append(waiter)
                self._touched.pop(top, None)
                self._released.notify_all()
                return True
        finally:
            for waiter in pending:
                waiter()

    def object_value(self, object_name: str) -> Any:
        if self._striped:
            # Striped schemes are object-local: performs on this object
            # run under its stripe lock, and structural ops hold every
            # stripe (including this one), so the object's single
            # stripe already gives a quiescent read of its versions --
            # no need to stall the whole facade for an inspection.
            lock = self._stripe_locks[self._stripe_index(object_name)]
            with lock:
                return self._read_value(object_name)
        with self._mutex:
            return self._engine.object_value(object_name)

    def _read_value(self, object_name: str) -> Any:
        # Callers hold (at least) the object's stripe lock.
        return self._engine.object_value(  # repro-lint: ignore[CD002]
            object_name
        )

    # ------------------------------------------------------------------
    # Structural operations (striped regime)
    # ------------------------------------------------------------------
    def _run_structural(self, fn, bump: str = "always", stripes=None):
        """Run *fn* holding the tree mutex plus every stripe, in order.

        ``bump`` controls the wakeup broadcast on exit: ``"always"``
        for ops that release locks (commit/abort), ``"if-true"`` for
        ops whose truthy result means state changed (the wound pass),
        ``"never"`` for read-only ops (object_value).  Skipping the
        broadcast for no-op passes matters: a denied perform probing
        for wounds must not invalidate every waiter's generation
        capture, or the striped regime degenerates into a busy-wait
        herd of retrying waiters.

        ``stripes`` narrows the broadcast further: a zero-argument
        callable, evaluated under the full lock set after *fn*, that
        returns the stripe indices whose waiters could have been
        unblocked (``None`` means all of them).  Commit/abort pass the
        finishing tree's touched-stripe set here, so waiters on
        unrelated objects are not woken at all.
        """
        with self._mutex:
            for lock in self._stripe_locks:
                lock.acquire()
            changed = bump == "always"
            try:
                result = fn()
                if bump == "if-true" and result:
                    changed = True
                return result
            except BaseException:
                # Conservative: a failed mutation may have partially
                # changed lock state before raising.
                changed = bump != "never"
                raise
            finally:
                if changed:
                    targets = (
                        range(len(self._stripe_conds))
                        if stripes is None
                        else stripes()
                    )
                    for i in targets:
                        self._stripe_gens[i] += 1
                        self._stripe_conds[i].notify_all()
                for lock in reversed(self._stripe_locks):
                    lock.release()

    def _apply_finish(
        self, inner: Transaction, action: str, value: Any
    ) -> bool:
        """Commit/abort *inner*; runs under the active regime's locks.

        A wound can abort *inner* while its driving thread is between
        calls (e.g. holding locks across I/O before commit), so the
        facade translates that race instead of leaking
        ``InvalidTransactionState``: committing a wounded transaction
        raises :class:`~repro.errors.TransactionAborted`, aborting one
        is an idempotent no-op.  Returns True when lock state changed.
        """
        if (
            not inner.is_active
            and inner.status is TransactionStatus.ABORTED
        ):
            if action == "abort":
                return False
            raise TransactionAborted(
                "%s was wounded before it could commit"
                % pretty_name(inner.name)
            )
        if action == "commit":
            inner.commit(value)
        else:
            inner.abort()
        return True

    def _pop_pending_flush(self):
        """Pop the engine's deferred-flush waiter; locks held.

        Must run inside the same locked section as the finish that
        ticketed it -- a pop after the locks release could steal a
        *later* committer's waiter and leave that commit acknowledged
        before its fsync.  Waiters left un-popped (a wound-path abort
        whose slot a later finish overwrites) are harmless: the group
        sink's syncer services every ticket whether or not anyone
        waits on it.
        """
        # getattr: alternative engines (MVTO) have no deferred-flush
        # seam and never set `wal_defers`, so there is nothing to pop.
        waiter = getattr(  # repro-lint: ignore[CD002]
            self._engine, "pending_flush", None
        )
        if waiter is not None:
            self._engine.pending_flush = None  # repro-lint: ignore[CD002]
        return waiter

    def _finish(self, inner: Transaction, action: str, value: Any) -> None:
        """Commit or abort *inner* under the active regime's locks."""
        pending = []

        def apply():
            try:
                return self._apply_finish(inner, action, value)
            finally:
                waiter = self._pop_pending_flush()
                if waiter is not None:
                    pending.append(waiter)

        try:
            self._finish_locked(inner, apply)
        finally:
            # Await the group fsync *outside* the locks, so concurrent
            # committers' waits overlap and share one fsync.
            for waiter in pending:
                waiter()

    def _finish_locked(self, inner: Transaction, apply) -> None:
        if self._striped and self._hooks is None:
            # Names are immutable after construction.
            name = inner.name  # repro-lint: ignore[CD002]
            top = name[:1]

            def released_stripes():
                # Under the full lock set: every touch record (made
                # under its object's stripe lock) is visible here.  A
                # *top* that really finished retires its tree's entry
                # (a failed finish -- live children, say -- keeps its
                # locks, so the set must survive for the retry); a
                # child commit moves locks to its mother, which can
                # unblock relatives waiting on the same objects, so
                # the set stays live until the tree ends.
                if len(name) == 1 and not inner.is_active:
                    touched = self._touched.pop(top, None)
                else:
                    touched = self._touched.get(top)
                if not touched:
                    return ()
                return sorted(touched)

            self._run_structural(
                apply, bump="if-true", stripes=released_stripes
            )
            return
        with self._mutex:
            if apply():
                self._released.notify_all()

    # ------------------------------------------------------------------
    # Blocking access with wound-wait
    # ------------------------------------------------------------------
    def _age(self, top):
        # Callers hold the mutex (only the wound path calls this).
        return self._engine.started_at.get(  # repro-lint: ignore[CD002]
            top, float("inf")
        )

    def _wound_candidate(
        self, txn: Transaction, denial: LockDenied
    ) -> bool:
        """Unlocked pre-filter for the structural wound pass.

        Start times are written once (under the mutex, at begin) and
        never change, so this lock-free read can only mis-judge
        blockers that are concurrently *finishing* -- a spurious True
        costs one structural pass whose authoritative re-check then
        declines to wound; the age comparison itself never flips.
        """
        started = (
            self._engine.started_at  # repro-lint: ignore[CD002]
        )
        my_top = txn.name[:1]
        mine = started.get(my_top, float("inf"))
        for blocker in denial.blockers:
            target = blocker[:1]
            if target == my_top:
                continue
            if started.get(target, float("inf")) > mine:
                return True
        return False

    def _wound(self, txn: Transaction, denial: LockDenied) -> bool:
        """Abort every younger top-level blocking *txn*; locks held.

        Callers hold the mutex (global regime) or the full structural
        set (striped regime).  Returns True when at least one victim
        was wounded (the caller should retry immediately rather than
        wait).  Blockers sharing *txn*'s own top-level ancestor are
        never wounded -- a transaction must wait for its own relatives,
        not kill them.
        """
        my_top = txn.name[:1]
        wounded = False
        for blocker in sorted(denial.blockers):
            target = blocker[:1]
            if target == my_top:
                continue
            if self._age(target) > self._age(my_top):
                table = (
                    self._engine.transactions  # repro-lint: ignore[CD002]
                )
                victim = table.get(target)
                if victim is not None and victim.is_active:
                    obs = self._obs
                    if obs is not None:
                        # Tag the cause before the abort transition.
                        obs.wound(target, my_top)
                    victim.abort()
                    # The victim tree's locks are gone; retire its
                    # touched-stripe record (its own thread may never
                    # reach _finish with an active handle again).
                    self._touched.pop(target, None)
                    wounded = True
        return wounded

    def _perform_blocking(
        self,
        txn: Transaction,
        object_name: str,
        operation: Operation,
        timeout: Optional[float],
    ) -> Any:
        if self._hooks is not None:
            return self._perform_controlled(txn, object_name, operation)
        if self._striped:
            return self._perform_striped(
                txn, object_name, operation, timeout
            )
        deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        obs = self._obs
        wait_started: Optional[float] = None
        with self._released:
            while True:
                try:
                    result = txn.perform(object_name, operation)
                except LockDenied as denial:
                    if obs is not None and wait_started is None:
                        wait_started = obs.now()
                    if self._wound(txn, denial):
                        self._released.notify_all()
                        continue
                    remaining: Optional[float] = None
                    if deadline is not None:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            if wait_started is not None:
                                obs.lock_wait(
                                    txn.name, object_name,
                                    wait_started, obs.now(),
                                )
                            raise _timeout_denial(
                                object_name, denial
                            ) from None
                    self._released.wait(timeout=remaining)
                    # Loop: a timed-out wait is re-checked against the
                    # deadline above, so total blocking never exceeds
                    # the caller's timeout no matter how often other
                    # transactions signal the condition.
                    continue
                except Exception as exc:
                    if wait_started is not None:
                        # A wound arrived while we were parked; close
                        # the wait span before the abort propagates.
                        obs.lock_wait(
                            txn.name, object_name,
                            wait_started, obs.now(),
                        )
                    if isinstance(
                        exc, TransactionAborted
                    ) and not self.capabilities.object_local_performs:
                        # A non-object-local scheme (MVTO) aborts the
                        # whole tree from inside ``perform``, shedding
                        # its pending writes with no commit/abort call
                        # to signal the condition; wake waiters so
                        # they re-check.
                        self._released.notify_all()
                    raise
                if wait_started is not None:
                    obs.lock_wait(
                        txn.name, object_name, wait_started, obs.now()
                    )
                self._released.notify_all()
                return result

    def _perform_striped(
        self,
        txn: Transaction,
        object_name: str,
        operation: Operation,
        timeout: Optional[float],
    ) -> Any:
        """The striped twin of the global blocking path.

        The engine transition runs under only this object's stripe
        lock; structural operations hold every stripe, so the tree
        state read inside ``perform`` (orphan checks, child slots) is
        stable for the duration.  On denial the stripe generation is
        captured before the lock is dropped; the retry waits on the
        stripe condition only if no structural op intervened.
        """
        deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        obs = self._obs
        index = self._stripe_index(object_name)
        cond = self._stripe_conds[index]
        # Names are immutable after construction.
        top = txn.name[:1]  # repro-lint: ignore[CD002]
        wait_started: Optional[float] = None
        while True:
            denial: Optional[LockDenied] = None
            with cond:
                # Record the touch before the transition: once any
                # lock on this object can be held, the record is
                # visible to every structural op (they take all
                # stripes).  Denied attempts over-approximate, which
                # only costs a spurious wakeup on this stripe.
                touched = self._touched.get(top)
                if touched is None:
                    touched = self._touched.setdefault(top, set())
                touched.add(index)
                try:
                    result = txn.perform(object_name, operation)
                except LockDenied as exc:
                    denial = exc
                    gen = self._stripe_gens[index]
                except Exception:
                    if wait_started is not None:
                        # Wounded while parked; close the wait span
                        # before the abort propagates.
                        obs.lock_wait(
                            txn.name, object_name,
                            wait_started, obs.now(),
                        )
                    raise
                else:
                    if wait_started is not None:
                        obs.lock_wait(
                            txn.name, object_name, wait_started, obs.now()
                        )
                    return result
            # Denied: wound (a structural op) outside the stripe lock.
            # The unlocked age pre-filter keeps the common case (we are
            # the youngest and must wait) from serializing on the full
            # structural lock set just to learn it cannot wound anyone.
            if obs is not None and wait_started is None:
                wait_started = obs.now()
            if self._wound_candidate(txn, denial) and self._run_structural(
                lambda: self._wound(txn, denial), bump="if-true"
            ):
                continue
            remaining: Optional[float] = None
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    if wait_started is not None:
                        obs.lock_wait(
                            txn.name, object_name,
                            wait_started, obs.now(),
                        )
                    raise _timeout_denial(
                        object_name, denial
                    ) from None
            with cond:
                if self._stripe_gens[index] == gen:
                    # No release since the denial; park until one (or
                    # the deadline slice) arrives.  A changed
                    # generation means a structural op already ran --
                    # skip the wait and re-attempt immediately.
                    cond.wait(timeout=remaining)

    def _perform_controlled(
        self,
        txn: Transaction,
        object_name: str,
        operation: Operation,
    ) -> Any:
        """The hook-driven twin of :meth:`_perform_blocking`.

        The installed controller decides when this thread runs and is
        told, instead of a condition wait, when the access blocks --
        timeouts do not apply because the controller owns time.
        """
        hooks = self._hooks
        while True:
            hooks.yield_point("acquire", txn.name, object_name)
            if hooks.inject_deny(txn.name, object_name):
                hooks.yield_point("denied", txn.name, object_name)
                continue
            with self._released:
                try:
                    result = txn.perform(object_name, operation)
                except LockDenied as denial:
                    wounded = self._wound(txn, denial)
                    blockers = tuple(sorted(denial.blockers))
                except TransactionAborted:
                    if not self.capabilities.object_local_performs:
                        # Tree aborted from inside ``perform`` (MVTO
                        # ts-conflict): its pending writes are gone but
                        # no commit/abort handle call will follow to
                        # wake parked workers -- release them here.
                        hooks.on_release(txn.name)
                    raise
                else:
                    self._released.notify_all()
                    return result
            if wounded:
                hooks.on_release(txn.name)
                continue
            obs = self._obs
            if obs is None:
                hooks.park_blocked(txn.name, blockers, object_name)
            else:
                parked_at = obs.now()
                hooks.park_blocked(txn.name, blockers, object_name)
                obs.lock_wait(
                    txn.name, object_name, parked_at, obs.now()
                )
