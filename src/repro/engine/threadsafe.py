"""A thread-safe facade over the engine, with blocking lock waits.

The core engine is deliberately single-threaded and non-blocking (the
simulator supplies concurrency).  Applications that want to drive one
engine from several Python threads can wrap it in
:class:`ThreadSafeEngine`: every engine transition runs under one mutex,
and :meth:`ThreadSafeTransaction.perform` *blocks* on lock conflicts
using a condition variable signalled by every commit/abort, with
wound-wait deadlock resolution (older transaction wins, younger restarts
via :class:`~repro.errors.TransactionAborted`).

The GIL makes true parallelism moot, but the facade gives downstream
code the familiar blocking API -- and the test suite uses it to check the
engine under genuinely interleaved thread schedules.

Scheduler hooks
---------------

The deterministic concurrency fuzzer (:mod:`repro.fuzz`) needs to own
the interleaving of worker threads, so the facade exposes *yield-point
hooks*: when :meth:`ThreadSafeEngine.install_hooks` has installed a
controller, every lock acquire, blocking wait, commit and abort routes
through it instead of the free-running condition-variable path.  The
hooks object is duck-typed; it must provide::

    yield_point(kind, txn_name, detail)   # "acquire"/"denied"/"commit"/"abort"
    park_blocked(txn_name, blockers, object_name)  # wait for a release
    on_release(txn_name)                  # locks shed (commit/abort/wound)
    inject_deny(txn_name, object_name) -> bool     # fault injection point

With no hooks installed (the default) behaviour is unchanged and the
hot path pays a single attribute check.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Iterable, Optional, Union

from repro.core.object_spec import ObjectSpec, Operation
from repro.engine.engine import Engine
from repro.engine.policies import LockingPolicy
from repro.engine.transaction import Transaction
from repro.errors import LockDenied


class ThreadSafeTransaction:
    """A handle bound to a :class:`ThreadSafeEngine`."""

    def __init__(self, facade: "ThreadSafeEngine", inner: Transaction):
        self._facade = facade
        self._inner = inner

    @property
    def name(self):
        # Immutable after construction, safe to read without the lock.
        return self._inner.name  # repro-lint: ignore[CD002]

    @property
    def is_active(self) -> bool:
        with self._facade._mutex:
            return self._inner.is_active

    def begin_child(self) -> "ThreadSafeTransaction":
        with self._facade._mutex:
            child = self._inner.begin_child()
        return ThreadSafeTransaction(self._facade, child)

    def perform(
        self,
        object_name: str,
        operation: Operation,
        timeout: Optional[float] = None,
    ) -> Any:
        """Run one access, blocking while conflicting locks are held.

        Raises :class:`~repro.errors.TransactionAborted` when this
        transaction is wounded by an older one while waiting, and
        :class:`~repro.errors.LockDenied` on timeout.  *timeout* bounds
        the **total** blocking time of the call (a monotonic deadline),
        not each individual wait.
        """
        return self._facade._perform_blocking(
            self._inner, object_name, operation, timeout
        )

    def commit(self, value: Any = None) -> None:
        hooks = self._facade._hooks
        if hooks is not None:
            # Names are immutable after construction.
            hooks.yield_point(
                "commit", self._inner.name, None  # repro-lint: ignore[CD002]
            )
        with self._facade._mutex:
            self._inner.commit(value)
            self._facade._released.notify_all()
        if hooks is not None:
            hooks.on_release(self._inner.name)  # repro-lint: ignore[CD002]

    def abort(self) -> None:
        hooks = self._facade._hooks
        if hooks is not None:
            # Names are immutable after construction.
            hooks.yield_point(
                "abort", self._inner.name, None  # repro-lint: ignore[CD002]
            )
        with self._facade._mutex:
            self._inner.abort()
            self._facade._released.notify_all()
        if hooks is not None:
            hooks.on_release(self._inner.name)  # repro-lint: ignore[CD002]

    def __enter__(self) -> "ThreadSafeTransaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is None:
            if self.is_active:
                self.commit()
        else:
            if self.is_active:
                self.abort()
        return False


class ThreadSafeEngine:
    """Mutex-guarded engine with blocking, wound-wait access waits."""

    def __init__(
        self,
        specs: Iterable[ObjectSpec],
        policy: Union[str, LockingPolicy] = "moss-rw",
        trace: bool = False,
        trace_limit: Optional[int] = None,
        observer=None,
    ):
        self._engine = Engine(
            specs,
            policy=policy,
            trace=trace,
            trace_limit=trace_limit,
            observer=observer,
        )
        self._obs = observer
        self._mutex = threading.Lock()
        self._released = threading.Condition(self._mutex)
        self._hooks = None

    @property
    def engine(self) -> Engine:
        """The wrapped engine (synchronise access yourself)."""
        return self._engine

    def install_hooks(self, hooks) -> None:
        """Install (or clear, with ``None``) the scheduler hooks."""
        self._hooks = hooks

    def begin_top(self) -> ThreadSafeTransaction:
        with self._mutex:
            inner = self._engine.begin_top()
        return ThreadSafeTransaction(self, inner)

    def object_value(self, object_name: str) -> Any:
        with self._mutex:
            return self._engine.object_value(object_name)

    # ------------------------------------------------------------------
    # Blocking access with wound-wait
    # ------------------------------------------------------------------
    def _age(self, top):
        # Callers hold the mutex (only the wound path calls this).
        return self._engine.started_at.get(  # repro-lint: ignore[CD002]
            top, float("inf")
        )

    def _wound(self, txn: Transaction, denial: LockDenied) -> bool:
        """Abort every younger top-level blocking *txn*; mutex held.

        Returns True when at least one victim was wounded (the caller
        should retry immediately rather than wait).  Blockers sharing
        *txn*'s own top-level ancestor are never wounded -- a transaction
        must wait for its own relatives, not kill them.
        """
        my_top = txn.name[:1]
        wounded = False
        for blocker in sorted(denial.blockers):
            target = blocker[:1]
            if target == my_top:
                continue
            if self._age(target) > self._age(my_top):
                table = (
                    self._engine.transactions  # repro-lint: ignore[CD002]
                )
                victim = table.get(target)
                if victim is not None and victim.is_active:
                    obs = self._obs
                    if obs is not None:
                        # Tag the cause before the abort transition.
                        obs.wound(target, my_top)
                    victim.abort()
                    wounded = True
        return wounded

    def _perform_blocking(
        self,
        txn: Transaction,
        object_name: str,
        operation: Operation,
        timeout: Optional[float],
    ) -> Any:
        if self._hooks is not None:
            return self._perform_controlled(txn, object_name, operation)
        deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        obs = self._obs
        wait_started: Optional[float] = None
        with self._released:
            while True:
                try:
                    result = txn.perform(object_name, operation)
                except LockDenied as denial:
                    if obs is not None and wait_started is None:
                        wait_started = obs.now()
                    if self._wound(txn, denial):
                        self._released.notify_all()
                        continue
                    remaining: Optional[float] = None
                    if deadline is not None:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            if wait_started is not None:
                                obs.lock_wait(
                                    txn.name, object_name,
                                    wait_started, obs.now(),
                                )
                            raise LockDenied(
                                "timed out waiting for %r" % object_name,
                                blockers=denial.blockers,
                            ) from None
                    self._released.wait(timeout=remaining)
                    # Loop: a timed-out wait is re-checked against the
                    # deadline above, so total blocking never exceeds
                    # the caller's timeout no matter how often other
                    # transactions signal the condition.
                    continue
                except Exception:
                    if wait_started is not None:
                        # A wound arrived while we were parked; close
                        # the wait span before the abort propagates.
                        obs.lock_wait(
                            txn.name, object_name,
                            wait_started, obs.now(),
                        )
                    raise
                if wait_started is not None:
                    obs.lock_wait(
                        txn.name, object_name, wait_started, obs.now()
                    )
                self._released.notify_all()
                return result

    def _perform_controlled(
        self,
        txn: Transaction,
        object_name: str,
        operation: Operation,
    ) -> Any:
        """The hook-driven twin of :meth:`_perform_blocking`.

        The installed controller decides when this thread runs and is
        told, instead of a condition wait, when the access blocks --
        timeouts do not apply because the controller owns time.
        """
        hooks = self._hooks
        while True:
            hooks.yield_point("acquire", txn.name, object_name)
            if hooks.inject_deny(txn.name, object_name):
                hooks.yield_point("denied", txn.name, object_name)
                continue
            with self._released:
                try:
                    result = txn.perform(object_name, operation)
                except LockDenied as denial:
                    wounded = self._wound(txn, denial)
                    blockers = tuple(sorted(denial.blockers))
                else:
                    self._released.notify_all()
                    return result
            if wounded:
                hooks.on_release(txn.name)
                continue
            obs = self._obs
            if obs is None:
                hooks.park_blocked(txn.name, blockers, object_name)
            else:
                parked_at = obs.now()
                hooks.park_blocked(txn.name, blockers, object_name)
                obs.lock_wait(
                    txn.name, object_name, parked_at, obs.now()
                )
