"""Nested transaction handles."""

from __future__ import annotations

import enum
from typing import Any, List, Optional, TYPE_CHECKING

from repro.core.names import TransactionName, pretty_name
from repro.core.object_spec import Operation
from repro.errors import InvalidTransactionState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.engine import Engine


class TransactionStatus(enum.Enum):
    """Lifecycle of an engine transaction."""

    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


class Transaction:
    """A handle on one (possibly nested) engine transaction.

    Created by :meth:`Engine.begin_top` or :meth:`Transaction.begin_child`;
    drives work through :meth:`perform`, and finishes with :meth:`commit`
    or :meth:`abort`.  Handles are context managers: leaving the ``with``
    block commits on success and aborts on an exception::

        with engine.begin_top() as txn:
            txn.perform("acct", BankAccount.deposit(10))
    """

    def __init__(
        self,
        engine: "Engine",
        name: TransactionName,
        parent: Optional["Transaction"],
    ):
        self._engine = engine
        self.name = name
        self.parent = parent
        self.status = TransactionStatus.ACTIVE
        self.children: List["Transaction"] = []
        self.value: Any = None
        self._next_child = 0
        # Abort epoch at which the engine last verified this handle is
        # not an orphan (see Engine._check_not_orphan); -1 = never.
        self._orphan_checked_epoch = -1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def is_active(self) -> bool:
        return self.status is TransactionStatus.ACTIVE

    @property
    def is_top_level(self) -> bool:
        return len(self.name) == 1

    @property
    def depth(self) -> int:
        """Nesting depth: 1 for top-level transactions."""
        return len(self.name)

    def live_children(self) -> List["Transaction"]:
        """Children still active."""
        return [child for child in self.children if child.is_active]

    def _claim_child_slot(self) -> TransactionName:
        slot = self.name + (self._next_child,)
        self._next_child += 1
        return slot

    def _require_active(self) -> None:
        if not self.is_active:
            raise InvalidTransactionState(
                "%s is %s" % (pretty_name(self.name), self.status.value)
            )

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def begin_child(self) -> "Transaction":
        """Start a subtransaction; returns its handle."""
        self._require_active()
        return self._engine._begin_child(self)

    def perform(self, object_name: str, operation: Operation) -> Any:
        """Run one access against *object_name*; return its result.

        Raises :class:`~repro.errors.LockDenied` when a conflicting
        non-ancestor lockholder exists (the exception lists the blockers);
        the caller decides whether to wait and retry.
        """
        self._require_active()
        return self._engine._perform(self, object_name, operation)

    def commit(self, value: Any = None) -> None:
        """Commit this transaction, reporting *value* to the parent.

        All children must have returned first.
        """
        self._require_active()
        self._engine._commit(self, value)

    def abort(self) -> None:
        """Abort this transaction (and implicitly its whole subtree)."""
        self._require_active()
        self._engine._abort(self)

    # ------------------------------------------------------------------
    # Context manager
    # ------------------------------------------------------------------
    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if not self.is_active:
            return False
        if exc_type is None:
            self.commit()
        else:
            self.abort()
        return False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<Transaction %s %s>" % (
            pretty_name(self.name),
            self.status.value,
        )
