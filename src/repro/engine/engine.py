"""The nested-transaction engine.

Single-process, non-blocking implementation of Moss' algorithm over the
:mod:`repro.engine.lockmanager` objects.  Accesses are modelled the way the
paper models them -- as instantaneous leaf subtransactions: the leaf
acquires the lock, responds, and commits immediately, passing the lock to
its parent.  That keeps the engine's lock tables bit-for-bit equal to the
M(X) automaton state, which the conformance harness exploits.

Concurrency is cooperative: callers (the discrete-event simulator, tests,
or application code) interleave calls on different transaction handles; a
conflicting access raises :class:`~repro.errors.LockDenied` and the caller
retries after the blocker returns.  Blocked/unblocked notifications feed a
waits-for graph for deadlock detection.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Dict, Iterable, Optional, Union

from repro.core.events import (
    Abort,
    Commit,
    Create,
    InformAbortAt,
    InformCommitAt,
    ReportAbort,
    ReportCommit,
    RequestCommit,
    RequestCreate,
)
from repro.core.names import ROOT, TransactionName, intern_name, pretty_name
from repro.core.object_spec import ObjectSpec, Operation
from repro.engine.deadlock import WaitsForGraph, choose_victim, top_level
from repro.engine.lockmanager import LockManager
from repro.engine.locks import LockMode
from repro.engine.policies import LockingPolicy, make_policy
from repro.engine.trace import NullRecorder, TraceRecorder
from repro.engine.transaction import Transaction, TransactionStatus
from repro.errors import (
    EngineError,
    InvalidTransactionState,
    LockDenied,
    TransactionAborted,
)
from repro.kernel.scheme import SchemeCapabilities


class Engine:
    """A nested-transaction database engine.

    Lock-based engines can deadlock; the runner resolves via wound-wait
    or detection (``capabilities.waits_are_acyclic`` is False).

    Parameters
    ----------
    specs:
        The object specifications making up the store.
    policy:
        A :class:`~repro.engine.policies.LockingPolicy` or its name
        (``"moss-rw"``, ``"exclusive"``, ``"flat-2pl"``).
    trace:
        When True, record a model-alphabet trace of the run
        (:attr:`recorder`); only meaningful for lock-moving policies.
    trace_limit:
        Optional bound on the recorded trace: keep only the newest
        *trace_limit* events (ring-buffer mode; see
        :class:`~repro.engine.trace.TraceRecorder`).
    observer:
        Optional :class:`repro.obs.Observer` receiving lifecycle,
        access, and lock events.  ``None`` (the default) costs one
        attribute lookup per instrumented transition.
    shards:
        Number of object-store shards (see
        :class:`~repro.kernel.store.ObjectStore`); the thread-safe
        facade maps shards to stripe locks.  Single-threaded callers
        keep the default of 1.
    """

    def __init__(
        self,
        specs: Iterable[ObjectSpec],
        policy: Union[str, LockingPolicy] = "moss-rw",
        trace: bool = False,
        trace_limit: Optional[int] = None,
        observer=None,
        shards: int = 1,
    ):
        specs = list(specs)
        if isinstance(policy, str):
            policy = make_policy(policy)
        self.locks = LockManager(
            specs, make_managed=policy.make_managed, shards=shards
        )
        self.specs: Dict[str, ObjectSpec] = {
            spec.name: spec for spec in specs
        }
        self.policy = policy
        self.obs = observer
        self.locks.obs = observer
        self.recorder = (
            TraceRecorder(max_events=trace_limit)
            if trace
            else NullRecorder()
        )
        # The model's environment transaction T0 is created by the
        # scheduler before anything else; mirror that in the trace.
        self.recorder.record(Create(ROOT))
        self.waits = WaitsForGraph()
        self.started_at: Dict[TransactionName, float] = {}
        self.transactions: Dict[TransactionName, Transaction] = {}
        self._next_top = 0
        self._clock = 0.0
        # Optional write-ahead log (attach_wal); one attribute lookup
        # per transition when absent, like `obs`.
        self._wal = None
        # Group-commit seam: a concurrency facade that holds coarse
        # locks around commit/abort sets `wal_defers` so the top-level
        # flush is only *ticketed* here (``pending_flush`` holds the
        # waiter) and awaited by the facade after its locks release --
        # otherwise concurrent flush waits could never overlap.
        self.wal_defers = False
        self.pending_flush = None
        # Bumped by every abort; lets _check_not_orphan cache clean
        # ancestor walks per handle between aborts.
        self._abort_epoch = 0
        # Counters for metrics/reporting.
        self.stats = {
            "accesses": 0,
            "denials": 0,
            "commits": 0,
            "aborts": 0,
            "deadlocks": 0,
        }

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    @property
    def capabilities(self) -> SchemeCapabilities:
        """Capability flags for this engine, derived from its policy."""
        return SchemeCapabilities(
            waits_are_acyclic=False,
            aborts_whole_tree=self.policy.escalates_aborts,
            moves_locks=self.policy.moves_locks,
            model_conformant=self.policy.model_conformant,
            object_local_performs=True,
            durable=True,
        )

    @property
    def scheme_name(self) -> str:
        """The scheme/policy name, for reporting and error messages."""
        return self.policy.name

    def attach_auditor(self, auditor=None, config=None):
        """Attach an online serializability auditor; returns it.

        With no *auditor* given one is built from *config*, defaulting
        to the capability-gated trust dial
        (:meth:`repro.audit.AuditConfig.for_capabilities`): a
        model-conformant policy gets sampled auditing, anything
        experimental a full audit.  When the engine was built without
        an observer, a lightweight audit-only one
        (:class:`repro.obs.AuditObserver`) is created on demand, so
        auditing does not drag the metrics pipeline in.  Attach before
        driving transactions.
        """
        from repro.audit import AuditConfig, OnlineAuditor

        if auditor is None:
            if config is None:
                config = AuditConfig.for_capabilities(self.capabilities)
            auditor = OnlineAuditor(config)
        obs = self.obs
        if obs is None:
            from repro.obs import AuditObserver

            obs = AuditObserver()
            self.obs = obs
            self.locks.obs = obs
        obs.attach_auditor(auditor)
        return auditor

    def attach_wal(self, wal=None, sink=None, segment_bytes=None):
        """Attach a write-ahead log (:mod:`repro.wal`); returns it.

        With no *wal* given one is built around *sink* (default: an
        in-memory :class:`~repro.wal.log.MemoryWalSink`).  The log's
        first segment header records the scheme and object specs, so
        :func:`repro.wal.recover` can rebuild the engine from the log
        alone.  Capability-gated on ``capabilities.durable``, and must
        happen before any transaction begins -- a log that missed
        transitions cannot replay to the engine's state.
        """
        if not self.capabilities.durable:
            raise EngineError(
                "scheme %r is not durable "
                "(capabilities.durable is False)" % self.scheme_name
            )
        if self._next_top or self.transactions:
            raise EngineError(
                "attach_wal must run before any transaction begins"
            )
        if wal is None:
            from repro.wal.log import (
                DEFAULT_SEGMENT_BYTES,
                WriteAheadLog,
            )

            wal = WriteAheadLog(
                sink=sink,
                segment_bytes=(
                    DEFAULT_SEGMENT_BYTES
                    if segment_bytes is None
                    else segment_bytes
                ),
                observer=self.obs,
            )
        wal.open(self.scheme_name, self.specs.values())
        self._wal = wal
        return wal

    @property
    def store(self):
        """The kernel :class:`~repro.kernel.store.ObjectStore`."""
        return self.locks.store

    def begin_top(self, at: Optional[float] = None) -> Transaction:
        """Start a new top-level transaction."""
        name = (self._next_top,)
        self._next_top += 1
        return self._register(name, parent=None, at=at)

    def object_value(self, object_name: str, committed: bool = True) -> Any:
        """Inspect an object: its committed (or current) value."""
        managed = self.locks.object(object_name)
        return (
            managed.committed_value() if committed else managed.current_value()
        )

    def fresh_blockers(
        self,
        txn: Transaction,
        object_name: str,
        operation: Operation,
    ):
        """The transactions currently preventing *txn* from this access.

        Recomputed from the live lock tables (no cached state), so callers
        can build an always-current waits-for graph.
        """
        managed = self.locks.object(object_name)
        mode = self.policy.mode_for(operation)
        requester = txn.name + (txn._next_child,)
        return managed.blockers(requester, mode, operation=operation)

    def transaction(self, name: TransactionName) -> Transaction:
        """Look up a transaction handle by name."""
        try:
            return self.transactions[name]
        except KeyError:
            raise EngineError("unknown transaction %r" % (name,)) from None

    # ------------------------------------------------------------------
    # Deadlock hooks (used by the simulator / blocking wrappers)
    # ------------------------------------------------------------------
    def note_blocked(
        self,
        txn: Transaction,
        blockers: Iterable[TransactionName],
    ) -> Optional[TransactionName]:
        """Record a blocked access; return a deadlock victim if one arose.

        The victim is the name of a *top-level* transaction; the caller is
        responsible for aborting it (usually via
        ``engine.transaction(victim).abort()``).
        """
        cycle = self.waits.add_wait(txn.name, blockers)
        if cycle is None:
            return None
        self.stats["deadlocks"] += 1
        victim = choose_victim(cycle, self.started_at)
        obs = self.obs
        if obs is not None:
            obs.deadlock(victim)
        return victim

    def note_unblocked(self, txn: Transaction) -> None:
        """Clear *txn*'s waits-for edges (it was granted or gave up)."""
        self.waits.remove_waiter(txn.name)

    def count_deadlock(self) -> None:
        """Record one externally resolved deadlock in the stats.

        Drivers that detect deadlocks themselves (wound-wait, drain
        watchdogs) report them here instead of mutating ``stats``.
        """
        self.stats["deadlocks"] += 1
        obs = self.obs
        if obs is not None:
            obs.deadlock()

    # ------------------------------------------------------------------
    # Internal transitions (called through Transaction handles)
    # ------------------------------------------------------------------
    def _register(
        self,
        name: TransactionName,
        parent: Optional[Transaction],
        at: Optional[float] = None,
    ) -> Transaction:
        # Intern the name so lock-grant ancestry tests are O(1) pointer
        # and set operations (access leaves are never interned -- their
        # parent, registered here, is what the fast path looks up).
        name = intern_name(name)
        txn = Transaction(self, name, parent)
        self.transactions[name] = txn
        if parent is not None:
            parent.children.append(txn)
        self._clock += 1.0
        if len(name) == 1:
            self.started_at[name] = at if at is not None else self._clock
        self.recorder.record_internal(name)
        self.recorder.record(RequestCreate(name))
        self.recorder.record(Create(name))
        obs = self.obs
        if obs is not None:
            obs.txn_begin(name)
        wal = self._wal
        if wal is not None:
            wal.log_begin(name)
        return txn

    def _begin_child(self, parent: Transaction) -> Transaction:
        name = parent._claim_child_slot()
        return self._register(name, parent)

    def _check_not_orphan(self, txn: Transaction) -> None:
        # Orphan-hood can only change when an abort happens, so the
        # ancestor walk runs once per (handle, abort epoch) instead of
        # on every perform -- deep chains would otherwise pay O(depth)
        # per access just to re-learn nothing was aborted.
        if txn._orphan_checked_epoch == self._abort_epoch:
            return
        node: Optional[Transaction] = txn
        while node is not None:
            if node.status is TransactionStatus.ABORTED:
                raise TransactionAborted(
                    txn.name,
                    "ancestor %s aborted" % pretty_name(node.name),
                )
            node = node.parent
        txn._orphan_checked_epoch = self._abort_epoch

    def _perform(
        self,
        txn: Transaction,
        object_name: str,
        operation: Operation,
    ) -> Any:
        self._check_not_orphan(txn)
        managed = self.locks.object(object_name)
        mode = self.policy.mode_for(operation)
        access = txn.name + (txn._next_child,)
        blockers = managed.blockers(access, mode, operation=operation)
        if blockers:
            self.stats["denials"] += 1
            obs = self.obs
            if obs is not None:
                obs.lock_denied(txn.name, object_name, blockers)
            raise LockDenied(
                "%s on %s blocked by %s"
                % (
                    pretty_name(txn.name),
                    object_name,
                    sorted(pretty_name(b) for b in blockers),
                ),
                blockers=blockers,
            )
        # Granted: materialise the access leaf, run it, commit it at once.
        access = txn._claim_child_slot()
        owner = self.policy.owner_for(access)
        self.stats["accesses"] += 1
        # Record the access with the classification the policy actually
        # used: under "exclusive" every access is designated a write, so
        # the replayed M(X) takes write locks exactly like the engine did.
        recorded = operation
        if operation.is_read and mode is not LockMode.READ:
            recorded = replace(operation, is_read=False)
        obs = self.obs
        if obs is not None:
            obs.access(
                txn.name, object_name, recorded.kind, recorded.is_read
            )
        self.recorder.record_access(access, object_name, recorded)
        self.recorder.record(RequestCreate(access))
        self.recorder.record(Create(access))
        result = managed.acquire(access, operation, mode)
        self.locks.notify("acquire", access, (object_name,))
        self.recorder.record(RequestCommit(access, result))
        self.recorder.record(Commit(access))
        self.recorder.record(ReportCommit(access, result))
        if self.policy.moves_locks:
            managed.on_commit(access)
            self.recorder.record(InformCommitAt(object_name, access))
        elif owner != access:
            # Flat policy: the leaf never held the lock; re-home it.
            managed.rehome(access, owner, mode)
        wal = self._wal
        if wal is not None:
            # After the full transition, so the logged generation is the
            # post-movement value recovery cross-checks on replay.  The
            # *original* operation is logged (not the policy's write
            # reclassification): replay re-derives the mode the same way
            # this perform did.
            wal.log_acquire(
                access, object_name, operation, managed.generation
            )
        return result

    def _commit(self, txn: Transaction, value: Any) -> None:
        self._check_not_orphan(txn)
        live = txn.live_children()
        if live:
            raise InvalidTransactionState(
                "%s cannot commit with live children %s"
                % (
                    pretty_name(txn.name),
                    [pretty_name(child.name) for child in live],
                )
            )
        txn.status = TransactionStatus.COMMITTED
        txn.value = value
        self.stats["commits"] += 1
        obs = self.obs
        if obs is not None:
            obs.txn_commit(txn.name)
        self.waits.remove_waiter(txn.name)
        self.recorder.record_commit_value(txn.name, value)
        self.recorder.record(RequestCommit(txn.name, value))
        self.recorder.record(Commit(txn.name))
        self.recorder.record(ReportCommit(txn.name, value))
        if self.policy.moves_locks or txn.is_top_level:
            touched = self.locks.on_commit(txn.name)
            for object_name in touched:
                self.recorder.record(InformCommitAt(object_name, txn.name))
        wal = self._wal
        if wal is not None:
            wal.log_commit(txn.name)
            if txn.is_top_level:
                # Top-level commits are the durability points: a crash
                # after the flush returns must preserve this commit.
                if self.wal_defers:
                    self.pending_flush = wal.flush_async()
                else:
                    wal.flush()

    def _abort(self, txn: Transaction) -> None:
        if self.policy.escalates_aborts and not txn.is_top_level:
            top = self.transactions[top_level(txn.name)]
            if top.is_active:
                self._abort(top)
                return
        self._abort_epoch += 1
        self._mark_aborted_subtree(txn)
        self.stats["aborts"] += 1
        self.waits.remove_subtree(txn.name)
        self.recorder.record(Abort(txn.name))
        self.recorder.record(ReportAbort(txn.name))
        touched = self.locks.on_abort(txn.name)
        for object_name in touched:
            self.recorder.record(InformAbortAt(object_name, txn.name))
        wal = self._wal
        if wal is not None:
            # Logged after any escalation redirect, so the record names
            # the subtree root that actually aborted.  Presumed-abort
            # makes abort records advisory (a missing one recovers the
            # same way), but logging them keeps replay exact.
            wal.log_abort(txn.name)
            if txn.is_top_level:
                if self.wal_defers:
                    self.pending_flush = wal.flush_async()
                else:
                    wal.flush()

    def _mark_aborted_subtree(
        self, txn: Transaction, root: bool = True
    ) -> None:
        txn.status = TransactionStatus.ABORTED
        obs = self.obs
        if obs is not None:
            obs.txn_abort(
                txn.name,
                cause="explicit" if root else "ancestor-abort",
            )
        for child in txn.children:
            if child.is_active:
                self._mark_aborted_subtree(child, root=False)
