"""Per-holder version maps: the engine's ``map`` component of M(X).

Moss' state-restoration data is a function from write-lockholders to object
states.  :class:`VersionMap` implements it with the three operations the
algorithm needs: install a version for a new write-lockholder, promote a
committing holder's version to its parent, and discard the versions of an
aborted subtree.  ``current(chain)`` returns the version of the least
(deepest) write-lockholder, i.e. "the current state of X".
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

from repro.core.names import ROOT, TransactionName, is_descendant, parent
from repro.errors import EngineError


class VersionMap:
    """Versions of one object, keyed by write-lockholder."""

    def __init__(self, initial: Any):
        self._versions: Dict[TransactionName, Any] = {ROOT: initial}

    def holders(self) -> Tuple[TransactionName, ...]:
        """Transactions with a stored version, sorted."""
        return tuple(sorted(self._versions))

    def has(self, holder: TransactionName) -> bool:
        return holder in self._versions

    def get(self, holder: TransactionName) -> Any:
        try:
            return self._versions[holder]
        except KeyError:
            raise EngineError("no version for %r" % (holder,)) from None

    def install(self, holder: TransactionName, value: Any) -> None:
        """Store *value* as *holder*'s version (overwrites)."""
        self._versions[holder] = value

    def promote(self, holder: TransactionName) -> None:
        """Pass *holder*'s version to its parent (INFORM_COMMIT effect)."""
        if holder not in self._versions:
            return
        mother = parent(holder)
        if mother is None:
            raise EngineError("cannot promote the root version")
        self._versions[mother] = self._versions.pop(holder)

    def discard_subtree(self, doomed: TransactionName) -> int:
        """Drop versions of *doomed* and its descendants; return the count."""
        victims = [
            holder
            for holder in self._versions
            if is_descendant(holder, doomed)
        ]
        for holder in victims:
            del self._versions[holder]
        return len(victims)

    def deepest(self) -> TransactionName:
        """The least (most deeply nested) holder with a version."""
        return max(self._versions, key=len)

    def current(self) -> Any:
        """The current state of the object: the deepest holder's version.

        Valid whenever the write-lockholders form a chain, which Moss'
        grant rule maintains (Lemma 21).
        """
        return self._versions[self.deepest()]
