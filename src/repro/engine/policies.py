"""Locking policies: Moss R/W, exclusive, and flat two-phase locking.

A policy decides two things for every access:

* the **lock mode** it takes (``moss-rw`` honours the read/write
  classification; ``exclusive`` takes write locks for everything -- the
  paper's degeneration remark, benchmark E8);
* the **lock owner**: Moss grants to the access itself, so locks flow
  upward on commit; ``flat-2pl`` grants directly to the top-level
  ancestor, modelling a classical flat two-phase-locking system that has
  no subtransaction isolation (a subtransaction abort must escalate to a
  whole-transaction abort, benchmark E10).
"""

from __future__ import annotations

from repro.core.names import TransactionName
from repro.core.object_spec import Operation
from repro.engine.locks import LockMode
from repro.errors import EngineError


class LockingPolicy:
    """Strategy interface for the engine's lock behaviour."""

    #: Identifier used in reports and by :func:`make_policy`.
    name = "abstract"

    def mode_for(self, operation: Operation) -> LockMode:
        """The lock mode an access performing *operation* must take."""
        raise NotImplementedError

    def owner_for(self, access: TransactionName) -> TransactionName:
        """The transaction that receives the lock for *access*."""
        raise NotImplementedError

    @property
    def escalates_aborts(self) -> bool:
        """True when a subtransaction abort must abort the whole top-level."""
        return False

    @property
    def moves_locks(self) -> bool:
        """True when commits pass locks upward (Moss inheritance)."""
        return True

    @property
    def model_conformant(self) -> bool:
        """True when traces of this policy refine the paper's M(X)."""
        return True

    def make_managed(self, spec):
        """Build the per-object lock structure for this policy."""
        from repro.engine.lockmanager import ManagedObject

        return ManagedObject(spec)


class MossPolicy(LockingPolicy):
    """Moss' algorithm as in the paper: R/W locks owned by the access."""

    name = "moss-rw"

    def mode_for(self, operation: Operation) -> LockMode:
        return LockMode.READ if operation.is_read else LockMode.WRITE

    def owner_for(self, access: TransactionName) -> TransactionName:
        return access


class ExclusivePolicy(MossPolicy):
    """Moss with every access designated a write: exclusive locking."""

    name = "exclusive"

    def mode_for(self, operation: Operation) -> LockMode:
        return LockMode.WRITE


class FlatTwoPhasePolicy(LockingPolicy):
    """Classical flat 2PL behind the nested API.

    Locks are owned by the top-level transaction, so siblings inside one
    tree never conflict with each other, but no subtransaction can abort
    independently: the engine escalates subtransaction aborts to the
    top-level.
    """

    name = "flat-2pl"

    def mode_for(self, operation: Operation) -> LockMode:
        return LockMode.READ if operation.is_read else LockMode.WRITE

    def owner_for(self, access: TransactionName) -> TransactionName:
        if not access:
            raise EngineError("the root performs no accesses")
        return access[:1]

    @property
    def escalates_aborts(self) -> bool:
        return True

    @property
    def moves_locks(self) -> bool:
        return False

    @property
    def model_conformant(self) -> bool:
        return False


_POLICIES = {
    MossPolicy.name: MossPolicy,
    ExclusivePolicy.name: ExclusivePolicy,
    FlatTwoPhasePolicy.name: FlatTwoPhasePolicy,
}


def make_policy(name: str) -> LockingPolicy:
    """Instantiate a policy: moss-rw, exclusive, flat-2pl or semantic."""
    if name == "semantic":
        # Imported lazily: semantic.py subclasses MossPolicy.
        from repro.engine.semantic import SemanticPolicy

        return SemanticPolicy()
    try:
        return _POLICIES[name]()
    except KeyError:
        raise EngineError(
            "unknown policy %r (choose from %s)"
            % (name, ", ".join(sorted(_POLICIES) + ["semantic"]))
        ) from None
