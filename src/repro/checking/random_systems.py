"""Seeded random system types for validation and benchmarking.

Generates concrete :class:`~repro.core.names.SystemType` instances with
configurable tree shape, object mix and read fraction.  The generator is a
pure function of its RNG, so every experiment is reproducible from its
seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.adt import BankAccount, Counter, IntRegister, SetObject
from repro.core.names import ROOT, SystemType, SystemTypeBuilder
from repro.core.object_spec import ObjectSpec, Operation


@dataclass
class RandomSystemConfig:
    """Shape parameters for random system types."""

    objects: int = 2
    top_level: int = 3
    max_depth: int = 3
    max_fanout: int = 3
    accesses_per_leaf_parent: int = 2
    read_fraction: float = 0.5


def _random_object(rng: random.Random, index: int) -> ObjectSpec:
    kind = rng.randrange(4)
    name = "obj%d" % index
    if kind == 0:
        return IntRegister(name, initial=rng.randrange(10))
    if kind == 1:
        return Counter(name, initial=0)
    if kind == 2:
        return BankAccount(name, initial=100)
    return SetObject(name)


def _random_operation(
    rng: random.Random, spec: ObjectSpec, read_fraction: float
) -> Operation:
    want_read = rng.random() < read_fraction
    if isinstance(spec, IntRegister):
        if want_read:
            return IntRegister.read()
        return rng.choice(
            [IntRegister.write(rng.randrange(100)), IntRegister.add(1)]
        )
    if isinstance(spec, Counter):
        if want_read:
            return Counter.value()
        return Counter.increment(rng.randrange(1, 5))
    if isinstance(spec, BankAccount):
        if want_read:
            return BankAccount.balance()
        return rng.choice(
            [
                BankAccount.deposit(rng.randrange(1, 50)),
                BankAccount.withdraw(rng.randrange(1, 50)),
            ]
        )
    if isinstance(spec, SetObject):
        if want_read:
            return rng.choice(
                [SetObject.contains(rng.randrange(5)), SetObject.size()]
            )
        return rng.choice(
            [
                SetObject.insert(rng.randrange(5)),
                SetObject.remove(rng.randrange(5)),
            ]
        )
    raise TypeError("unsupported spec %r" % spec)


def random_system_type(
    seed: int,
    config: Optional[RandomSystemConfig] = None,
) -> SystemType:
    """Build a random concrete system type from *seed*."""
    rng = random.Random(seed)
    config = config or RandomSystemConfig()
    builder = SystemTypeBuilder()
    specs: List[ObjectSpec] = []
    for index in range(config.objects):
        spec = _random_object(rng, index)
        specs.append(spec)
        builder.add_object(spec)

    def grow(parent, depth: int) -> None:
        if depth >= config.max_depth:
            for _ in range(config.accesses_per_leaf_parent):
                spec = rng.choice(specs)
                operation = _random_operation(
                    rng, spec, config.read_fraction
                )
                builder.add_access(parent, spec.name, operation)
            return
        fanout = rng.randrange(1, config.max_fanout + 1)
        for _ in range(fanout):
            if depth + 1 < config.max_depth and rng.random() < 0.5:
                child = builder.add_child(parent)
                grow(child, depth + 1)
            else:
                spec = rng.choice(specs)
                operation = _random_operation(
                    rng, spec, config.read_fraction
                )
                builder.add_access(parent, spec.name, operation)

    for _ in range(config.top_level):
        top = builder.add_child(ROOT)
        grow(top, 1)
    return builder.build()
