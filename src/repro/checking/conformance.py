"""Engine-to-model conformance checking.

An engine run with tracing enabled produces a schedule over the formal
model's alphabet.  Conformance means two things, both checked here:

1. **Refinement**: the trace is literally a schedule of the R/W Locking
   system automata for the run's emergent system type -- every event is
   replayed through the composition of transaction automata, M(X) objects
   and the generic scheduler, which must accept each step.
2. **Serial correctness**: the trace passes the Theorem 34 checker, i.e.
   it is serially correct for every non-orphan transaction.

Transaction behaviour for the replay is reconstructed from the trace by
:class:`TraceLogic`: each transaction may request exactly the children it
requested in the run, and commits with exactly the value it reported.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.core.correctness import ScheduleReport, check_schedule
from repro.core.events import RequestCommit, RequestCreate
from repro.core.names import TransactionName
from repro.core.systems import RWLockingSystem, SerialSystem
from repro.core.transaction import LocalView, TransactionLogic
from repro.engine.engine import Engine
from repro.errors import EngineError, NotEnabledError


class TraceLogic(TransactionLogic):
    """Replays one transaction's recorded behaviour.

    Permissive where it can be: children may be requested in any order the
    surrounding schedule asks for (projection equality pins the order
    anyway), and the commit value is offered whenever the transaction has
    been created.
    """

    def __init__(
        self,
        wanted: Tuple[TransactionName, ...],
        commit_value: Any = None,
        has_commit: bool = False,
    ):
        self.wanted = wanted
        self.commit_value = commit_value
        self.has_commit = has_commit

    def request_candidates(self, view: LocalView):
        requested = set(view.requested)
        return tuple(
            child for child in self.wanted if child not in requested
        )

    def commit_values(self, view: LocalView):
        if self.has_commit:
            return (self.commit_value,)
        return ()


def trace_logic_factory(alpha, commit_values: Dict[TransactionName, Any]):
    """Build a logic factory reproducing the behaviour recorded in *alpha*."""
    requested: Dict[TransactionName, List[TransactionName]] = {}
    committed_value: Dict[TransactionName, Any] = dict(commit_values)
    has_commit: Dict[TransactionName, bool] = {}
    for event in alpha:
        if isinstance(event, RequestCreate):
            mother = event.transaction[:-1]
            requested.setdefault(mother, []).append(event.transaction)
        elif isinstance(event, RequestCommit):
            has_commit[event.transaction] = True
            committed_value.setdefault(event.transaction, event.value)

    def factory(name: TransactionName) -> TransactionLogic:
        return TraceLogic(
            tuple(requested.get(name, ())),
            commit_value=committed_value.get(name),
            has_commit=has_commit.get(name, False),
        )

    return factory


@dataclass
class ConformanceReport:
    """Result of replaying one engine trace against the model."""

    refinement_ok: bool
    rejection: Optional[str]
    correctness: Optional[ScheduleReport]
    trace_length: int
    #: Rule-level findings from :mod:`repro.analysis` explaining a
    #: failure (populated only when the replay rejects or Theorem 34 is
    #: violated; empty tuple when the analyzers found nothing to blame).
    diagnosis: Optional[Tuple] = None
    #: Engine/M(X) lock-table lockstep: after a successful replay the
    #: engine's live holder sets must equal the replayed automata's,
    #: object for object.  Guards the lock-grant fast path -- any
    #: divergence between the optimised tables and the paper's rules
    #: shows up here bit-for-bit.
    lockstep_ok: bool = True
    lockstep_error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return (
            self.refinement_ok
            and self.lockstep_ok
            and (self.correctness is not None and bool(self.correctness))
        )

    def __bool__(self) -> bool:
        return self.ok


def _check_lockstep(
    engine: Engine, rw_system: RWLockingSystem
) -> Tuple[bool, Optional[str]]:
    """Compare live engine lock tables against the replayed M(X) state.

    Uses the engine objects' zero-copy ``holders_view()`` (read-only
    inspection; nothing is mutated and nothing runs concurrently here).
    """
    for object_name, managed in engine.locks.objects.items():
        view = getattr(managed, "holders_view", None)
        if view is None:
            # Non-Moss managed objects (e.g. semantic locking) have no
            # holder sets to compare; they are also not model
            # conformant, so check_engine_trace rejects them earlier.
            continue
        write_holders, read_holders = view()
        mx = rw_system.locking_object(object_name)
        if write_holders != mx.write_lockholders:
            return False, (
                "%s: engine write holders %r != M(X) %r"
                % (
                    object_name,
                    sorted(write_holders),
                    sorted(mx.write_lockholders),
                )
            )
        if read_holders != mx.read_lockholders:
            return False, (
                "%s: engine read holders %r != M(X) %r"
                % (
                    object_name,
                    sorted(read_holders),
                    sorted(mx.read_lockholders),
                )
            )
    return True, None


def check_engine_trace(engine: Engine) -> ConformanceReport:
    """Run the full conformance pipeline on a traced engine.

    The engine must have been constructed with ``trace=True`` and run a
    scheme whose capabilities declare ``model_conformant`` (``moss-rw``
    or ``exclusive``); flat 2PL and MVTO do not refine Moss' automata
    and are rejected up front.
    """
    if not engine.capabilities.model_conformant:
        raise EngineError(
            "scheme %r does not refine the Moss model" % engine.scheme_name
        )
    recorder = engine.recorder
    if not hasattr(recorder, "system_type"):
        raise EngineError("engine was not constructed with trace=True")
    alpha = recorder.schedule()
    system_type = recorder.system_type(engine.specs)
    factory = trace_logic_factory(alpha, recorder.commit_values)

    rw_system = RWLockingSystem(system_type, logic_factory=factory)
    rejection: Optional[str] = None
    for index, event in enumerate(alpha):
        try:
            rw_system.apply(event)
        except NotEnabledError as exc:
            rejection = "event %d (%s) rejected: %s" % (index, event, exc)
            break
    refinement_ok = rejection is None

    correctness: Optional[ScheduleReport] = None
    if refinement_ok:
        serial_system = SerialSystem(system_type, logic_factory=factory)
        correctness = check_schedule(
            system_type, alpha, serial_system=serial_system
        )

    lockstep_ok = True
    lockstep_error: Optional[str] = None
    if refinement_ok and not getattr(recorder, "dropped_events", 0):
        # With the complete trace replayed, the engine's live lock
        # tables and the replayed M(X) automata describe the same
        # moment; they must agree holder-for-holder.  This pins the
        # engine's grant fast path and depth-indexed aborts to the
        # unoptimised model rules.  (A ring-buffer recorder that
        # dropped events replayed only a suffix, so the comparison
        # would be vacuous -- skip it.)
        lockstep_ok, lockstep_error = _check_lockstep(engine, rw_system)

    report = ConformanceReport(
        refinement_ok=refinement_ok,
        rejection=rejection,
        correctness=correctness,
        trace_length=len(alpha),
        lockstep_ok=lockstep_ok,
        lockstep_error=lockstep_error,
    )
    if not report.ok:
        # Hand the failing trace to the analyzers so every replay
        # failure comes with a rule-level diagnosis.
        from repro.analysis import analyze_trace

        schedule_report, race_report = analyze_trace(alpha, system_type)
        report.diagnosis = tuple(
            schedule_report.findings + race_report.findings
        )
    return report
