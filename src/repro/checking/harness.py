"""Batch statistical validation of the paper's theorems.

Drives seeded random exploration of R/W Locking systems and checks
Theorem 34 (and whatever extra per-schedule predicates a caller supplies)
on every generated schedule.  This is the engine room of benchmarks E1-E7:
each bench configures a schedule source and reports validation rates.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.checking.random_systems import (
    RandomSystemConfig,
    random_system_type,
)
from repro.core.correctness import check_serial_correctness
from repro.core.events import Event
from repro.core.names import SystemType
from repro.core.systems import RWLockingSystem
from repro.ioa.explorer import random_schedule


@dataclass
class ValidationStats:
    """Aggregate outcome of a validation batch."""

    schedules: int = 0
    events: int = 0
    transactions_checked: int = 0
    violations: int = 0
    failures: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.violations == 0

    def merge(self, other: "ValidationStats") -> None:
        self.schedules += other.schedules
        self.events += other.events
        self.transactions_checked += other.transactions_checked
        self.violations += other.violations
        self.failures.extend(other.failures)


def validate_random_schedules(
    system_type: Optional[SystemType] = None,
    schedules: int = 20,
    max_steps: int = 400,
    seed: int = 0,
    system_seed: int = 0,
    config: Optional[RandomSystemConfig] = None,
    propose_aborts: bool = True,
    extra_check: Optional[
        Callable[[SystemType, Sequence[Event]], Optional[str]]
    ] = None,
) -> ValidationStats:
    """Generate random concurrent schedules and check Theorem 34 on each.

    When *system_type* is omitted a random one is generated from
    *system_seed* / *config*.  *extra_check* may return an error string to
    record an additional per-schedule violation (used by the lemma-level
    benches).
    """
    if system_type is None:
        system_type = random_system_type(system_seed, config)
    system = RWLockingSystem(system_type, propose_aborts=propose_aborts)
    rng = random.Random(seed)
    stats = ValidationStats()
    for _ in range(schedules):
        alpha = random_schedule(system, max_steps, rng)
        stats.schedules += 1
        stats.events += len(alpha)
        report = check_serial_correctness(system, alpha)
        stats.transactions_checked += len(report.reports)
        if not report.ok:
            stats.violations += 1
            for item in report.failed()[:3]:
                stats.failures.append(
                    "txn %r: %s" % (item.transaction, item.failures[:2])
                )
        if extra_check is not None:
            problem = extra_check(system_type, alpha)
            if problem is not None:
                stats.violations += 1
                stats.failures.append(problem)
    return stats
