"""Observable-consistency anomalies: what orphans may see.

The paper is careful to claim serial correctness only for *non-orphan*
transactions and remarks: "It would be best if every transaction (whether
an orphan or not) saw consistent data.  Ensuring this requires a much more
intricate scheduler" (orphan elimination, [HLMW]).  This module makes that
boundary observable:

* :func:`find_register_anomalies` is a *sound* anomaly detector on
  register-valued objects: within one transaction's subtree, the stream
  of access results on an object must be explainable by a single starting
  value evolved only by the subtree's own operations -- in every serial
  schedule nothing else touches the object while the transaction runs
  (Lemma 6).  A violated stream (e.g. two reads returning different
  values with no intervening subtree write) is impossible serially.
* :func:`orphan_anomaly_witness` constructs, step by step through a real
  R/W Locking system, a schedule in which an **orphan** exhibits exactly
  such an anomaly -- while Theorem 34 (checked everywhere else in this
  library) guarantees non-orphans never do.
* :func:`serialization_witnesses` runs the streaming serialization-graph
  auditor (:mod:`repro.audit`) over a finished model-alphabet schedule
  and returns its witness cycles -- the offline twin of the online
  auditor, sharing one graph/cycle core.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Sequence, Tuple

from repro.adt import IntRegister
from repro.core.events import (
    Abort,
    Commit,
    Create,
    Event,
    InformAbortAt,
    InformCommitAt,
    ReportCommit,
    RequestCommit,
    RequestCreate,
)
from repro.core.names import (
    ROOT,
    SystemType,
    SystemTypeBuilder,
    TransactionName,
    chain_between,
    is_descendant,
    pretty_name,
)
from repro.core.systems import RWLockingSystem
from repro.core.visibility import is_orphan


@dataclass(frozen=True)
class Anomaly:
    """A serially-impossible observation stream inside one subtree."""

    transaction: TransactionName
    object_name: str
    access: TransactionName
    expected: Any
    observed: Any

    def __str__(self) -> str:
        return (
            "%s at %s: access %s observed %r where any serial execution "
            "shows %r"
            % (
                pretty_name(self.transaction),
                self.object_name,
                pretty_name(self.access),
                self.observed,
                self.expected,
            )
        )


def _register_objects(system_type: SystemType) -> List[str]:
    return [
        name
        for name in system_type.object_names()
        if isinstance(system_type.object_spec(name), IntRegister)
    ]


def find_register_anomalies(
    system_type: SystemType,
    alpha: Sequence[Event],
    subtree: TransactionName,
) -> List[Anomaly]:
    """Anomalies in *subtree*'s view of every IntRegister object.

    Walks the subtree's responded accesses in schedule order and checks
    each result against a value evolved from the first observation by the
    subtree's own operations alone.  Any mismatch is impossible in a
    serial schedule, where no sibling interleaves with the subtree.
    """
    anomalies: List[Anomaly] = []
    registers = set(_register_objects(system_type))
    abort_events = {
        event for event in alpha if isinstance(event, Abort)
    }
    known: Dict[str, Any] = {}
    for event in alpha:
        if not isinstance(event, RequestCommit):
            continue
        access = event.transaction
        if not system_type.is_access(access):
            continue
        if not is_descendant(access, subtree):
            continue
        # Skip accesses rolled back *inside* the subtree: an aborted
        # subtransaction's accesses "never happened" in any serial view
        # (Moss' versions restore their effects), so their observations
        # cannot witness an anomaly.  Pending and committed accesses
        # stay -- they are what the subtree actually experienced.
        if any(
            Abort(node) in abort_events
            for node in chain_between(access, subtree)
        ):
            continue
        object_name = system_type.object_of(access)
        if object_name not in registers:
            continue
        operation = system_type.operation_of(access)
        current = known.get(object_name)
        if operation.kind == "read":
            if current is not None and event.value != current:
                anomalies.append(
                    Anomaly(
                        transaction=subtree,
                        object_name=object_name,
                        access=access,
                        expected=current,
                        observed=event.value,
                    )
                )
            known[object_name] = event.value
        elif operation.kind == "write":
            known[object_name] = operation.args[0]
        elif operation.kind == "add":
            if current is not None:
                expected = current + operation.args[0]
                if event.value != expected:
                    anomalies.append(
                        Anomaly(
                            transaction=subtree,
                            object_name=object_name,
                            access=access,
                            expected=expected,
                            observed=event.value,
                        )
                    )
            known[object_name] = event.value
    return anomalies


def serialization_witnesses(
    system_type: SystemType, alpha: Sequence[Event]
):
    """Witness cycles in *alpha*'s committed-top serialization graph.

    Feeds the schedule through the online auditor
    (:func:`repro.audit.audit_schedule`) in full-audit mode and
    returns the list of :class:`repro.audit.Violation` found -- empty
    when the committed top-level transactions are conflict-
    serializable.  Aborted subtrees are pruned exactly as online.
    """
    from repro.audit import AuditConfig, audit_schedule

    auditor = audit_schedule(
        system_type, alpha, config=AuditConfig(sample_every=1)
    )
    return list(auditor.violations)


def orphan_demo_system_type() -> SystemType:
    """The smallest system exhibiting an orphan anomaly.

    Tree: T0.0 has one child T0.0.0 with two read accesses on register x;
    T0.1 writes x.  The anomaly: T0.0.0 reads x twice around T0.1's
    committed write, after T0.0 has been aborted.
    """
    builder = SystemTypeBuilder()
    builder.add_object(IntRegister("x", initial=0))
    victim_top = builder.add_child(ROOT)           # (0,)
    orphan = builder.add_child(victim_top)         # (0,0)
    builder.add_access(orphan, "x", IntRegister.read())   # (0,0,0)
    builder.add_access(orphan, "x", IntRegister.read())   # (0,0,1)
    writer_top = builder.add_child(ROOT)           # (1,)
    builder.add_access(writer_top, "x", IntRegister.write(5))  # (1,0)
    return builder.build()


@dataclass
class OrphanWitness:
    """A concrete schedule showing an orphan's inconsistent view."""

    system_type: SystemType
    schedule: Tuple[Event, ...]
    orphan: TransactionName
    anomalies: List[Anomaly]


def orphan_anomaly_witness() -> OrphanWitness:
    """Drive a real R/W Locking system into the orphan anomaly.

    Every event is applied through the composed automata, so the witness
    is a genuine concurrent schedule, not a hand-written sequence:

    1. T0.0 and its child T0.0.0 start; T0.0.0 reads x = 0.
    2. The generic scheduler unilaterally aborts T0.0 (it may: T0.0 has
       not returned).  T0.0.0 is now an orphan but keeps running.
       INFORM_ABORT releases the subtree's read lock at M(x).
    3. T0.1 writes x = 5 and commits to the top; M(x) is informed, so the
       committed value becomes 5.
    4. The orphan T0.0.0 performs its second read and sees 5.

    The orphan observed x = 0 and then x = 5 with no intervening write of
    its own -- impossible in any serial schedule.
    """
    system_type = orphan_demo_system_type()
    system = RWLockingSystem(system_type, propose_aborts=True)
    orphan = (0, 0)
    read_one, read_two = (0, 0, 0), (0, 0, 1)
    writer_access = (1, 0)
    script: List[Event] = [
        Create(ROOT),
        RequestCreate((0,)),
        Create((0,)),
        RequestCreate(orphan),
        Create(orphan),
        RequestCreate(read_one),
        Create(read_one),
        RequestCommit(read_one, 0),
        # The scheduler aborts T0.0 while its subtree is still running.
        Abort((0,)),
        InformAbortAt("x", (0,)),
        # An unrelated top-level writes x and commits all the way.
        RequestCreate((1,)),
        Create((1,)),
        RequestCreate(writer_access),
        Create(writer_access),
        RequestCommit(writer_access, 0),
        Commit(writer_access),
        InformCommitAt("x", writer_access),
        ReportCommit(writer_access, 0),
        RequestCommit((1,), ((0, "C", 0),)),
        Commit((1,)),
        InformCommitAt("x", (1,)),
        # The orphan keeps going and re-reads x.
        RequestCreate(read_two),
        Create(read_two),
        RequestCommit(read_two, 5),
    ]
    applied: List[Event] = []
    for event in script:
        system.apply(event)
        applied.append(event)
    schedule = tuple(applied)
    assert is_orphan(schedule, orphan)
    anomalies = find_register_anomalies(system_type, schedule, orphan)
    return OrphanWitness(
        system_type=system_type,
        schedule=schedule,
        orphan=orphan,
        anomalies=anomalies,
    )
