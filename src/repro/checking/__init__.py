"""Validation harnesses tying the executable layers back to the theory.

* :mod:`~repro.checking.random_systems` -- seeded random system-type and
  schedule generation for the model;
* :mod:`~repro.checking.conformance` -- replay engine traces against the
  R/W Locking system automata and the Theorem 34 checker;
* :mod:`~repro.checking.harness` -- batch statistical validation used by
  the E1-E7 benchmarks.
"""

from repro.checking.anomalies import serialization_witnesses
from repro.checking.conformance import (
    ConformanceReport,
    check_engine_trace,
    trace_logic_factory,
)
from repro.checking.harness import ValidationStats, validate_random_schedules
from repro.checking.random_systems import (
    RandomSystemConfig,
    random_system_type,
)

__all__ = [
    "ConformanceReport",
    "RandomSystemConfig",
    "ValidationStats",
    "check_engine_trace",
    "random_system_type",
    "serialization_witnesses",
    "trace_logic_factory",
    "validate_random_schedules",
]
