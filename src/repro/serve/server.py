"""The asyncio transaction service front-end.

One :class:`TransactionServer` owns a
:class:`~repro.engine.threadsafe.ThreadSafeEngine` and serves the
framed-JSON protocol of :mod:`repro.serve.protocol` over TCP.  The
layering, bottom up:

* **Engine** -- any registered kernel scheme behind the blocking
  facade; lock waits block *worker* threads, never the event loop.
* **Worker pool** -- a bounded ``ThreadPoolExecutor``; every engine op
  runs there via ``run_in_executor``.  ``workers`` bounds concurrent
  lock-waiters, the admission controller bounds the queue feeding it.
* **Batching** -- each connection's admitted requests go through a
  per-connection queue; the pump coalesces everything currently
  queued (up to ``max_batch``) into **one** executor hop that runs the
  ops in order and encodes the responses off the event loop.  A
  pipelining client therefore pays one thread handoff per batch, not
  per op -- the throughput effect bench E23 measures.
* **Admission control** (:mod:`repro.serve.admission`) -- per-conn and
  global in-flight caps plus an optional token bucket; shed requests
  are answered immediately with ``overloaded`` + ``retry_after_ms``
  instead of queueing.
* **Sessions** (:mod:`repro.serve.session`) -- transaction ownership;
  a dead connection's trees are aborted (``abort_top``) once its pump
  drains, and an idle reaper closes connections with no traffic and
  no in-flight work for ``idle_timeout`` seconds.

Observability: ``serve.requests`` / ``serve.shed`` / ``serve.batch_size``
/ ``serve.reaped`` and the in-flight gauge live in a server-owned
:class:`~repro.obs.metrics.MetricsRegistry` touched only from the
event-loop thread (so counters stay exact without locks); an optional
:class:`repro.obs.Observer` passed at construction instruments the
engine side exactly as it would off-network.  ``attach_wal`` /
``attach_auditor`` mirror the facade's seams, so a served engine can
be durable and self-auditing.
"""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Optional, Tuple

from repro.engine.threadsafe import ThreadSafeEngine
from repro.obs.metrics import MetricsRegistry, exponential_buckets
from repro.serve import protocol as proto
from repro.serve.admission import AdmissionController
from repro.serve.session import Session

#: Buckets sized for batch sizes (1..max_batch).
_BATCH_BUCKETS = tuple(float(1 << i) for i in range(9))
#: Buckets sized for op service times in seconds.
_LATENCY_BUCKETS = exponential_buckets(0.0001, 2.0, 18)

#: Ops answered on the event loop without touching the engine.
_FAST_OPS = frozenset(("hello", "ping", "stats"))


@dataclass
class ServeConfig:
    """Tuning knobs of one server instance."""

    host: str = "127.0.0.1"
    port: int = 0
    #: Worker threads for engine ops (bounds concurrent lock waiters).
    workers: int = 8
    #: Per-connection batch ceiling; 1 disables coalescing.
    max_batch: int = 32
    #: Global admitted-but-unanswered request cap.
    max_inflight: int = 256
    #: Per-connection pipelining cap.
    max_inflight_per_conn: int = 32
    #: Optional token-bucket arrival limit (requests/second; None = off).
    rate: Optional[float] = None
    burst: Optional[float] = None
    #: Base shed backoff hint (milliseconds).
    shed_backoff_ms: int = 25
    #: Per-op engine wait budget (seconds; None = wait forever).
    op_timeout: Optional[float] = 5.0
    #: Close connections idle this long (seconds; None = never).
    idle_timeout: Optional[float] = None
    #: Frame size ceiling per connection.
    max_frame_bytes: int = proto.MAX_FRAME_BYTES

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")


class _Connection:
    """Event-loop-side state of one client connection."""

    __slots__ = (
        "session", "reader", "writer", "queue", "pump", "inflight",
        "decoder", "dead",
    )

    def __init__(self, session, reader, writer, max_frame_bytes):
        self.session = session
        self.reader = reader
        self.writer = writer
        self.queue: asyncio.Queue = asyncio.Queue()
        self.pump: Optional[asyncio.Task] = None
        self.inflight = 0
        self.decoder = proto.FrameDecoder(max_frame_bytes)
        self.dead = False


class TransactionServer:
    """Serve a kernel-scheme engine to remote clients over TCP."""

    def __init__(
        self,
        specs: Iterable,
        scheme: str = "moss-rw",
        config: Optional[ServeConfig] = None,
        observer=None,
        stripes: Optional[int] = None,
        facade=None,
    ):
        self.config = config or ServeConfig()
        # Any object with the facade surface works -- in particular a
        # ``repro.shard.ShardedEngine`` (``repro serve --sharded``).
        # A passed-in facade's lifecycle stays with the caller; the
        # server never closes it.
        self._owns_facade = facade is None
        self.facade = facade or ThreadSafeEngine(
            specs,
            policy=scheme,
            observer=observer,
            stripes=stripes,
        )
        self.object_names = sorted(self.facade.engine.specs)
        self.object_types = {
            name: type(spec).__name__
            for name, spec in self.facade.engine.specs.items()
        }
        #: serve.* metrics; event-loop thread only, hence lock-free.
        self.metrics = MetricsRegistry()
        self.admission = AdmissionController(
            max_inflight=self.config.max_inflight,
            max_inflight_per_conn=self.config.max_inflight_per_conn,
            rate=self.config.rate,
            burst=self.config.burst,
            shed_backoff_ms=self.config.shed_backoff_ms,
        )
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.workers,
            thread_name_prefix="repro-serve",
        )
        self._connections: Dict[int, _Connection] = {}
        self._next_conn = 0
        self._server: Optional[asyncio.AbstractServer] = None
        self._reaper: Optional[asyncio.Task] = None
        self._stopping = False
        self.wal = None
        self.auditor = None

    # ------------------------------------------------------------------
    # Seams (mirror the facade's)
    # ------------------------------------------------------------------
    def attach_wal(self, wal=None, sink=None, segment_bytes=None):
        """Attach a write-ahead log before starting; returns it."""
        self.wal = self.facade.attach_wal(
            wal=wal, sink=sink, segment_bytes=segment_bytes
        )
        return self.wal

    def attach_auditor(self, auditor=None, config=None):
        """Attach an online serializability auditor; returns it."""
        self.auditor = self.facade.attach_auditor(
            auditor=auditor, config=config
        )
        return self.auditor

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port); valid after :meth:`start`."""
        if self._server is None or not self._server.sockets:
            raise RuntimeError("server is not started")
        return self._server.sockets[0].getsockname()[:2]

    async def start(self) -> Tuple[str, int]:
        """Bind and start accepting; returns the bound address."""
        self._server = await asyncio.start_server(
            self._on_connection, self.config.host, self.config.port
        )
        if self.config.idle_timeout is not None:
            self._reaper = asyncio.ensure_future(self._reap_idle())
        return self.address

    async def serve_forever(self) -> None:
        assert self._server is not None
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:  # pragma: no cover - shutdown
            pass

    async def stop(self) -> None:
        """Stop accepting, drain connections, abort leftovers."""
        self._stopping = True
        if self._reaper is not None:
            self._reaper.cancel()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for conn in list(self._connections.values()):
            self._close_transport(conn)
        deadline = time.monotonic() + 5.0
        while self._connections and time.monotonic() < deadline:
            await asyncio.sleep(0.01)
        self._executor.shutdown(wait=True)
        if self.wal is not None:
            self.wal.close()

    def start_in_thread(self, timeout: float = 10.0) -> "ServerThread":
        """Run this server on a dedicated thread; returns its handle."""
        handle = ServerThread(self)
        handle.start(timeout=timeout)
        return handle

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _on_connection(self, reader, writer) -> None:
        conn_id = self._next_conn
        self._next_conn += 1
        session = Session(
            self.facade,
            conn_id,
            op_timeout=self.config.op_timeout,
            retry_hint_ms=self.config.shed_backoff_ms,
        )
        conn = _Connection(
            session, reader, writer, self.config.max_frame_bytes
        )
        self._connections[conn_id] = conn
        self.metrics.gauge("serve.connections").add(1)
        conn.pump = asyncio.ensure_future(self._pump(conn))
        try:
            await self._read_loop(conn)
        finally:
            try:
                await self._cleanup(conn_id, conn)
            except asyncio.CancelledError:
                # Loop teardown cancelled the drain mid-await; free
                # what we can synchronously so the task ends quietly.
                self._abandon(conn_id, conn)

    async def _read_loop(self, conn: _Connection) -> None:
        while not conn.dead:
            try:
                data = await conn.reader.read(1 << 16)
            except (ConnectionError, OSError):
                return
            if not data:
                return
            conn.session.last_active = time.monotonic()
            try:
                messages = conn.decoder.feed(data)
            except proto.ProtocolError as exc:
                self.metrics.counter("serve.bad_frames").inc()
                self._send(
                    conn,
                    proto.error_response(
                        None, proto.ERR_BAD_FRAME, str(exc)
                    ),
                )
                return
            for message in messages:
                self._ingest(conn, message)
            try:
                await conn.writer.drain()
            except (ConnectionError, OSError):
                return

    def _ingest(self, conn: _Connection, message: Dict[str, Any]) -> None:
        op = message.get("op")
        request_id = message.get("id")
        self.metrics.counter(
            "serve.requests", op=op if op in proto.OPS else "invalid"
        ).inc()
        if op in _FAST_OPS:
            self._send(conn, self._fast_op(op, request_id, message))
            return
        if op not in proto.OPS:
            self._send(
                conn,
                proto.error_response(
                    request_id,
                    proto.ERR_BAD_REQUEST,
                    "unknown op %r" % (op,),
                ),
            )
            return
        admitted, hint = self.admission.admit(conn.inflight)
        if not admitted:
            self.metrics.counter("serve.shed").inc()
            self._send(
                conn,
                proto.error_response(
                    request_id,
                    proto.ERR_OVERLOADED,
                    "server overloaded; retry after the hint",
                    retry_after_ms=hint,
                ),
            )
            return
        conn.inflight += 1
        self.metrics.gauge("serve.inflight").set(self.admission.inflight)
        conn.queue.put_nowait(message)

    def _fast_op(self, op, request_id, message) -> Dict[str, Any]:
        if op == "ping":
            return proto.ok_response(
                request_id, payload=message.get("payload")
            )
        if op == "hello":
            version = message.get("version")
            if version is not None and version != proto.PROTOCOL_VERSION:
                return proto.error_response(
                    request_id,
                    proto.ERR_VERSION,
                    "server speaks protocol %d, client asked for %r"
                    % (proto.PROTOCOL_VERSION, version),
                )
            return proto.ok_response(
                request_id,
                version=proto.PROTOCOL_VERSION,
                scheme=self.facade.scheme.name,
                objects=self.object_names,
                object_types=self.object_types,
                ops=list(proto.OPS),
            )
        return proto.ok_response(request_id, stats=self.stats())

    def stats(self) -> Dict[str, Any]:
        """A JSON-ready server + engine counter snapshot."""
        engine_stats = dict(
            self.facade.engine.stats  # best-effort under striping
        )
        payload: Dict[str, Any] = {
            "scheme": self.facade.scheme.name,
            "connections": len(self._connections),
            "inflight": self.admission.inflight,
            "inflight_high_water": self.admission.inflight_high_water,
            "shed": self.admission.shed_total,
            "engine": engine_stats,
            "metrics": self.metrics.snapshot(),
        }
        if self.auditor is not None:
            payload["audit_verdict"] = self.auditor.verdict
        if self.wal is not None:
            payload["wal"] = dict(self.wal.stats)
        return payload

    def _send(self, conn: _Connection, response: Dict[str, Any]) -> None:
        if conn.dead:
            return
        try:
            conn.writer.write(proto.encode_frame(response))
        except (ConnectionError, OSError):
            conn.dead = True

    # ------------------------------------------------------------------
    # Batching pump: session queue -> one executor hop per batch
    # ------------------------------------------------------------------
    async def _pump(self, conn: _Connection) -> None:
        loop = asyncio.get_running_loop()
        queue = conn.queue
        max_batch = self.config.max_batch
        while True:
            message = await queue.get()
            if message is None:
                return
            batch = [message]
            finish_after = False
            while len(batch) < max_batch:
                try:
                    extra = queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if extra is None:
                    finish_after = True
                    break
                batch.append(extra)
            self.metrics.histogram(
                "serve.batch_size", bounds=_BATCH_BUCKETS
            ).observe(float(len(batch)))
            started = time.perf_counter()
            payload = await loop.run_in_executor(
                self._executor, self._run_batch, conn.session, batch
            )
            self.metrics.histogram(
                "serve.batch_seconds", bounds=_LATENCY_BUCKETS
            ).observe(time.perf_counter() - started)
            conn.inflight -= len(batch)
            self.admission.release(len(batch))
            self.metrics.gauge("serve.inflight").set(
                self.admission.inflight
            )
            if not conn.dead:
                try:
                    conn.writer.write(payload)
                    await conn.writer.drain()
                except (ConnectionError, OSError):
                    conn.dead = True
            if finish_after:
                return

    def _run_batch(self, session: Session, batch) -> bytes:
        """Worker-thread half: run the ops in order, encode responses."""
        frames = []
        for message in batch:
            response = session.run(message)
            try:
                frames.append(proto.encode_frame(response))
            except Exception as exc:
                frames.append(
                    proto.encode_frame(
                        proto.error_response(
                            message.get("id"),
                            proto.ERR_INTERNAL,
                            "unencodable response: %s" % (exc,),
                        )
                    )
                )
        return b"".join(frames)

    # ------------------------------------------------------------------
    # Cleanup and reaping
    # ------------------------------------------------------------------
    def _close_transport(self, conn: _Connection) -> None:
        conn.dead = True
        try:
            conn.writer.close()
        except Exception:  # pragma: no cover - transport races
            pass

    def _abandon(self, conn_id: int, conn: _Connection) -> None:
        """Last-resort synchronous teardown (cancelled cleanup)."""
        self._close_transport(conn)
        if conn.pump is not None:
            conn.pump.cancel()
        conn.session.abort_orphans()
        if self._connections.pop(conn_id, None) is not None:
            self.metrics.gauge("serve.connections").add(-1)

    async def _cleanup(self, conn_id: int, conn: _Connection) -> None:
        # Stop feeding the pump, let it drain what was admitted, then
        # (with no worker driving the session any more) abort orphans.
        conn.queue.put_nowait(None)
        if conn.pump is not None:
            try:
                await conn.pump
            except Exception:  # pragma: no cover - pump crash
                pass
        released = 0
        while True:
            try:
                item = conn.queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            if item is not None:
                released += 1
        if released:
            self.admission.release(released)
        aborted = conn.session.abort_orphans()
        if aborted:
            self.metrics.counter("serve.orphan_aborts").inc(aborted)
        self._close_transport(conn)
        self._connections.pop(conn_id, None)
        self.metrics.gauge("serve.connections").add(-1)

    async def _reap_idle(self) -> None:
        timeout = self.config.idle_timeout
        interval = max(0.05, min(1.0, timeout / 4.0))
        while True:
            await asyncio.sleep(interval)
            now = time.monotonic()
            for conn in list(self._connections.values()):
                idle = now - conn.session.last_active
                if idle > timeout and conn.inflight == 0:
                    self.metrics.counter("serve.reaped").inc()
                    self._close_transport(conn)


class ServerThread:
    """Run a :class:`TransactionServer` on its own thread + loop.

    The in-process deployment shape used by tests and bench E23 (the
    CLI runs the loop on the main thread instead).  ``start`` returns
    once the server is bound; ``stop`` shuts it down and joins.
    """

    def __init__(self, server: TransactionServer):
        self.server = server
        self.address: Optional[Tuple[str, int]] = None
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._started = threading.Event()
        self._error: Optional[BaseException] = None

    def start(self, timeout: float = 10.0) -> Tuple[str, int]:
        self._thread = threading.Thread(
            target=self._main, name="repro-serve-loop", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout):
            raise RuntimeError("server thread failed to start in time")
        if self._error is not None:
            raise RuntimeError(
                "server failed to start: %s" % self._error
            )
        assert self.address is not None
        return self.address

    def _main(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        self._stop_event = asyncio.Event()
        try:
            self.address = loop.run_until_complete(self.server.start())
        except BaseException as exc:
            self._error = exc
            self._started.set()
            loop.close()
            return
        self._started.set()
        try:
            loop.run_until_complete(self._stop_event.wait())
            loop.run_until_complete(self.server.stop())
        finally:
            loop.close()

    def stop(self, timeout: float = 10.0) -> None:
        if self._loop is None or self._stop_event is None:
            return
        if self._thread is None or not self._thread.is_alive():
            return
        self._loop.call_soon_threadsafe(self._stop_event.set)
        self._thread.join(timeout)
