"""Sync and async clients for the transaction service.

:class:`SyncClient` is a plain-socket, one-outstanding-request client
(with an explicit :meth:`SyncClient.pipeline` escape hatch) -- the
closed-loop load generator and the tests use it.  :class:`AsyncClient`
multiplexes any number of concurrent requests over one connection by
``id`` -- the open-loop generator and the batching benchmark use it,
because pipelined requests are what the server's batching layer
coalesces.

Typed failures raise :class:`ServeError`, which carries the protocol
error ``code``, the server's ``retry_after_ms`` hint, and any reported
``blockers``.  :func:`backoff_ms` turns a hint into a jittered sleep
(seeded RNG, so retry schedules are reproducible).
"""

from __future__ import annotations

import asyncio
import random
import socket
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.serve import protocol as proto


class ServeError(ReproError):
    """A typed error response from the server."""

    def __init__(self, response: Dict[str, Any]):
        error = response.get("error") or {}
        self.response = response
        self.code = error.get("code", proto.ERR_INTERNAL)
        self.retryable = bool(error.get("retryable"))
        self.retry_after_ms = error.get("retry_after_ms")
        self.blockers = tuple(
            tuple(name) for name in error.get("blockers", ())
        )
        super().__init__(
            "%s: %s" % (self.code, error.get("message", ""))
        )


def backoff_ms(
    hint_ms: Optional[int],
    attempt: int,
    rng: random.Random,
    base_ms: float = 5.0,
    cap_ms: float = 1000.0,
) -> float:
    """Jittered exponential backoff, seeded with the server's hint.

    The hint (when present) is the floor of the first retry; without
    one, ``base_ms`` doubles per attempt.  Full jitter keeps shed
    herds from retrying in lockstep.
    """
    floor = float(hint_ms) if hint_ms else base_ms
    ceiling = min(cap_ms, floor * (2.0 ** max(0, attempt)))
    return rng.uniform(floor, max(floor, ceiling))


def _raise_on_error(response: Dict[str, Any]) -> Dict[str, Any]:
    if not response.get("ok"):
        raise ServeError(response)
    return response


class SyncClient:
    """Blocking client over one TCP connection."""

    def __init__(
        self,
        host: str,
        port: int,
        timeout: Optional[float] = 30.0,
    ):
        self._sock = socket.create_connection(
            (host, port), timeout=timeout
        )
        self._decoder = proto.FrameDecoder()
        self._next_id = 0
        self._inbox: List[Dict[str, Any]] = []

    # -- plumbing ------------------------------------------------------
    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - already dead
            pass

    def __enter__(self) -> "SyncClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def _take_id(self) -> int:
        self._next_id += 1
        return self._next_id

    def _recv_one(self) -> Dict[str, Any]:
        while not self._inbox:
            data = self._sock.recv(1 << 16)
            if not data:
                raise ConnectionError("server closed the connection")
            self._inbox.extend(self._decoder.feed(data))
        return self._inbox.pop(0)

    def call(self, op: str, **fields: Any) -> Dict[str, Any]:
        """One request, one response (raises :class:`ServeError`)."""
        request_id = self._take_id()
        self._sock.sendall(
            proto.encode_frame(proto.request(op, request_id, **fields))
        )
        response = self._recv_one()
        return _raise_on_error(response)

    def pipeline(
        self, requests: Sequence[Tuple[str, Dict[str, Any]]]
    ) -> List[Dict[str, Any]]:
        """Send every request, then read every response (in order).

        Responses are returned raw (``ok`` may be false) so callers
        can count sheds without exception plumbing.
        """
        payload = bytearray()
        ids = []
        for op, fields in requests:
            request_id = self._take_id()
            ids.append(request_id)
            payload.extend(
                proto.encode_frame(
                    proto.request(op, request_id, **fields)
                )
            )
        self._sock.sendall(bytes(payload))
        by_id = {}
        while len(by_id) < len(ids):
            response = self._recv_one()
            by_id[response.get("id")] = response
        return [by_id[request_id] for request_id in ids]

    # -- convenience ---------------------------------------------------
    def hello(self) -> Dict[str, Any]:
        return self.call("hello", version=proto.PROTOCOL_VERSION)

    def ping(self, payload: Any = None) -> Dict[str, Any]:
        return self.call("ping", payload=payload)

    def stats(self) -> Dict[str, Any]:
        return self.call("stats")["stats"]

    def begin(self) -> Tuple[int, ...]:
        return tuple(self.call("begin")["txn"])

    def child(self, txn) -> Tuple[int, ...]:
        return tuple(self.call("child", txn=list(txn))["txn"])

    def read(
        self,
        txn,
        object_name: str,
        kind: Optional[str] = None,
        args: Optional[Iterable] = None,
    ) -> Any:
        return self.call(
            "read",
            txn=list(txn),
            object=object_name,
            kind=kind,
            args=list(args) if args is not None else None,
        ).get("result")

    def write(
        self,
        txn,
        object_name: str,
        value: Any = None,
        kind: Optional[str] = None,
        args: Optional[Iterable] = None,
    ) -> Any:
        fields: Dict[str, Any] = {
            "txn": list(txn), "object": object_name
        }
        if kind is not None or args is not None:
            fields["kind"] = kind
            fields["args"] = list(args) if args is not None else []
        else:
            fields["value"] = value
        return self.call("write", **fields).get("result")

    def commit(self, txn, value: Any = None) -> Dict[str, Any]:
        return self.call("commit", txn=list(txn), value=value)

    def abort(self, txn) -> Dict[str, Any]:
        return self.call("abort", txn=list(txn))


class AsyncClient:
    """Asyncio client multiplexing concurrent requests by ``id``."""

    def __init__(self):
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._decoder = proto.FrameDecoder()
        self._pending: Dict[int, asyncio.Future] = {}
        self._next_id = 0
        self._reader_task: Optional[asyncio.Task] = None
        self._closing = False

    @classmethod
    async def connect(cls, host: str, port: int) -> "AsyncClient":
        client = cls()
        client._reader, client._writer = await asyncio.open_connection(
            host, port
        )
        client._reader_task = asyncio.ensure_future(client._read_loop())
        return client

    @property
    def connected(self) -> bool:
        """True while the read loop is alive (responses can arrive)."""
        return (
            self._reader_task is not None
            and not self._reader_task.done()
            and not self._closing
        )

    async def close(self) -> None:
        self._closing = True
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except (asyncio.CancelledError, Exception):
                pass
        if self._writer is not None:
            try:
                self._writer.close()
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_loop(self) -> None:
        assert self._reader is not None
        try:
            while True:
                data = await self._reader.read(1 << 16)
                if not data:
                    raise ConnectionError("server closed the connection")
                for response in self._decoder.feed(data):
                    future = self._pending.pop(
                        response.get("id"), None
                    )
                    if future is not None and not future.done():
                        future.set_result(response)
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(
                        ConnectionError(str(exc))
                    )
            self._pending.clear()

    async def call_raw(self, op: str, **fields: Any) -> Dict[str, Any]:
        """One request; response may be an error (``ok`` false)."""
        assert self._writer is not None
        self._next_id += 1
        request_id = self._next_id
        future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        self._writer.write(
            proto.encode_frame(proto.request(op, request_id, **fields))
        )
        await self._writer.drain()
        return await future

    async def call(self, op: str, **fields: Any) -> Dict[str, Any]:
        return _raise_on_error(await self.call_raw(op, **fields))

    # -- convenience ---------------------------------------------------
    async def begin(self) -> Tuple[int, ...]:
        return tuple((await self.call("begin"))["txn"])

    async def read(self, txn, object_name: str) -> Any:
        return (
            await self.call(
                "read", txn=list(txn), object=object_name
            )
        ).get("result")

    async def write(self, txn, object_name: str, value: Any) -> Any:
        return (
            await self.call(
                "write",
                txn=list(txn),
                object=object_name,
                value=value,
            )
        ).get("result")

    async def commit(self, txn, value: Any = None) -> Dict[str, Any]:
        return await self.call("commit", txn=list(txn), value=value)

    async def abort(self, txn) -> Dict[str, Any]:
        return await self.call("abort", txn=list(txn))

    async def stats(self) -> Dict[str, Any]:
        return (await self.call("stats"))["stats"]
