"""Open- and closed-loop load generators for the transaction service.

Two classic shapes (and the reason both exist -- they answer different
questions):

* **closed loop** -- ``clients`` worker threads, each driving one
  :class:`~repro.serve.client.SyncClient` transaction-at-a-time (think
  time optional).  Offered load adapts to service rate, so this
  measures *capacity* (max sustainable throughput at a concurrency).
* **open loop** -- Poisson arrivals at a configured ``rate``; each
  arrival checks a connection out of a ``clients``-sized pool for the
  life of its transaction (concurrent transactions must not share a
  connection -- the server serializes each connection's ops, so they
  would head-of-line block on each other's locks).  Arrivals do not
  wait for completions, so queueing delay -- including waiting for a
  free pool slot -- is *part of the latency*.  This measures behaviour
  **under** a fixed offered load, the regime where admission control
  and shedding matter.

Every transaction is ``begin -> ops_per_txn read/write accesses over
random objects -> commit`` with seeded randomness, so runs are
reproducible.  Latency percentiles come from the canonical
:mod:`repro.obs` primitives (:class:`~repro.obs.metrics.Summary`, one
sample per finished transaction; open-loop samples are measured from
the *scheduled arrival*, closed-loop from ``begin``).  Retryable
denials (``overloaded`` / ``retry_later`` / ``txn_aborted`` /
``lock_denied``) are counted per code; the closed loop retries with
the server's ``retry_after_ms`` hint plus seeded jitter
(:func:`repro.serve.client.backoff_ms`), the open loop records the
outcome and moves on (an open-loop arrival missed is load shed, not
load deferred).
"""

from __future__ import annotations

import asyncio
import random
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.metrics import Summary, percentile
from repro.serve import protocol as proto
from repro.serve.client import (
    AsyncClient,
    ServeError,
    SyncClient,
    backoff_ms,
)


@dataclass
class LoadgenConfig:
    """One load-generation run."""

    host: str = "127.0.0.1"
    port: int = 0
    mode: str = "closed"  # "closed" | "open"
    clients: int = 8
    duration: float = 2.0
    #: Open loop only: total offered arrivals/second.
    rate: float = 200.0
    ops_per_txn: int = 4
    read_fraction: float = 0.5
    seed: int = 0
    #: Closed loop only: sleep between transactions (seconds).
    think_time: float = 0.0
    #: Closed loop only: retry budget per transaction.
    max_retries: int = 25
    objects: Optional[List[str]] = None
    #: A scenario TOML path or library name: shape traffic from the
    #: declarative spec (nested trees, per-class mix, think times)
    #: instead of the flat ``ops_per_txn`` plan.  Overrides ``mode``.
    scenario: Optional[str] = None

    def __post_init__(self) -> None:
        if self.mode not in ("closed", "open"):
            raise ValueError("mode must be 'closed' or 'open'")
        if self.clients < 1:
            raise ValueError("clients must be >= 1")


class LoadReport:
    """Aggregated outcome of one run (thread-safe to feed)."""

    def __init__(self, mode: str):
        self.mode = mode
        self.committed = 0
        self.aborted = 0
        #: Engine-side aborts (``txn_aborted``: wounds, MVTO
        #: conflicts) -- a subset of ``aborted``, surfaced separately
        #: so league tables never fold real aborts into admission
        #: sheds or retryable lock denials.
        self.txn_aborted = 0
        self.shed = 0
        self.failed = 0
        self.ops = 0
        self.retries = 0
        self.errors: Dict[str, int] = {}
        self.txn_latency = Summary()
        self.wall_seconds = 0.0
        #: Set by scenario-shaped runs only.
        self.scenario: Optional[str] = None
        self.digest: Optional[str] = None
        self._lock = threading.Lock()

    # -- feeding (workers) --------------------------------------------
    def commit(self, latency: float, ops: int) -> None:
        with self._lock:
            self.committed += 1
            self.ops += ops
            self.txn_latency.add(latency)

    def outcome(self, code: str) -> None:
        with self._lock:
            self.errors[code] = self.errors.get(code, 0) + 1
            if code == proto.ERR_OVERLOADED:
                self.shed += 1
            elif code == proto.ERR_TXN_ABORTED:
                self.aborted += 1
                self.txn_aborted += 1
            elif code in (
                proto.ERR_LOCK_DENIED,
                proto.ERR_RETRY_LATER,
            ):
                self.aborted += 1
            else:
                self.failed += 1

    def retry(self) -> None:
        with self._lock:
            self.retries += 1

    # -- reporting -----------------------------------------------------
    @property
    def throughput(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.committed / self.wall_seconds

    @property
    def op_throughput(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.ops / self.wall_seconds

    def latency_ms(self, fraction: float) -> float:
        return percentile(self.txn_latency.values, fraction) * 1000.0

    def to_json(self) -> Dict[str, Any]:
        extra: Dict[str, Any] = {}
        if self.scenario is not None:
            extra["scenario"] = self.scenario
            extra["digest"] = self.digest
        return {
            **extra,
            "mode": self.mode,
            "wall_seconds": round(self.wall_seconds, 4),
            "committed": self.committed,
            "aborted": self.aborted,
            "txn_aborted": self.txn_aborted,
            "shed": self.shed,
            "failed": self.failed,
            "retries": self.retries,
            "ops": self.ops,
            "throughput_txn_s": round(self.throughput, 2),
            "throughput_op_s": round(self.op_throughput, 2),
            "latency_ms": {
                "p50": round(self.latency_ms(0.50), 3),
                "p95": round(self.latency_ms(0.95), 3),
                "p99": round(self.latency_ms(0.99), 3),
                "max": round(self.latency_ms(1.00), 3),
            },
            "errors": dict(sorted(self.errors.items())),
        }

    def render(self) -> str:
        data = self.to_json()
        lat = data["latency_ms"]
        lines = []
        if self.scenario is not None:
            lines.append(
                "scenario   : %s (digest %s)"
                % (self.scenario, (self.digest or "")[:16])
            )
        lines += [
            "%s-loop: %d committed (%d aborted [%d txn_aborted], "
            "%d shed, %d failed) in %.2fs" % (
                self.mode, self.committed, self.aborted,
                self.txn_aborted, self.shed, self.failed,
                self.wall_seconds,
            ),
            "throughput : %.1f txn/s  (%.1f op/s)"
            % (self.throughput, self.op_throughput),
            "latency ms : p50=%.2f p95=%.2f p99=%.2f max=%.2f"
            % (lat["p50"], lat["p95"], lat["p99"], lat["max"]),
        ]
        if self.errors:
            lines.append(
                "errors     : "
                + " ".join(
                    "%s=%d" % item
                    for item in sorted(self.errors.items())
                )
            )
        return "\n".join(lines)


#: Per-ADT op kinds: (read kind/args, write kind/args-from-rng).  The
#: hello handshake advertises each object's ADT class, so the workload
#: speaks every served type's language; unknown types get the plain
#: register ops.
_PROFILES = {
    "Counter": (
        ("value", lambda rng: []),
        ("increment", lambda rng: [1]),
    ),
    "SaturatingCounter": (
        ("value", lambda rng: []),
        ("increment", lambda rng: [1]),
    ),
    "BankAccount": (
        ("balance", lambda rng: []),
        ("deposit", lambda rng: [rng.randrange(1, 100)]),
    ),
}
_REGISTER_PROFILE = (
    ("read", lambda rng: []),
    ("write", lambda rng: [rng.randrange(1 << 16)]),
)


@dataclass
class _Workload:
    """Seeded op-mix chooser shared by both loops."""

    objects: List[str]
    ops_per_txn: int
    read_fraction: float
    object_types: Optional[Dict[str, str]] = None

    def plan(self, rng: random.Random) -> List[Dict[str, Any]]:
        ops = []
        types = self.object_types or {}
        for _ in range(self.ops_per_txn):
            object_name = rng.choice(self.objects)
            reads, writes = _PROFILES.get(
                types.get(object_name, ""), _REGISTER_PROFILE
            )
            is_read = rng.random() < self.read_fraction
            kind, args = reads if is_read else writes
            ops.append(
                {
                    "op": "read" if is_read else "write",
                    "object": object_name,
                    "kind": kind,
                    "args": args(rng),
                }
            )
        return ops


def _discover_objects(
    config: LoadgenConfig,
) -> Tuple[List[str], Dict[str, str]]:
    with SyncClient(config.host, config.port) as client:
        hello = client.hello()
    objects = hello.get("objects") or []
    types = hello.get("object_types") or {}
    if config.objects:
        objects = list(config.objects)
    if not objects:
        raise ValueError("server reports no objects to load")
    return objects, types


# ----------------------------------------------------------------------
# Closed loop
# ----------------------------------------------------------------------
def _closed_worker(
    config: LoadgenConfig,
    workload: _Workload,
    report: LoadReport,
    deadline: float,
    index: int,
) -> None:
    rng = random.Random((config.seed << 16) ^ (index * 10007 + 1))
    try:
        client = SyncClient(config.host, config.port)
    except OSError:
        report.outcome("connect_error")
        return
    try:
        while time.monotonic() < deadline:
            started = time.monotonic()
            plan = workload.plan(rng)
            attempt = 0
            while True:
                code = _run_txn_sync(client, plan)
                if code is None:
                    report.commit(
                        time.monotonic() - started, len(plan)
                    )
                    break
                report.outcome(code)
                attempt += 1
                if (
                    attempt > config.max_retries
                    or time.monotonic() >= deadline
                ):
                    break
                report.retry()
                time.sleep(
                    backoff_ms(None, attempt, rng) / 1000.0
                )
            if config.think_time:
                time.sleep(config.think_time)
    except (ConnectionError, OSError):
        report.outcome("connection_lost")
    finally:
        client.close()


def _run_txn_sync(client: SyncClient, plan) -> Optional[str]:
    """One transaction attempt; returns None or the failure code."""
    try:
        txn = client.begin()
    except ServeError as exc:
        return exc.code
    try:
        for op in plan:
            client.call(op["op"], txn=list(txn), **{
                key: value
                for key, value in op.items()
                if key not in ("op",)
            })
        client.commit(txn)
        return None
    except ServeError as exc:
        if exc.code != proto.ERR_TXN_ABORTED:
            try:
                client.abort(txn)
            except (ServeError, ConnectionError, OSError):
                pass
        return exc.code


def run_closed_loop(config: LoadgenConfig) -> LoadReport:
    objects, types = _discover_objects(config)
    workload = _Workload(
        objects, config.ops_per_txn, config.read_fraction, types
    )
    report = LoadReport("closed")
    started = time.monotonic()
    deadline = started + config.duration
    threads = [
        threading.Thread(
            target=_closed_worker,
            args=(config, workload, report, deadline, index),
            daemon=True,
        )
        for index in range(config.clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    report.wall_seconds = time.monotonic() - started
    return report


# ----------------------------------------------------------------------
# Open loop
# ----------------------------------------------------------------------
async def _open_txn(
    client: AsyncClient,
    plan,
    scheduled: float,
    report: LoadReport,
) -> None:
    try:
        txn = (await client.call("begin"))["txn"]
    except ServeError as exc:
        report.outcome(exc.code)
        return
    except (ConnectionError, OSError):
        report.outcome("connection_lost")
        return
    try:
        for op in plan:
            await client.call(
                op["op"],
                txn=txn,
                **{k: v for k, v in op.items() if k != "op"},
            )
        await client.call("commit", txn=txn)
        report.commit(
            time.monotonic() - scheduled, len(plan)
        )
    except ServeError as exc:
        if exc.code != proto.ERR_TXN_ABORTED:
            try:
                await client.call_raw("abort", txn=txn)
            except (ConnectionError, OSError):
                pass
        report.outcome(exc.code)
    except (ConnectionError, OSError):
        report.outcome("connection_lost")


async def _checkout(
    pool: "asyncio.Queue", config: LoadgenConfig
) -> Optional[AsyncClient]:
    """Take a healthy connection from the pool (reconnect dead slots).

    Returns None when no connection could be had within the grace
    window (server down, or every slot stuck past the drain timeout).
    """
    try:
        client = await asyncio.wait_for(pool.get(), timeout=30.0)
    except asyncio.TimeoutError:
        return None
    if client is not None and client.connected:
        return client
    if client is not None:
        await client.close()
    try:
        return await AsyncClient.connect(config.host, config.port)
    except OSError:
        pool.put_nowait(None)  # keep the slot; retry on next checkout
        return None


async def _open_arrival(
    pool: "asyncio.Queue",
    config: LoadgenConfig,
    plan,
    scheduled: float,
    report: LoadReport,
) -> None:
    client = await _checkout(pool, config)
    if client is None:
        report.outcome("no_connection")
        return
    try:
        await _open_txn(client, plan, scheduled, report)
    finally:
        pool.put_nowait(client if client.connected else None)
        if not client.connected:
            await client.close()


async def _run_open_loop(config: LoadgenConfig) -> LoadReport:
    objects, types = _discover_objects(config)
    workload = _Workload(
        objects, config.ops_per_txn, config.read_fraction, types
    )
    report = LoadReport("open")
    rng = random.Random(config.seed)
    # A checkout pool, NOT shared multiplexing: the server batches each
    # connection's requests into one serially-executed stream, so two
    # in-flight transactions sharing a connection would head-of-line
    # block on each other's locks.  Each arrival owns one connection
    # for the life of its transaction; ``clients`` caps concurrency,
    # and time spent waiting for a free slot is queueing delay that
    # (correctly, for an open loop) counts against latency.
    pool: asyncio.Queue = asyncio.Queue()
    for _ in range(config.clients):
        try:
            pool.put_nowait(
                await AsyncClient.connect(config.host, config.port)
            )
        except OSError:
            pool.put_nowait(None)
    tasks: List[asyncio.Task] = []
    started = time.monotonic()
    deadline = started + config.duration
    scheduled = started
    try:
        while True:
            scheduled += rng.expovariate(config.rate)
            if scheduled >= deadline:
                break
            delay = scheduled - time.monotonic()
            if delay > 0:
                await asyncio.sleep(delay)
            tasks.append(
                asyncio.ensure_future(
                    _open_arrival(
                        pool,
                        config,
                        workload.plan(rng),
                        scheduled,
                        report,
                    )
                )
            )
        if tasks:
            await asyncio.wait(tasks, timeout=60.0)
    finally:
        for task in tasks:
            if not task.done():
                task.cancel()
        while not pool.empty():
            client = pool.get_nowait()
            if client is not None:
                await client.close()
    report.wall_seconds = time.monotonic() - started
    return report


def run_open_loop(config: LoadgenConfig) -> LoadReport:
    return asyncio.run(_run_open_loop(config))


def run_scenario_loop(config: LoadgenConfig) -> LoadReport:
    """Drive the server with a declarative scenario's traffic.

    The scenario (a TOML path or a library name) is compiled with
    ``config.seed`` and executed by the serve backend driver: full
    nested transaction trees over the wire, per-class read/write mix
    and think times, ``arrival.clients`` worker connections.  The
    transaction count comes from the spec (``config.duration`` does
    not apply), so a scenario run is the same logical op stream every
    backend executes -- the report's digest matches ``repro scenario
    run`` on the simulator.
    """
    import os

    from repro.scenario import compile_scenario, get_driver
    from repro.scenario.library import library_path
    from repro.scenario.spec import load_scenario

    ref = config.scenario
    path = ref if os.path.exists(ref) else library_path(ref)
    spec = load_scenario(path)
    compiled = compile_scenario(spec, config.seed)
    result = get_driver("serve").run(
        compiled,
        host=config.host,
        port=config.port,
        max_retries=config.max_retries,
    )
    report = LoadReport("scenario")
    report.committed = result.committed
    report.aborted = result.aborted
    report.txn_aborted = int(result.extras.get("txn_aborted", 0))
    report.retries = result.retries
    report.ops = result.ops
    report.shed = int(result.extras.get("shed", 0))
    for latency in result.latencies:
        report.txn_latency.add(latency)
    report.wall_seconds = result.makespan
    report.scenario = spec.name
    report.digest = result.digest
    return report


def run_loadgen(config: LoadgenConfig) -> LoadReport:
    """Dispatch on ``config.scenario`` / ``config.mode``."""
    if config.scenario:
        return run_scenario_loop(config)
    if config.mode == "open":
        return run_open_loop(config)
    return run_closed_loop(config)
