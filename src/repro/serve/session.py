"""Per-connection sessions: transaction ownership and op dispatch.

Börger--Schewe model the transaction manager as an agent mediating
concurrent client programs; a :class:`Session` is that agent's
per-client half.  It owns every transaction a connection begins, runs
the connection's requests strictly in order (the server's batching
layer hands each session's requests to one executor thread at a time,
so handles are never driven concurrently -- the facade's documented
handle contract), and is the unit of orphan cleanup: when the
connection dies, every top-level tree it still owns is aborted through
:meth:`repro.engine.threadsafe.ThreadSafeEngine.abort_top`.

Dispatch (:meth:`Session.run`) is the only code that runs on worker
threads; everything it touches is session-private or engine-side
thread-safe.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Optional, Tuple

from repro.core.object_spec import Operation
from repro.engine.transaction import TransactionStatus
from repro.engine.threadsafe import (
    ThreadSafeEngine,
    ThreadSafeTransaction,
)
from repro.errors import (
    EngineError,
    InvalidTransactionState,
    TransactionAborted,
)
from repro.serve import protocol as proto

TxnName = Tuple[int, ...]


class UnknownTransaction(EngineError):
    """The request named a transaction this connection does not own."""


class Session:
    """One connection's transactions and their dispatch."""

    def __init__(
        self,
        facade: ThreadSafeEngine,
        conn_id: int,
        op_timeout: Optional[float] = 5.0,
        retry_hint_ms: int = 25,
    ):
        self.facade = facade
        self.conn_id = conn_id
        self.op_timeout = op_timeout
        self.retry_hint_ms = retry_hint_ms
        #: Live handles owned by this connection, by name tuple.
        self.handles: Dict[TxnName, ThreadSafeTransaction] = {}
        #: Wall-clock of the last request (read by the idle reaper).
        self.last_active = time.monotonic()
        self.requests = 0
        self.closed = False

    # ------------------------------------------------------------------
    # Lifecycle (event-loop side)
    # ------------------------------------------------------------------
    def owned_tops(self):
        """Names of top-level trees this session still owns."""
        return sorted({name[:1] for name in self.handles})

    def abort_orphans(self, cause: str = "disconnect") -> int:
        """Abort every live tree of a dead session; returns the count.

        Called after the session's pump has drained (no worker thread
        is driving its handles any more), so the only races left are
        engine-side -- exactly what ``abort_top`` tolerates.
        """
        aborted = 0
        for top in self.owned_tops():
            if self.facade.abort_top(top, cause=cause):
                aborted += 1
        self.handles.clear()
        return aborted

    # ------------------------------------------------------------------
    # Dispatch (worker-thread side)
    # ------------------------------------------------------------------
    def run(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Execute one request against the engine; never raises."""
        request_id = message.get("id")
        op = message.get("op")
        self.requests += 1
        try:
            handler = _HANDLERS.get(op)
            if handler is None:
                return proto.error_response(
                    request_id,
                    proto.ERR_BAD_REQUEST,
                    "unknown op %r" % (op,),
                )
            return handler(self, request_id, message)
        except UnknownTransaction as exc:
            return proto.error_response(
                request_id, proto.ERR_UNKNOWN_TXN, str(exc)
            )
        except (ValueError, KeyError, TypeError) as exc:
            return proto.error_response(
                request_id, proto.ERR_BAD_REQUEST, str(exc)
            )
        except Exception as exc:  # engine errors -> typed taxonomy
            exc = self._translate_dead(message, exc)
            return proto.exception_to_error(
                request_id, exc, retry_after_ms=self.retry_hint_ms
            )

    def _translate_dead(
        self, message: Dict[str, Any], exc: Exception
    ) -> Exception:
        """Surface wounds as ``txn_aborted`` and retire dead trees.

        A wound lands while the victim's client is between calls, so
        its next op trips ``_require_active`` and raises
        ``InvalidTransactionState`` -- which reads as client misuse.
        When the named handle is in fact aborted, report the wound
        (:class:`~repro.errors.TransactionAborted`, retryable) instead.
        Either way a dead tree's handles are pruned, since wounds kill
        whole top-level trees.
        """
        try:
            name = proto.txn_name(message.get("txn"))
        except ValueError:
            return exc
        handle = self.handles.get(name)
        if isinstance(exc, TransactionAborted):
            self._prune_subtree(name[:1])
            return exc
        if (
            isinstance(exc, InvalidTransactionState)
            and handle is not None
            and handle.status is TransactionStatus.ABORTED
        ):
            self._prune_subtree(name[:1])
            return TransactionAborted(
                tuple(name),
                reason="wounded before this request ran",
            )
        return exc

    def _handle(self, message: Dict[str, Any]) -> ThreadSafeTransaction:
        name = proto.txn_name(message.get("txn"))
        handle = self.handles.get(name)
        if handle is None:
            raise UnknownTransaction(
                "transaction %r is not owned by this connection"
                % (list(name),)
            )
        return handle

    def _prune_subtree(self, root: TxnName) -> None:
        depth = len(root)
        for name in [n for n in self.handles if n[:depth] == root]:
            del self.handles[name]

    # -- ops -----------------------------------------------------------
    def _op_begin(self, request_id, message):
        handle = self.facade.begin_top()
        name = handle.name
        self.handles[name] = handle
        return proto.ok_response(request_id, txn=list(name))

    def _op_child(self, request_id, message):
        parent = self._handle(message)
        child = parent.begin_child()
        self.handles[child.name] = child
        return proto.ok_response(request_id, txn=list(child.name))

    def _operation(self, message, is_read: bool) -> Operation:
        kind = message.get("kind")
        if kind is not None and not isinstance(kind, str):
            raise ValueError("kind must be a string")
        if is_read:
            args = proto.wire_args(message.get("args"))
            return Operation(kind or "read", args, is_read=True)
        if "args" in message or kind is not None:
            args = proto.wire_args(message.get("args"))
        elif "value" in message:
            value = message["value"]
            if isinstance(value, list):
                value = proto.wire_args(value)
            args = (value,)
        else:
            raise ValueError("write needs a value (or kind/args)")
        return Operation(kind or "write", args, is_read=False)

    def _op_read(self, request_id, message):
        handle = self._handle(message)
        object_name = message.get("object")
        if not isinstance(object_name, str):
            raise ValueError("read needs an object name")
        result = handle.perform(
            object_name,
            self._operation(message, is_read=True),
            timeout=self.op_timeout,
        )
        return proto.ok_response(request_id, result=result)

    def _op_write(self, request_id, message):
        handle = self._handle(message)
        object_name = message.get("object")
        if not isinstance(object_name, str):
            raise ValueError("write needs an object name")
        result = handle.perform(
            object_name,
            self._operation(message, is_read=False),
            timeout=self.op_timeout,
        )
        return proto.ok_response(request_id, result=result)

    def _op_commit(self, request_id, message):
        handle = self._handle(message)
        name = handle.name
        handle.commit(message.get("value"))
        if len(name) == 1:
            self._prune_subtree(name)
        else:
            del self.handles[name]
        return proto.ok_response(request_id)

    def _op_abort(self, request_id, message):
        name = proto.txn_name(message.get("txn"))
        handle = self.handles.get(name)
        if handle is None:
            # The tree already died (wound, explicit ancestor abort,
            # or a duplicate abort); the op is idempotent.
            return proto.ok_response(request_id, already_finished=True)
        if not handle.is_active:
            # A wound or the reaper got here first (children only die
            # with their tree, so a dead handle means a dead subtree);
            # abort is idempotent at the protocol level.
            self._prune_subtree(name)
            return proto.ok_response(request_id, already_finished=True)
        handle.abort()
        self._prune_subtree(name)
        return proto.ok_response(request_id)


def _dispatch(name):
    def call(session, request_id, message):
        return getattr(session, name)(request_id, message)

    return call


_HANDLERS = {
    "begin": _dispatch("_op_begin"),
    "child": _dispatch("_op_child"),
    "read": _dispatch("_op_read"),
    "write": _dispatch("_op_write"),
    "commit": _dispatch("_op_commit"),
    "abort": _dispatch("_op_abort"),
}
