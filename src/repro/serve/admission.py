"""Admission control: in-flight caps, arrival limiting, shed hints.

The service's overload story (ROADMAP item 1; the progressiveness
papers in PAPERS.md motivate surfacing denial as first-class
backpressure): instead of queueing without bound and letting latency
diverge, the server *sheds* work it cannot start soon, answering
``overloaded`` with a ``retry_after_ms`` hint.  Three independent
gates, all enforced on the event-loop thread (no locks needed):

* **per-connection in-flight cap** -- bounds how far one pipelined
  client can run ahead of its own responses;
* **global in-flight cap** -- bounds total admitted-but-unanswered
  requests, which (together with the bounded worker pool) bounds the
  executor queue;
* **token bucket** -- optional arrival-rate limit smoothing bursts.

The backoff hint grows linearly with how overloaded the gate is, so a
herd of shed clients spreads its retries instead of returning in
lockstep; clients add their own jitter (:mod:`repro.serve.client`).
"""

from __future__ import annotations

import time
from typing import Callable, Optional, Tuple


class TokenBucket:
    """A classic token bucket: ``rate`` tokens/second, ``burst`` deep.

    ``try_take`` returns 0.0 when a token was taken, else the seconds
    until one will exist.  The clock is injectable so tests are
    deterministic.
    """

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ):
        if rate <= 0 or burst <= 0:
            raise ValueError("rate and burst must be positive")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._stamp = clock()

    def _refill(self, now: float) -> None:
        elapsed = now - self._stamp
        if elapsed > 0:
            self._tokens = min(
                self.burst, self._tokens + elapsed * self.rate
            )
        self._stamp = now

    def try_take(self) -> float:
        now = self._clock()
        self._refill(now)
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return 0.0
        return (1.0 - self._tokens) / self.rate


class AdmissionController:
    """Decides, per request, admit vs shed-with-hint.

    Single-threaded by design: every method runs on the server's
    event-loop thread.  ``admit`` returns ``(True, None)`` or
    ``(False, retry_after_ms)``; an admitted request must be balanced
    by exactly one ``release`` when its response is written (or its
    connection dies).
    """

    def __init__(
        self,
        max_inflight: int = 256,
        max_inflight_per_conn: int = 32,
        rate: Optional[float] = None,
        burst: Optional[float] = None,
        shed_backoff_ms: int = 25,
        clock: Callable[[], float] = time.monotonic,
    ):
        if max_inflight < 1 or max_inflight_per_conn < 1:
            raise ValueError("in-flight caps must be >= 1")
        self.max_inflight = max_inflight
        self.max_inflight_per_conn = max_inflight_per_conn
        self.shed_backoff_ms = shed_backoff_ms
        self.bucket = (
            TokenBucket(rate, burst if burst else rate, clock=clock)
            if rate
            else None
        )
        self.inflight = 0
        self.inflight_high_water = 0
        self.shed_total = 0

    def _hint(self, scale: float = 1.0) -> int:
        """Backoff hint: grows with global pressure, never below 1ms."""
        pressure = self.inflight / float(self.max_inflight)
        return max(1, int(self.shed_backoff_ms * (1.0 + pressure) * scale))

    def admit(self, conn_inflight: int) -> Tuple[bool, Optional[int]]:
        if conn_inflight >= self.max_inflight_per_conn:
            self.shed_total += 1
            return False, self._hint()
        if self.inflight >= self.max_inflight:
            self.shed_total += 1
            return False, self._hint(2.0)
        if self.bucket is not None:
            wait = self.bucket.try_take()
            if wait > 0.0:
                self.shed_total += 1
                return False, max(1, int(wait * 1000.0))
        self.inflight += 1
        if self.inflight > self.inflight_high_water:
            self.inflight_high_water = self.inflight
        return True, None

    def release(self, count: int = 1) -> None:
        self.inflight -= count
        if self.inflight < 0:  # pragma: no cover - defensive
            self.inflight = 0
