"""The network front-end: an async transaction service (ROADMAP 1).

The engine core is fast, scheme-pluggable, observable, audited, and
durable; this package gives it a network face.  Modules:

* :mod:`repro.serve.protocol` -- the framed canonical-JSON wire
  format (version-pinned, golden-tested like the WAL format) and the
  typed error taxonomy;
* :mod:`repro.serve.session` -- per-connection transaction ownership
  and op dispatch, with orphan abort on disconnect;
* :mod:`repro.serve.admission` -- in-flight caps, token-bucket
  arrival limiting, and shed backoff hints;
* :mod:`repro.serve.server` -- the asyncio TCP server with
  per-connection request batching over a bounded worker pool;
* :mod:`repro.serve.client` -- sync and async (pipelining) clients;
* :mod:`repro.serve.loadgen` -- open-loop Poisson and closed-loop
  load generators reporting :mod:`repro.obs` latency percentiles.

Serve with ``python -m repro serve``; drive with ``python -m repro
loadgen``.  See docs/SERVICE.md.
"""

from repro.serve.admission import AdmissionController, TokenBucket
from repro.serve.client import AsyncClient, ServeError, SyncClient
from repro.serve.loadgen import (
    LoadgenConfig,
    LoadReport,
    run_loadgen,
)
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    FrameCorrupt,
    FrameDecoder,
    FrameTooLarge,
    ProtocolError,
    decode_frame,
    encode_frame,
)
from repro.serve.server import (
    ServeConfig,
    ServerThread,
    TransactionServer,
)
from repro.serve.session import Session

__all__ = [
    "AdmissionController",
    "AsyncClient",
    "FrameCorrupt",
    "FrameDecoder",
    "FrameTooLarge",
    "LoadReport",
    "LoadgenConfig",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ServeConfig",
    "ServeError",
    "ServerThread",
    "Session",
    "SyncClient",
    "TokenBucket",
    "TransactionServer",
    "run_loadgen",
]
