"""The wire protocol of the transaction service: framed canonical JSON.

A connection is a byte stream of *frames*, with exactly the WAL's
framing discipline (:mod:`repro.wal.records`)::

    frame := varint(len(body)) body crc32le(body)
    body  := canonical JSON (sorted keys, compact separators, UTF-8)

``varint`` is unsigned LEB128.  The CRC covers the body only.  The
format is pinned by a golden test (``tests/serve/test_protocol.py``);
bump :data:`PROTOCOL_VERSION` when changing anything here, including
any response field.

Requests and responses
----------------------

Every request is an object with a client-chosen ``id`` (echoed
verbatim in the response, so responses to pipelined requests can be
matched out of band) and an ``op``:

========  ====================================================
hello     version handshake; returns scheme + object names
begin     start a top-level transaction; returns its ``txn``
child     start a subtransaction of ``txn``
read      one read access: ``txn``, ``object``, optional
          ``kind``/``args`` (default ``read()``)
write     one write access: ``txn``, ``object``, ``value``
          (sugar for ``write(value)``) or ``kind``/``args``
commit    commit ``txn`` (optional ``value`` reported upward)
abort     abort ``txn`` (idempotent: an already-finished tree
          answers ``ok`` with ``already_finished``)
ping      liveness probe; echoes ``payload`` if present
stats     server + engine counters snapshot
========  ====================================================

A success response is ``{"id": ..., "ok": true, ...}``; a failure is
``{"id": ..., "ok": false, "error": {...}}`` where the error object
carries the typed taxonomy below.

Error taxonomy
--------------

Engine exceptions map to stable codes so remote clients can react
without parsing messages:

===============  ====================================  =========
code             raised by                             retryable
===============  ====================================  =========
bad_request      malformed request / unknown op        no
bad_frame        unreadable frame (connection closes)  no
version_mismatch hello with an unsupported version     no
unknown_txn      ``txn`` not owned by this connection  no
invalid_state    InvalidTransactionState               no
txn_aborted      TransactionAborted (wounds arrive
                 this way: the facade translates a
                 wound into TransactionAborted)        yes
lock_denied      LockDenied (wait timed out)           yes
retry_later      RetryLater (ordered wait / shed)      yes
overloaded       admission control shed                yes
internal         anything else                         no
===============  ====================================  =========

``retry_later`` and ``overloaded`` responses carry ``retry_after_ms``
-- the server's backoff hint (:class:`repro.errors.RetryLater` and the
admission controller populate it); ``lock_denied`` and ``txn_aborted``
carry it when the server's shed policy supplies one.  Denials also
list ``blockers`` (transaction names as lists) when known.
"""

from __future__ import annotations

import json
import zlib
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.errors import (
    InvalidTransactionState,
    LockDenied,
    ReproError,
    RetryLater,
    TransactionAborted,
)

#: Bump when the frame or message layout changes.
PROTOCOL_VERSION = 1

#: Frames larger than this are refused (and the connection closed):
#: a correct client never needs them, and a corrupt length must not
#: make the server buffer gigabytes.
MAX_FRAME_BYTES = 1 << 20

#: The operations the server understands.
OPS = (
    "hello",
    "begin",
    "child",
    "read",
    "write",
    "commit",
    "abort",
    "ping",
    "stats",
)

# Error codes (the taxonomy table above).
ERR_BAD_REQUEST = "bad_request"
ERR_BAD_FRAME = "bad_frame"
ERR_VERSION = "version_mismatch"
ERR_UNKNOWN_TXN = "unknown_txn"
ERR_INVALID_STATE = "invalid_state"
ERR_TXN_ABORTED = "txn_aborted"
ERR_LOCK_DENIED = "lock_denied"
ERR_RETRY_LATER = "retry_later"
ERR_OVERLOADED = "overloaded"
ERR_INTERNAL = "internal"

#: Codes a client may retry (after any ``retry_after_ms`` hint).
RETRYABLE_CODES = frozenset(
    (ERR_TXN_ABORTED, ERR_LOCK_DENIED, ERR_RETRY_LATER, ERR_OVERLOADED)
)


class ProtocolError(ReproError):
    """Base class for wire-level failures."""


class FrameTooLarge(ProtocolError):
    """A frame announced a body over :data:`MAX_FRAME_BYTES`."""


class FrameCorrupt(ProtocolError):
    """A frame's CRC or JSON body failed to decode."""


# ----------------------------------------------------------------------
# Framing (LEB128 length prefix + CRC32 trailer, as in repro.wal)
# ----------------------------------------------------------------------
def _encode_varint(value: int) -> bytes:
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def _decode_varint(data: bytes, offset: int) -> Tuple[int, int]:
    """Decode a varint at *offset*; returns (value, next_offset).

    Returns ``(-1, offset)`` when the buffer ends mid-varint (a torn
    prefix, not an error -- the decoder waits for more bytes).
    """
    result = 0
    shift = 0
    index = offset
    while index < len(data):
        byte = data[index]
        index += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, index
        shift += 7
        if shift > 35:
            raise FrameCorrupt("varint length prefix over 5 bytes")
    return -1, offset


def _jsonify(value: Any) -> Any:
    """JSON fallback for engine result values (sets become lists)."""
    if isinstance(value, (set, frozenset)):
        return sorted(value, key=repr)
    raise TypeError(
        "value of type %s is not wire-encodable" % type(value).__name__
    )


def canonical_json(message: Dict[str, Any]) -> bytes:
    """The one true byte encoding of a message body."""
    return json.dumps(
        message,
        sort_keys=True,
        separators=(",", ":"),
        ensure_ascii=True,
        default=_jsonify,
    ).encode("ascii")


def encode_frame(message: Dict[str, Any]) -> bytes:
    """Encode one message as a wire frame."""
    body = canonical_json(message)
    if len(body) > MAX_FRAME_BYTES:
        raise FrameTooLarge(
            "message encodes to %d bytes (max %d)"
            % (len(body), MAX_FRAME_BYTES)
        )
    crc = zlib.crc32(body) & 0xFFFFFFFF
    return b"".join(
        (_encode_varint(len(body)), body, crc.to_bytes(4, "little"))
    )


def decode_frame(data: bytes) -> Dict[str, Any]:
    """Decode exactly one complete frame (tests and golden pins)."""
    decoder = FrameDecoder()
    messages = decoder.feed(data)
    if len(messages) != 1 or decoder.pending:
        raise FrameCorrupt(
            "expected exactly one complete frame, got %d (+%d pending "
            "bytes)" % (len(messages), decoder.pending)
        )
    return messages[0]


class FrameDecoder:
    """Incremental frame decoder: feed bytes, get decoded messages.

    Torn input (a frame split across TCP segments) is buffered until
    the rest arrives; corrupt input -- bad CRC, bad JSON, an oversized
    or malformed length -- raises, and the connection that produced it
    must be closed (framing offers no resynchronisation point, by
    design: a client that corrupts one frame cannot be trusted about
    the next).
    """

    def __init__(self, max_frame_bytes: int = MAX_FRAME_BYTES):
        self._buffer = bytearray()
        self._max = max_frame_bytes

    @property
    def pending(self) -> int:
        """Bytes buffered but not yet decodable."""
        return len(self._buffer)

    def feed(self, data: bytes) -> List[Dict[str, Any]]:
        """Absorb *data*; return every newly completed message."""
        self._buffer.extend(data)
        messages: List[Dict[str, Any]] = []
        view = bytes(self._buffer)
        offset = 0
        while True:
            length, body_start = _decode_varint(view, offset)
            if length < 0:
                break  # torn varint; wait for more bytes
            if length > self._max:
                raise FrameTooLarge(
                    "frame announces %d body bytes (max %d)"
                    % (length, self._max)
                )
            frame_end = body_start + length + 4
            if frame_end > len(view):
                break  # torn body/CRC; wait for more bytes
            body = view[body_start:body_start + length]
            crc = int.from_bytes(
                view[body_start + length:frame_end], "little"
            )
            if zlib.crc32(body) & 0xFFFFFFFF != crc:
                raise FrameCorrupt("frame CRC mismatch")
            try:
                message = json.loads(body.decode("utf-8"))
            except (UnicodeDecodeError, ValueError) as exc:
                raise FrameCorrupt(
                    "frame body is not JSON: %s" % exc
                ) from None
            if not isinstance(message, dict):
                raise FrameCorrupt(
                    "frame body is %s, not an object"
                    % type(message).__name__
                )
            messages.append(message)
            offset = frame_end
        del self._buffer[:offset]
        return messages


# ----------------------------------------------------------------------
# Message constructors (canonical shapes; the golden test pins these)
# ----------------------------------------------------------------------
def request(op: str, request_id: int, **fields: Any) -> Dict[str, Any]:
    """A request message (validation happens server-side)."""
    message = {"id": request_id, "op": op}
    for key, value in fields.items():
        if value is not None:
            message[key] = value
    return message


def ok_response(request_id: Any, **fields: Any) -> Dict[str, Any]:
    message = {"id": request_id, "ok": True}
    for key, value in fields.items():
        if value is not None:
            message[key] = value
    return message


def error_response(
    request_id: Any,
    code: str,
    message: str,
    retry_after_ms: Optional[int] = None,
    blockers: Optional[Iterable] = None,
) -> Dict[str, Any]:
    error: Dict[str, Any] = {
        "code": code,
        "message": message,
        "retryable": code in RETRYABLE_CODES,
    }
    if retry_after_ms is not None:
        error["retry_after_ms"] = int(retry_after_ms)
    if blockers:
        error["blockers"] = sorted(list(name) for name in blockers)
    return {"id": request_id, "ok": False, "error": error}


def exception_to_error(
    request_id: Any,
    exc: BaseException,
    retry_after_ms: Optional[int] = None,
) -> Dict[str, Any]:
    """Map an engine exception to its typed error response.

    ``retry_after_ms`` is the server's policy hint for denials that do
    not carry their own; a :class:`~repro.errors.RetryLater` hint from
    the engine wins over it.
    """
    if isinstance(exc, RetryLater):
        hint = exc.retry_after_ms
        return error_response(
            request_id,
            ERR_RETRY_LATER,
            str(exc),
            retry_after_ms=hint if hint is not None else retry_after_ms,
            blockers=exc.blockers,
        )
    if isinstance(exc, LockDenied):
        return error_response(
            request_id,
            ERR_LOCK_DENIED,
            str(exc),
            retry_after_ms=retry_after_ms,
            blockers=exc.blockers,
        )
    if isinstance(exc, TransactionAborted):
        return error_response(
            request_id,
            ERR_TXN_ABORTED,
            str(exc),
            retry_after_ms=retry_after_ms,
        )
    if isinstance(exc, InvalidTransactionState):
        return error_response(request_id, ERR_INVALID_STATE, str(exc))
    return error_response(
        request_id, ERR_INTERNAL, "%s: %s" % (type(exc).__name__, exc)
    )


def wire_args(args: Any) -> Tuple:
    """JSON argument lists become hashable operation argument tuples."""
    if args is None:
        return ()
    if not isinstance(args, (list, tuple)):
        raise ValueError("args must be a list")
    return tuple(
        wire_args(item) if isinstance(item, (list, tuple)) else item
        for item in args
    )


def txn_name(value: Any) -> Tuple[int, ...]:
    """A wire ``txn`` field (list of ints) as an engine name tuple."""
    if (
        not isinstance(value, (list, tuple))
        or not value
        or not all(isinstance(part, int) for part in value)
    ):
        raise ValueError("txn must be a non-empty list of integers")
    return tuple(value)
