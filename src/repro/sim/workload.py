"""Workload generation: nested-transaction program trees.

A :class:`Program` is a top-level transaction's script: a :class:`Block`
of steps, each either an :class:`AccessOp` (touch one object for some
simulated duration) or a nested :class:`Block` run as a subtransaction.
Blocks can run their steps sequentially or in parallel (sibling
concurrency -- the thing nesting buys), can fail with a configured
probability after doing their work (modelling the "subtransactions which
can be aborted independently" of the paper's introduction), and carry a
retry budget for their parent.

:func:`make_workload` generates seeded random workloads: read fraction,
Zipf-skewed object selection (hotspots), nesting depth/fan-out, failure
injection.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

from repro.adt import BankAccount, Counter, IntRegister, SetObject
from repro.core.object_spec import ObjectSpec, Operation


@dataclass
class AccessOp:
    """One data access: which object, which operation, how long it takes."""

    object_name: str
    operation: Operation
    duration: float = 1.0


@dataclass
class Block:
    """A subtransaction: steps run in order (or in parallel).

    ``fail_prob`` injects an abort after the block's work completes;
    ``retries`` is how many times the parent re-runs the block (as a fresh
    subtransaction, redoing the work) before giving up and treating the
    child as aborted.
    """

    steps: List[Union["Block", AccessOp]] = field(default_factory=list)
    parallel: bool = False
    fail_prob: float = 0.0
    retries: int = 0

    def access_count(self) -> int:
        """Total accesses in this block's subtree."""
        total = 0
        for step in self.steps:
            if isinstance(step, AccessOp):
                total += 1
            else:
                total += step.access_count()
        return total


@dataclass
class Program:
    """A top-level transaction script."""

    body: Block
    label: str = ""

    def access_count(self) -> int:
        return self.body.access_count()


@dataclass
class WorkloadConfig:
    """Knobs for :func:`make_workload`."""

    programs: int = 50
    objects: int = 16
    read_fraction: float = 0.5
    zipf_skew: float = 0.0
    depth: int = 2
    fanout: int = 2
    accesses_per_block: int = 2
    parallel_blocks: bool = True
    access_time: float = 1.0
    fail_prob: float = 0.0
    retries: int = 0
    #: "register" (default) or "mixed" -- rotate registers, counters,
    #: bank accounts and sets through the store.
    object_kind: str = "register"


def make_store(config: WorkloadConfig) -> List[ObjectSpec]:
    """The object store a workload runs against."""
    if config.object_kind == "register":
        return [
            IntRegister("r%d" % index) for index in range(config.objects)
        ]
    if config.object_kind == "mixed":
        makers = (
            lambda index: IntRegister("r%d" % index),
            lambda index: Counter("r%d" % index),
            lambda index: BankAccount("r%d" % index, initial=1000),
            lambda index: SetObject("r%d" % index),
        )
        return [
            makers[index % len(makers)](index)
            for index in range(config.objects)
        ]
    if config.object_kind == "commutative":
        # Counters driven by effect-only bumps: the workload where
        # semantic locking shines (benchmark E19).
        return [
            Counter("r%d" % index) for index in range(config.objects)
        ]
    raise ValueError("unknown object_kind %r" % config.object_kind)


_KIND_OPERATIONS = {
    IntRegister: {
        "read": lambda rng: IntRegister.read(),
        "write": lambda rng: IntRegister.add(1),
    },
    Counter: {
        "read": lambda rng: Counter.value(),
        "write": lambda rng: Counter.increment(rng.randrange(1, 4)),
    },
    BankAccount: {
        "read": lambda rng: BankAccount.balance(),
        "write": lambda rng: (
            BankAccount.deposit(rng.randrange(1, 20))
            if rng.random() < 0.5
            else BankAccount.withdraw(rng.randrange(1, 20))
        ),
    },
    SetObject: {
        "read": lambda rng: SetObject.contains(rng.randrange(8)),
        "write": lambda rng: SetObject.insert(rng.randrange(8)),
    },
}


def _zipf_weights(count: int, skew: float) -> List[float]:
    if skew <= 0.0:
        return [1.0] * count
    return [1.0 / ((rank + 1) ** skew) for rank in range(count)]


def _kind_of(config: WorkloadConfig, index: int) -> type:
    if config.object_kind == "register":
        return IntRegister
    if config.object_kind == "commutative":
        return Counter
    kinds = (IntRegister, Counter, BankAccount, SetObject)
    return kinds[index % len(kinds)]


def _random_access(
    rng: random.Random,
    config: WorkloadConfig,
    weights: Sequence[float],
) -> AccessOp:
    index = rng.choices(range(config.objects), weights=weights, k=1)[0]
    name = "r%d" % index
    if config.object_kind == "commutative":
        if rng.random() < config.read_fraction:
            operation = Counter.value()
        else:
            operation = Counter.bump(rng.randrange(1, 4))
        return AccessOp(name, operation, duration=config.access_time)
    kind = _kind_of(config, index)
    makers = _KIND_OPERATIONS[kind]
    if rng.random() < config.read_fraction:
        operation = makers["read"](rng)
    else:
        operation = makers["write"](rng)
    return AccessOp(name, operation, duration=config.access_time)


def _random_block(
    rng: random.Random,
    config: WorkloadConfig,
    weights: Sequence[float],
    depth: int,
) -> Block:
    steps: List[Union[Block, AccessOp]] = []
    if depth <= 1:
        for _ in range(config.accesses_per_block):
            steps.append(_random_access(rng, config, weights))
    else:
        for _ in range(config.fanout):
            steps.append(
                _random_block(rng, config, weights, depth - 1)
            )
    return Block(
        steps=steps,
        parallel=config.parallel_blocks,
        fail_prob=config.fail_prob if depth == 1 else 0.0,
        retries=config.retries if depth == 1 else 0,
    )


def make_workload(
    seed: int, config: Optional[WorkloadConfig] = None
) -> List[Program]:
    """Generate a seeded random workload."""
    config = config or WorkloadConfig()
    rng = random.Random(seed)
    weights = _zipf_weights(config.objects, config.zipf_skew)
    programs = []
    for index in range(config.programs):
        body = _random_block(rng, config, weights, config.depth)
        # The top level itself never carries injected failure: aborting the
        # whole program models a client error, not a subtransaction fault.
        body.fail_prob = 0.0
        body.retries = 0
        programs.append(Program(body=body, label="P%d" % index))
    return programs
