"""Workload generation: nested-transaction program trees (legacy API).

A :class:`Program` is a top-level transaction's script: a :class:`Block`
of steps, each either an :class:`AccessOp` (touch one object for some
simulated duration) or a nested :class:`Block` run as a subtransaction.
Blocks can run their steps sequentially or in parallel (sibling
concurrency -- the thing nesting buys), can fail with a configured
probability after doing their work (modelling the "subtransactions which
can be aborted independently" of the paper's introduction), and carry a
retry budget for their parent.

:func:`make_workload` generates seeded random workloads: read fraction,
Zipf-skewed object selection (hotspots), nesting depth/fan-out, failure
injection.

This module is now a thin shim: the tree classes and the per-ADT access
generator live in :mod:`repro.scenario.programs` (shared with the
declarative scenario compiler), and the samplers in
:mod:`repro.core.sampling`.  The public surface and -- critically --
the seeded output are unchanged: ``make_workload(seed, config)``
consumes the exact RNG sequence it always has, byte-pinned by
``tests/scenario/test_compiler.py``.  New workload shapes should be
written as scenario specs (:mod:`repro.scenario`) instead of new knobs
here.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

from repro.adt import BankAccount, Counter, IntRegister, SetObject
from repro.core.object_spec import ObjectSpec
from repro.core.sampling import zipf_weights
from repro.scenario.programs import (
    KIND_OPERATIONS,
    AccessOp,
    Block,
    Program,
    random_access,
)

__all__ = [
    "AccessOp",
    "Block",
    "Program",
    "WorkloadConfig",
    "make_store",
    "make_workload",
]

#: Back-compat aliases for the moved tables (old private names).
_KIND_OPERATIONS = KIND_OPERATIONS
_zipf_weights = zipf_weights


@dataclass
class WorkloadConfig:
    """Knobs for :func:`make_workload`."""

    programs: int = 50
    objects: int = 16
    read_fraction: float = 0.5
    zipf_skew: float = 0.0
    depth: int = 2
    fanout: int = 2
    accesses_per_block: int = 2
    parallel_blocks: bool = True
    access_time: float = 1.0
    fail_prob: float = 0.0
    retries: int = 0
    #: "register" (default) or "mixed" -- rotate registers, counters,
    #: bank accounts and sets through the store.
    object_kind: str = "register"


def make_store(config: WorkloadConfig) -> List[ObjectSpec]:
    """The object store a workload runs against."""
    if config.object_kind == "register":
        return [
            IntRegister("r%d" % index) for index in range(config.objects)
        ]
    if config.object_kind == "mixed":
        makers = (
            lambda index: IntRegister("r%d" % index),
            lambda index: Counter("r%d" % index),
            lambda index: BankAccount("r%d" % index, initial=1000),
            lambda index: SetObject("r%d" % index),
        )
        return [
            makers[index % len(makers)](index)
            for index in range(config.objects)
        ]
    if config.object_kind == "commutative":
        # Counters driven by effect-only bumps: the workload where
        # semantic locking shines (benchmark E19).
        return [
            Counter("r%d" % index) for index in range(config.objects)
        ]
    raise ValueError("unknown object_kind %r" % config.object_kind)


def _kinds_of(config: WorkloadConfig) -> tuple:
    """The per-index ADT kind table ``random_access`` samples over."""
    if config.object_kind == "register":
        return tuple(IntRegister for _ in range(config.objects))
    if config.object_kind == "commutative":
        return tuple("commutative" for _ in range(config.objects))
    rotation = (IntRegister, Counter, BankAccount, SetObject)
    return tuple(
        rotation[index % len(rotation)]
        for index in range(config.objects)
    )


def _random_block(
    rng: random.Random,
    config: WorkloadConfig,
    names: Sequence[str],
    kinds: Sequence,
    weights: Sequence[float],
    depth: int,
) -> Block:
    steps: List[Union[Block, AccessOp]] = []
    if depth <= 1:
        for _ in range(config.accesses_per_block):
            steps.append(
                random_access(
                    rng,
                    names,
                    kinds,
                    weights,
                    config.read_fraction,
                    config.access_time,
                )
            )
    else:
        for _ in range(config.fanout):
            steps.append(
                _random_block(
                    rng, config, names, kinds, weights, depth - 1
                )
            )
    return Block(
        steps=steps,
        parallel=config.parallel_blocks,
        fail_prob=config.fail_prob if depth == 1 else 0.0,
        retries=config.retries if depth == 1 else 0,
    )


def make_workload(
    seed: int, config: Optional[WorkloadConfig] = None
) -> List[Program]:
    """Generate a seeded random workload."""
    config = config or WorkloadConfig()
    rng = random.Random(seed)
    names = tuple("r%d" % index for index in range(config.objects))
    kinds = _kinds_of(config)
    weights = zipf_weights(config.objects, config.zipf_skew)
    programs = []
    for index in range(config.programs):
        body = _random_block(
            rng, config, names, kinds, weights, config.depth
        )
        # The top level itself never carries injected failure: aborting the
        # whole program models a client error, not a subtransaction fault.
        body.fail_prob = 0.0
        body.retries = 0
        programs.append(Program(body=body, label="P%d" % index))
    return programs
