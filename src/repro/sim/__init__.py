"""Discrete-event simulation substrate for the system evaluation.

The paper evaluates nothing empirically; this package supplies the testbed
its motivation implies: workload generators over nested-transaction
programs, a discrete-event simulator giving accesses duration, and a
runner that executes workloads against :class:`~repro.engine.Engine`
instances under each locking policy, collecting throughput / latency /
abort metrics (benchmarks E9-E14).
"""

from repro.sim.des import Simulator
from repro.sim.metrics import RunMetrics
from repro.sim.runner import SimulationConfig, run_simulation
from repro.sim.workload import (
    AccessOp,
    Block,
    Program,
    WorkloadConfig,
    make_store,
    make_workload,
)

__all__ = [
    "AccessOp",
    "Block",
    "Program",
    "RunMetrics",
    "SimulationConfig",
    "Simulator",
    "WorkloadConfig",
    "make_store",
    "make_workload",
    "run_simulation",
]
