"""Run metrics collected by the simulation runner.

Latency aggregation is built on the observability layer's primitives
(:mod:`repro.obs.metrics`): the canonical nearest-rank
:func:`~repro.obs.metrics.percentile` and the exact-sample
:class:`~repro.obs.metrics.Summary`, so the benchmark tables and the
``repro trace``/``top`` reports share one percentile implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.obs.metrics import Histogram, Summary, percentile

__all__ = ["RunMetrics", "percentile"]


@dataclass
class RunMetrics:
    """Everything a policy-sweep benchmark reports about one run."""

    policy: str = ""
    committed: int = 0
    injected_aborts: int = 0
    deadlock_aborts: int = 0
    subtree_retries: int = 0
    program_restarts: int = 0
    lock_denials: int = 0
    accesses_done: int = 0
    accesses_redone: int = 0
    makespan: float = 0.0
    latencies: List[float] = field(default_factory=list)
    wait_time: float = 0.0
    #: Committed value of every object at the end of the run, filled in
    #: by the runner.  Used by the cross-scheme equivalence tests; not
    #: part of :meth:`row` (it is workload-sized, not tabular).
    final_state: Dict[str, object] = field(default_factory=dict)

    @property
    def throughput(self) -> float:
        """Committed top-level transactions per simulated time unit."""
        if self.makespan <= 0.0:
            return 0.0
        return self.committed / self.makespan

    @property
    def latency_summary(self) -> Summary:
        """The latency samples as an exact-percentile summary."""
        return Summary(self.latencies)

    def latency_histogram(
        self, bounds: Optional[List[float]] = None
    ) -> Histogram:
        """The latencies bucketed for obs-style bounded-memory reports."""
        return self.latency_summary.to_histogram(bounds)

    @property
    def mean_latency(self) -> float:
        return self.latency_summary.mean

    @property
    def p50_latency(self) -> float:
        return self.latency_summary.percentile(0.50)

    @property
    def p95_latency(self) -> float:
        return self.latency_summary.percentile(0.95)

    @property
    def wasted_access_fraction(self) -> float:
        """Fraction of access work thrown away by aborts/restarts."""
        total = self.accesses_done
        if total <= 0:
            return 0.0
        return self.accesses_redone / total

    def row(self) -> Dict[str, float]:
        """A flat dict for tabular reporting."""
        return {
            "policy": self.policy,
            "committed": self.committed,
            "throughput": round(self.throughput, 4),
            "mean_latency": round(self.mean_latency, 2),
            "p95_latency": round(self.p95_latency, 2),
            "makespan": round(self.makespan, 2),
            "deadlock_aborts": self.deadlock_aborts,
            "injected_aborts": self.injected_aborts,
            "retries": self.subtree_retries,
            "restarts": self.program_restarts,
            "denials": self.lock_denials,
            "wasted_access_fraction": round(
                self.wasted_access_fraction, 4
            ),
        }
