"""A minimal discrete-event simulator.

Events are ``(time, sequence, callback)`` triples on a heap; callbacks may
schedule further events.  The sequence number makes simultaneous events
fire in scheduling order, so runs are fully deterministic.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple


class Simulator:
    """The event loop."""

    def __init__(self):
        self._heap: List[Tuple[float, int, Callable[[], None]]] = []
        self._sequence = 0
        self.now = 0.0
        self.events_run = 0

    def at(self, time: float, callback: Callable[[], None]) -> None:
        """Schedule *callback* at absolute *time* (not before now)."""
        when = max(time, self.now)
        heapq.heappush(self._heap, (when, self._sequence, callback))
        self._sequence += 1

    def after(self, delay: float, callback: Callable[[], None]) -> None:
        """Schedule *callback* *delay* time units from now."""
        self.at(self.now + max(delay, 0.0), callback)

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> float:
        """Run until the heap empties (or a bound is hit); return the time."""
        while self._heap:
            if max_events is not None and self.events_run >= max_events:
                break
            time, _, callback = self._heap[0]
            if until is not None and time > until:
                break
            heapq.heappop(self._heap)
            self.now = time
            self.events_run += 1
            callback()
        return self.now

    def pending(self) -> int:
        """Number of events still scheduled."""
        return len(self._heap)
