"""The simulation runner: workloads x engine policies -> metrics.

A closed-system run: at most ``mpl`` top-level transactions execute at
once; when one finishes, the next program is admitted.  Each program is a
tree of blocks and accesses executed as nested engine transactions;
accesses occupy simulated time, conflicting accesses wait for the holder
to return, injected subtransaction failures abort and optionally retry
subtrees, and deadlock victims restart from scratch.

Deadlock detection recomputes the waits-for graph *fresh* from the lock
tables every time an access blocks: each parked access contributes edges
from its top-level tree to the top-level trees of its current blockers.
Fresh recomputation avoids the classic stale-edge false positives of
incrementally maintained graphs.  A drain watchdog resolves any blocked
residue left when the event heap empties (an undetectable-by-construction
cycle cannot survive it).

Every continuation carries the program run's *epoch*; aborting a run bumps
the epoch so stale continuations become no-ops -- the standard trick for
cancellation in a callback-style DES.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Union

from repro.core.names import TransactionName
from repro.core.object_spec import ObjectSpec
from repro.engine.deadlock import choose_victim, top_level
from repro.engine.transaction import Transaction
from repro.errors import LockDenied, TransactionAborted
from repro.kernel import get_scheme
from repro.sim.des import Simulator
from repro.sim.metrics import RunMetrics
from repro.sim.workload import AccessOp, Block, Program


@dataclass
class SimulationConfig:
    """Run parameters for :func:`run_simulation`.

    ``deadlock`` selects the resolution strategy:

    * ``"wound-wait"`` (default) -- prevention: an older transaction that
      finds a younger one holding a conflicting lock *wounds* (aborts) it;
      younger requesters wait.  Waits only flow young -> old, so cycles
      cannot form and the oldest program always makes progress -- the
      classical livelock-free discipline.
    * ``"detect"`` -- detection: blocked requesters park; a waits-for
      cycle (recomputed fresh from the lock tables) aborts its youngest
      member.  Kept for the E14 ablation; under heavy contention it can
      thrash on restart storms.
    * ``"timeout"`` -- the simplest discipline: a parked access that has
      waited longer than ``lock_timeout`` restarts its program.  No graph
      maintenance at all, at the price of false positives on long waits.
    """

    mpl: int = 8
    policy: str = "moss-rw"
    seed: int = 0
    restart_delay: float = 2.0
    #: Base delay before a parked or wounded access retries.  The n-th
    #: consecutive retry of one access waits
    #: ``retry_delay * retry_backoff**n`` (capped at ``retry_max_delay``),
    #: scaled by ``1 + retry_jitter * U`` with ``U`` drawn from a
    #: dedicated seeded stream.  The defaults (backoff 1, jitter 0)
    #: reproduce the historical fixed 0.25 delay byte-for-byte: no
    #: growth, and the jitter stream is never consulted, so the main
    #: RNG sequence -- and therefore the whole schedule -- is unchanged.
    retry_delay: float = 0.25
    retry_backoff: float = 1.0
    retry_jitter: float = 0.0
    retry_max_delay: float = 8.0
    max_events: int = 2_000_000
    max_program_attempts: int = 200
    deadlock: str = "wound-wait"
    lock_timeout: float = 20.0
    #: After this many *intra-tree* deadlocks a program degrades its
    #: parallel blocks to sequential execution: a self-deadlocking branch
    #: pattern (one branch takes a then b, its sibling b then a) would
    #: otherwise recreate the same deadlock on every deterministic
    #: retry.  Cross-tree restarts never trigger this -- they resolve by
    #: timing, and degrading on them would distort the policy sweeps.
    serialize_after_self_deadlocks: int = 1
    #: When set, the system is *open*: programs arrive with exponential
    #: interarrival times at this rate (per time unit) instead of all
    #: being available at t = 0; latency then measures response time
    #: from arrival (queueing included).  ``mpl`` still caps concurrency.
    arrival_rate: Optional[float] = None


class _ProgramRun:
    """Mutable state of one program across restarts."""

    def __init__(self, program: Program, index: int):
        self.program = program
        self.index = index
        self.epoch = 0
        self.attempts = 0
        self.admitted_at = 0.0
        self.arrived_at: Optional[float] = None
        self.admit_order = 0
        self.txn: Optional[Transaction] = None
        self.attempt_accesses = 0
        self.self_deadlocks = 0
        self.finished = False


class _BlockedAccess:
    """One parked access waiting for its blockers to return."""

    def __init__(self, run, epoch, txn, op, done, requested_at, retries=0):
        self.run = run
        self.epoch = epoch
        self.txn = txn
        self.op = op
        self.done = done
        self.requested_at = requested_at
        #: Consecutive failed attempts of this access (drives backoff).
        self.retries = retries

    def valid(self) -> bool:
        return self.run.epoch == self.epoch and not self.run.finished


class _Runner:
    """Internal driver binding one engine, one simulator, one workload."""

    def __init__(
        self,
        programs: Sequence[Program],
        store: Sequence[ObjectSpec],
        config: SimulationConfig,
        observer=None,
        auditor=None,
    ):
        self.config = config
        self.scheme = get_scheme(config.policy)
        self.mpl = 1 if self.scheme.force_serial else config.mpl
        self.sim = Simulator()
        if auditor is not None and observer is None:
            # The auditor rides on the observer event stream; build a
            # lightweight audit-only one when the caller did not
            # supply any.
            from repro.obs import AuditObserver

            observer = AuditObserver()
        self.obs = observer
        if observer is not None:
            # Spans and waits are measured in simulated time units.
            observer.use_clock(lambda: self.sim.now)
            if auditor is not None:
                observer.attach_auditor(auditor)
        self.engine = self.scheme.build(store, observer=observer)
        self.rng = random.Random(config.seed)
        # Retry jitter draws from its own stream so enabling it never
        # perturbs the workload's failure-injection/backoff sequence.
        self._retry_rng = random.Random(config.seed ^ 0x52455452)
        self.metrics = RunMetrics(policy=config.policy)
        self.queue: List[_ProgramRun] = [
            _ProgramRun(program, index)
            for index, program in enumerate(programs)
        ]
        self.running = 0
        self._admit_seq = 0
        self.by_top: Dict[TransactionName, _ProgramRun] = {}
        self.blocked: List[_BlockedAccess] = []

    # ------------------------------------------------------------------
    # Top level
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self.config.arrival_rate is not None:
            self._schedule_arrivals()
        else:
            self._admit()
        while True:
            self.sim.run(max_events=self.config.max_events)
            if self.sim.events_run >= self.config.max_events:
                break
            # Drain watchdog: if work is parked with an empty heap, every
            # parked tree is waiting on another parked tree -- a deadlock
            # the per-block detector could not see as it formed (e.g. the
            # closing edge appeared via a lock release, not a new block).
            survivors = [entry for entry in self.blocked if entry.valid()]
            if not survivors:
                break
            # A tree blocked on its own subtransactions cannot be helped
            # by killing anyone else; restart it first.
            self_stuck = {
                top_level(entry.txn.name)
                for entry in survivors
                if self._intra_tree_blockers(entry)
            }
            pool = self_stuck or {
                top_level(entry.txn.name) for entry in survivors
            }
            victim = max(pool, key=self._age_key)
            self.engine.count_deadlock()
            if victim in self_stuck:
                victim_run = self.by_top.get(victim)
                if victim_run is not None:
                    victim_run.self_deadlocks += 1
            self._abort_victim(victim)
            self._wake_blocked()
        self.metrics.makespan = self.sim.now
        self.metrics.lock_denials = self.engine.stats["denials"]
        self.metrics.deadlock_aborts = self.engine.stats["deadlocks"]
        # Committed object values, for cross-scheme equivalence checks.
        self.metrics.final_state = {
            name: self.engine.object_value(name)
            for name in self.engine.specs
        }

    def _retry_delay(self, attempt: int) -> float:
        """Backoff for the *attempt*-th consecutive retry of one access."""
        config = self.config
        delay = config.retry_delay * config.retry_backoff ** min(attempt, 16)
        delay = min(delay, config.retry_max_delay)
        if config.retry_jitter:
            delay *= 1.0 + config.retry_jitter * self._retry_rng.random()
        return delay

    def _schedule_arrivals(self) -> None:
        """Open system: move the workload to exponential arrival times."""
        arrivals, self.queue = self.queue, []
        clock = 0.0
        rng = random.Random(self.config.seed ^ 0xA881)
        for run in arrivals:
            clock += rng.expovariate(self.config.arrival_rate)
            self.sim.at(clock, lambda run=run: self._arrive(run))

    def _arrive(self, run: _ProgramRun) -> None:
        run.arrived_at = self.sim.now
        self.queue.append(run)
        self._admit()

    def _admit(self) -> None:
        while self.running < self.mpl and self.queue:
            run = self.queue.pop(0)
            self.running += 1
            # Response time is measured from arrival in an open system
            # (queueing delay included), from admission in a closed one.
            run.admitted_at = (
                run.arrived_at
                if run.arrived_at is not None
                else self.sim.now
            )
            self._admit_seq += 1
            run.admit_order = self._admit_seq
            self._start_attempt(run)

    def _start_attempt(self, run: _ProgramRun) -> None:
        run.epoch += 1
        run.attempts += 1
        run.attempt_accesses = 0
        # Keep the original admission time as the transaction's age so a
        # much-restarted program eventually stops being the deadlock
        # victim (wound-wait style anti-starvation).
        run.txn = self.engine.begin_top(at=run.admitted_at)
        self.by_top[run.txn.name] = run
        epoch = run.epoch
        body = run.program.body
        self._run_steps(
            run,
            epoch,
            run.txn,
            body.steps,
            body.parallel,
            lambda: self._finish_top(run, epoch),
        )

    def _stale(self, run: _ProgramRun, epoch: int) -> bool:
        return run.epoch != epoch or run.finished

    # ------------------------------------------------------------------
    # Step execution
    # ------------------------------------------------------------------
    def _run_steps(
        self,
        run: _ProgramRun,
        epoch: int,
        txn: Transaction,
        steps: Sequence[Union[Block, AccessOp]],
        parallel: bool,
        done: Callable[[], None],
    ) -> None:
        if self._stale(run, epoch):
            return
        if not steps:
            done()
            return
        if run.self_deadlocks >= self.config.serialize_after_self_deadlocks:
            parallel = False
        if parallel:
            remaining = [len(steps)]

            def one_done() -> None:
                remaining[0] -= 1
                if remaining[0] == 0:
                    done()

            for step in steps:
                self._run_step(run, epoch, txn, step, one_done)
        else:
            def chain(index: int) -> None:
                if self._stale(run, epoch):
                    return
                if index >= len(steps):
                    done()
                    return
                self._run_step(
                    run, epoch, txn, steps[index],
                    lambda: chain(index + 1),
                )

            chain(0)

    def _run_step(
        self,
        run: _ProgramRun,
        epoch: int,
        txn: Transaction,
        step: Union[Block, AccessOp],
        done: Callable[[], None],
    ) -> None:
        if isinstance(step, AccessOp):
            self._attempt_access(
                run, epoch, txn, step, done, requested_at=self.sim.now
            )
        else:
            self._run_block(run, epoch, txn, step, step.retries, done)

    # ------------------------------------------------------------------
    # Subtransactions with failure injection
    # ------------------------------------------------------------------
    def _run_block(
        self,
        run: _ProgramRun,
        epoch: int,
        txn: Transaction,
        block: Block,
        tries_left: int,
        done: Callable[[], None],
    ) -> None:
        if self._stale(run, epoch):
            return
        try:
            child = txn.begin_child()
        except TransactionAborted:
            return
        started = run.attempt_accesses

        def block_done() -> None:
            if self._stale(run, epoch):
                return
            if self.rng.random() < block.fail_prob:
                self.metrics.injected_aborts += 1
                self.metrics.accesses_redone += (
                    run.attempt_accesses - started
                )
                if self.obs is not None:
                    self.obs.mark_abort_cause(child.name, "injected")
                child.abort()
                self._wake_blocked()
                if run.txn is not None and not run.txn.is_active:
                    # Flat 2PL escalated the abort to the whole program.
                    self._restart_program(run)
                    return
                if tries_left > 0:
                    self.metrics.subtree_retries += 1
                    self.sim.after(
                        self._retry_delay(block.retries - tries_left),
                        lambda: self._run_block(
                            run, epoch, txn, block, tries_left - 1, done
                        ),
                    )
                    return
                done()
                return
            child.commit()
            self._wake_blocked()
            done()

        self._run_steps(
            run, epoch, child, block.steps, block.parallel, block_done
        )

    # ------------------------------------------------------------------
    # Accesses with waiting and deadlock handling
    # ------------------------------------------------------------------
    def _attempt_access(
        self,
        run: _ProgramRun,
        epoch: int,
        txn: Transaction,
        op: AccessOp,
        done: Callable[[], None],
        requested_at: float,
        retries: int = 0,
    ) -> None:
        if self._stale(run, epoch):
            return
        try:
            txn.perform(op.object_name, op.operation)
        except TransactionAborted:
            # A scheme whose aborts escalate from inside `perform` (MVTO
            # timestamp conflicts) killed the whole tree; restart it.
            # (Moss aborts arrive via the victim path, which already
            # bumped the epoch, so this branch is unreachable for the
            # locking engine.)
            if not self._stale(run, epoch):
                self._restart_program(run)
            return
        except LockDenied as denial:
            entry = _BlockedAccess(
                run, epoch, txn, op, done, requested_at, retries
            )
            if self.engine.capabilities.waits_are_acyclic:
                # Ordered waits (MVTO timestamps) cannot cycle: just park.
                self.blocked.append(entry)
                return
            if self.config.deadlock == "wound-wait":
                wounded = self._wound_younger(run, denial.blockers)
                if wounded:
                    # Our victims released their locks; retry shortly.
                    self.sim.after(
                        self._retry_delay(retries),
                        lambda: self._attempt_access(
                            run, epoch, txn, op, done, requested_at,
                            retries + 1,
                        ),
                    )
                    return
                self.blocked.append(entry)
                self._resolve_intra_tree_deadlock(entry)
                return
            if self.config.deadlock == "timeout":
                self.blocked.append(entry)
                waited = self.sim.now - requested_at
                remaining = max(
                    self.config.lock_timeout - waited,
                    self.config.retry_delay,
                )
                self.sim.after(
                    remaining, lambda: self._expire_wait(entry)
                )
                return
            self.blocked.append(entry)
            if self._resolve_intra_tree_deadlock(entry):
                return
            victim = self._detect_deadlock(entry)
            if victim is not None:
                self.engine.count_deadlock()
                self._abort_victim(victim)
                self._wake_blocked()
            return
        waited = self.sim.now - requested_at
        self.metrics.wait_time += waited
        if self.obs is not None and waited > 0:
            self.obs.lock_wait(
                txn.name, op.object_name, requested_at, self.sim.now
            )
        self.metrics.accesses_done += 1
        run.attempt_accesses += 1
        self.sim.after(op.duration, done)

    def _fresh_blockers(self, entry: _BlockedAccess) -> Set[TransactionName]:
        return set(
            self.engine.fresh_blockers(
                entry.txn, entry.op.object_name, entry.op.operation
            )
        )

    def _waits_edges(self) -> Dict[TransactionName, Set[TransactionName]]:
        """Waits-for edges between top-level trees, from current state."""
        edges: Dict[TransactionName, Set[TransactionName]] = {}
        for entry in self.blocked:
            if not entry.valid():
                continue
            source = top_level(entry.txn.name)
            targets = edges.setdefault(source, set())
            for blocker in self._fresh_blockers(entry):
                target = top_level(blocker)
                if target != source:
                    targets.add(target)
        return edges

    def _detect_deadlock(
        self, entry: _BlockedAccess
    ) -> Optional[TransactionName]:
        """DFS for a cycle reachable from *entry*'s tree; return a victim."""
        edges = self._waits_edges()
        start = top_level(entry.txn.name)
        path: List[TransactionName] = []
        on_path: Set[TransactionName] = set()
        finished: Set[TransactionName] = set()

        def visit(node: TransactionName) -> Optional[List[TransactionName]]:
            if node in on_path:
                return path[path.index(node):] + [node]
            if node in finished:
                return None
            path.append(node)
            on_path.add(node)
            for target in sorted(edges.get(node, ())):
                cycle = visit(target)
                if cycle is not None:
                    return cycle
            on_path.discard(node)
            path.pop()
            finished.add(node)
            return None

        cycle = visit(start)
        if cycle is None:
            return None
        return choose_victim(cycle, self.engine.started_at)

    def _expire_wait(self, entry: _BlockedAccess) -> None:
        """Timeout discipline: a still-parked access restarts its program."""
        if not entry.valid():
            return
        if entry not in self.blocked:
            # A wake is in flight; if the retry blocks again, a new park
            # entry (with the original requested_at) re-arms the timer.
            return
        if self.sim.now - entry.requested_at < self.config.lock_timeout:
            return
        self.blocked.remove(entry)
        run = entry.run
        if run.txn is not None and run.txn.is_active:
            self.engine.count_deadlock()
            if self._intra_tree_blockers(entry):
                run.self_deadlocks += 1
            if self.obs is not None:
                self.obs.lock_wait(
                    entry.txn.name,
                    entry.op.object_name,
                    entry.requested_at,
                    self.sim.now,
                )
                self.obs.mark_abort_cause(
                    top_level(run.txn.name), "lock-timeout"
                )
            run.txn.abort()
            self._restart_program(run)

    def _intra_tree_blockers(self, entry: _BlockedAccess):
        """Blockers inside *entry*'s own tree (parallel sibling locks)."""
        my_top = top_level(entry.txn.name)
        return {
            blocker
            for blocker in self._fresh_blockers(entry)
            if top_level(blocker) == my_top
        }

    def _resolve_intra_tree_deadlock(self, entry: _BlockedAccess) -> bool:
        """Detect and break a deadlock among one tree's own siblings.

        Parallel sibling subtransactions can deadlock on each other (e.g.
        one takes r1 then r7, its sibling r7 then r1); such a cycle is
        invisible to top-level collapsing.  A subtransaction's lock is
        released upward only when it commits, and it commits only when all
        work *inside* it completes -- so parked entry E waits on parked
        entry E' exactly when E' sits inside one of E's blocking
        subtransactions.  A cycle over that relation is a genuine
        self-deadlock; the program restarts (counted as a deadlock abort).
        """
        top = top_level(entry.txn.name)
        entries = [
            parked
            for parked in self.blocked
            if parked.valid() and top_level(parked.txn.name) == top
        ]
        if entry not in entries:
            return False
        blockers = {
            id(parked): self._intra_tree_blockers(parked)
            for parked in entries
        }
        if not blockers[id(entry)]:
            return False
        edges = {}
        for parked in entries:
            targets = set()
            for blocker in blockers[id(parked)]:
                for other in entries:
                    inside = (
                        other.txn.name[: len(blocker)] == blocker
                    )
                    if other is not parked and inside:
                        targets.add(id(other))
            edges[id(parked)] = targets
        # Is the new entry on a cycle (can it reach itself)?
        seen = set()

        def dfs(node):
            for target in edges.get(node, ()):
                if target == id(entry):
                    return True
                if target not in seen:
                    seen.add(target)
                    if dfs(target):
                        return True
            return False

        run = entry.run
        if dfs(id(entry)) and run.txn is not None and run.txn.is_active:
            self.engine.count_deadlock()
            run.self_deadlocks += 1
            if self.obs is not None:
                self.obs.mark_abort_cause(
                    top_level(run.txn.name), "deadlock"
                )
            run.txn.abort()
            self._restart_program(run)
            return True
        return False

    def _age_key(self, top: TransactionName):
        """Strict total age order, stable across restarts.

        A restarted program keeps its original admission time and order,
        which is what makes wound-wait livelock-free: the oldest program
        wins every conflict it enters and therefore always completes.
        """
        run = self.by_top.get(top)
        if run is None:
            return (float("inf"), float("inf"))
        return (run.admitted_at, run.admit_order)

    def _wound_younger(self, run: _ProgramRun, blockers) -> bool:
        """Wound-wait: abort every blocker younger than *run*.

        Returns True when at least one holder was wounded (the caller may
        retry); False means every blocker is older, so the caller waits.
        """
        my_top = top_level(run.txn.name)
        my_key = self._age_key(my_top)
        wounded = False
        for blocker in blockers:
            target = top_level(blocker)
            if target == my_top:
                # Intra-tree wait (e.g. on a sibling subtransaction):
                # resolves on its own; never wound our own tree.
                continue
            if self._age_key(target) > my_key:
                victim_run = self.by_top.get(target)
                if (
                    victim_run is not None
                    and not victim_run.finished
                    and victim_run.txn is not None
                    and victim_run.txn.is_active
                ):
                    self.engine.count_deadlock()
                    if self.obs is not None:
                        self.obs.wound(target, my_top)
                    self._abort_victim(target)
                    wounded = True
        if wounded:
            self._wake_blocked()
        return wounded

    def _wake_blocked(self) -> None:
        if not self.blocked:
            return
        waiters, self.blocked = self.blocked, []
        for entry in waiters:
            if not entry.valid():
                continue
            self.sim.after(
                self._retry_delay(entry.retries),
                lambda e=entry: self._attempt_access(
                    e.run, e.epoch, e.txn, e.op, e.done, e.requested_at,
                    e.retries + 1,
                ),
            )

    # ------------------------------------------------------------------
    # Completion, aborts, restarts
    # ------------------------------------------------------------------
    def _finish_top(self, run: _ProgramRun, epoch: int) -> None:
        if self._stale(run, epoch):
            return
        assert run.txn is not None
        run.txn.commit("done")
        run.finished = True
        self.metrics.committed += 1
        self.metrics.latencies.append(self.sim.now - run.admitted_at)
        self.running -= 1
        self._wake_blocked()
        self._admit()

    def _abort_victim(self, victim: TransactionName) -> None:
        run = self.by_top.get(victim)
        if run is None or run.finished:
            return
        if run.txn is None or not run.txn.is_active:
            return
        if self.obs is not None:
            # First tag wins: the wound path has already tagged its
            # victims, everything else here died to a detected deadlock.
            self.obs.mark_abort_cause(victim, "deadlock")
        run.txn.abort()
        self._restart_program(run)

    def _restart_program(self, run: _ProgramRun) -> None:
        """Restart a program whose top-level transaction aborted."""
        if run.finished:
            return
        run.epoch += 1
        self.metrics.accesses_redone += run.attempt_accesses
        self.metrics.program_restarts += 1
        self._wake_blocked()
        if run.attempts >= self.config.max_program_attempts:
            run.finished = True
            self.running -= 1
            self._admit()
            return
        # Randomised exponential backoff: deterministic fixed delays make
        # the same group of programs collide (and deadlock) forever.
        scale = min(2 ** min(run.attempts - 1, 6), 32)
        delay = (
            self.config.restart_delay
            * scale
            * (0.5 + self.rng.random())
        )
        self.sim.after(delay, lambda: self._start_attempt(run))


def run_simulation(
    programs: Sequence[Program],
    store: Sequence[ObjectSpec],
    config: Optional[SimulationConfig] = None,
    observer=None,
    auditor=None,
) -> RunMetrics:
    """Execute *programs* against a fresh engine; return the metrics.

    *observer* (a :class:`repro.obs.Observer`) is re-clocked to
    simulated time and fed the run's lifecycle, lock-wait, and
    conflict-resolution events.  *auditor* (a
    :class:`repro.audit.OnlineAuditor`) is attached to the observer --
    one is created on demand -- and audits the run's committed
    schedule online; inspect ``auditor.report()`` afterwards.
    """
    runner = _Runner(
        programs,
        store,
        config or SimulationConfig(),
        observer=observer,
        auditor=auditor,
    )
    runner.start()
    return runner.metrics
