"""Exception hierarchy shared by every subpackage of :mod:`repro`.

The library distinguishes three failure families:

* **Model errors** -- misuse of the formal I/O-automaton machinery, e.g.
  applying an operation that is not enabled, or composing automata whose
  output sets overlap.
* **Protocol errors** -- violations of the paper's well-formedness
  conditions detected while checking or constructing schedules.
* **Engine errors** -- runtime failures of the executable nested-transaction
  engine: aborted transactions, deadlocks, use of dead handles.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by :mod:`repro`."""


class ModelError(ReproError):
    """Misuse of the I/O-automaton model machinery."""


class NotEnabledError(ModelError):
    """An operation was applied in a state where it is not enabled."""


class CompositionError(ModelError):
    """Automata cannot be composed (e.g. overlapping output operations)."""


class WellFormednessError(ReproError):
    """A sequence of operations violates a well-formedness condition."""


class SystemTypeError(ReproError):
    """A transaction name or access does not fit the declared system type."""


class SerializationFailure(ReproError):
    """The serializer could not rearrange a schedule.

    Raised when the Lemma 33 construction cannot produce a write-equivalent
    serial schedule.  In a correct implementation of the model this never
    happens for genuine R/W Locking schedules; it fires when the input is
    not actually a concurrent schedule of the system.
    """


class EngineError(ReproError):
    """Base class for executable-engine failures."""


class TransactionAborted(EngineError):
    """The operation's transaction (or one of its ancestors) was aborted."""

    def __init__(self, transaction_id, reason=""):
        self.transaction_id = transaction_id
        self.reason = reason
        message = "transaction %r aborted" % (transaction_id,)
        if reason:
            message = "%s: %s" % (message, reason)
        super().__init__(message)


class DeadlockDetected(EngineError):
    """A lock request would close a cycle in the waits-for graph."""

    def __init__(self, victim, cycle):
        self.victim = victim
        self.cycle = list(cycle)
        super().__init__(
            "deadlock: victim %r in cycle %s" % (victim, self.cycle)
        )


class InvalidTransactionState(EngineError):
    """An engine call is illegal for the transaction's current status."""


class LockDenied(EngineError):
    """A non-blocking lock request could not be granted.

    ``blockers`` holds the (non-ancestor, conflicting) lockholder names so
    callers can register waits-for edges and retry after they return.
    """

    def __init__(self, message, blockers=()):
        self.blockers = frozenset(blockers)
        super().__init__(message)


class RetryLater(LockDenied):
    """The access cannot run yet; retry after ``blockers`` finish.

    Raised by schemes whose waits follow a fixed order -- MVTO accesses
    waiting out earlier-timestamp pending writers -- rather than a lock
    conflict that could participate in a deadlock.  Subclasses
    :class:`LockDenied` so it keeps working as a compat alias: every
    existing ``except LockDenied`` retry loop handles it unchanged, but
    callers can now tell an ordered wait (never a deadlock) from a
    genuine lock denial.

    ``retry_after_ms`` is an optional backoff hint in milliseconds
    (default ``None`` = no hint).  Producers that know how long the
    wait is likely to last (the service front-end's shed/backoff
    policy, MVTO's ordered waits) populate it; consumers (the
    ``repro.serve`` protocol maps it to a typed ``retry_after_ms``
    response field) treat it as advisory.  The hint rides as an
    attribute only -- ``str()`` and pickling behave exactly like
    :class:`LockDenied` (message-only ``args``), pinned by
    ``tests/test_errors.py``.
    """

    def __init__(self, message, blockers=(), retry_after_ms=None):
        super().__init__(message, blockers=blockers)
        self.retry_after_ms = retry_after_ms
