"""The MVTO engine: a first-class kernel scheme.

Exposes the same handle API as :class:`repro.engine.Engine` (begin_top /
begin_child / perform / commit / abort plus the runner hooks
``fresh_blockers`` / ``stats`` / ``started_at``), implemented with
multiversion timestamp ordering:

* each top-level tree runs at one timestamp (its admission order);
* reads see the latest committed version at or before their timestamp --
  or their own tree's tentative value -- and *wait*
  (:class:`~repro.errors.RetryLater`) while an earlier-timestamp writer
  is still pending on the object;
* writes abort the tree (``TransactionAborted``) when a later-timestamp
  transaction has already read or written the version they would
  supersede; restarted trees take a fresh, larger timestamp;
* subtransaction commit/abort moves or discards the tree-internal buffer
  entries exactly like Moss' version map, so partial aborts are isolated.

The engine is registered as scheme ``"mvto"`` in
:mod:`repro.kernel.registry` and declares its shape through
:class:`~repro.kernel.scheme.SchemeCapabilities`: waits are acyclic
(ordered by timestamp), aborts escalate to the whole tree, no lock
movement, traces do not refine M(X), and ``perform`` is *not*
object-local (a timestamp conflict discards the tree's buffers on every
object), which is why the thread-safe facade runs MVTO under its global
mutex rather than striped locking.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Optional, Set

from repro.core.names import TransactionName, pretty_name
from repro.core.object_spec import ObjectSpec, Operation
from repro.engine.trace import NullRecorder
from repro.engine.transaction import Transaction, TransactionStatus
from repro.errors import (
    EngineError,
    InvalidTransactionState,
    RetryLater,
    TransactionAborted,
)
from repro.kernel.scheme import SchemeCapabilities
from repro.kernel.store import ObjectStore
from repro.mvto.mv_object import MVObject


class MVTOEngine:
    """A nested-transaction engine using multiversion timestamp ordering."""

    #: Waits always point from larger to smaller timestamps, so
    #: waits-for cycles cannot form; a timestamp conflict aborts the
    #: whole tree across every object from inside ``perform``.
    capabilities = SchemeCapabilities(
        waits_are_acyclic=True,
        aborts_whole_tree=True,
        moves_locks=False,
        model_conformant=False,
        object_local_performs=False,
        # Pending tree buffers and rts/wts watermarks cannot be rebuilt
        # from the WAL's lock-movement vocabulary, so MVTO opts out of
        # durability (attach_wal refuses; see docs/DURABILITY.md).
        durable=False,
    )

    scheme_name = "mvto"

    def attach_wal(self, wal=None, sink=None, segment_bytes=None):
        """MVTO declares no durability; refuse the attach."""
        raise EngineError(
            "scheme %r is not durable "
            "(capabilities.durable is False)" % self.scheme_name
        )

    def __init__(
        self,
        specs: Iterable[ObjectSpec],
        observer=None,
        shards: int = 1,
        sharding=None,
    ):
        self.store = ObjectStore(
            specs, MVObject, shards=shards, sharding=sharding
        )
        #: The name-to-MVObject mapping (the store's own dict).
        self.objects: Dict[str, MVObject] = self.store.objects
        self.specs: Dict[str, ObjectSpec] = self.store.specs
        self.obs = observer
        #: MVTO keeps no model-alphabet trace (its runs do not refine
        #: M(X)); the NullRecorder keeps digests/replay code uniform.
        self.recorder = NullRecorder()
        self.transactions: Dict[TransactionName, Transaction] = {}
        self.started_at: Dict[TransactionName, float] = {}
        self._next_top = 0
        self._next_ts = 1
        self._tree_ts: Dict[TransactionName, int] = {}
        #: top-level name per live timestamp (for blocker reporting)
        self._ts_owner: Dict[int, TransactionName] = {}
        self.stats = {
            "accesses": 0,
            "denials": 0,
            "commits": 0,
            "aborts": 0,
            "deadlocks": 0,
            "ts_aborts": 0,
        }

    # ------------------------------------------------------------------
    # Handles (same protocol as repro.engine.Engine)
    # ------------------------------------------------------------------
    def begin_top(
        self, at: Optional[float] = None, ts: Optional[int] = None
    ) -> Transaction:
        """Begin a top-level tree; optional *ts* pins its timestamp.

        By default timestamps are assigned in local admission order.
        A caller that spans several engines (the sharded coordinator)
        passes an explicit *ts* instead, so every engine serializes
        the same tree at the same position -- the cross-engine orders
        then compose into one order.  Pinned timestamps must be fresh
        and, like the default, are consumed monotonically.
        """
        if ts is not None:
            if ts in self._ts_owner:
                raise EngineError(
                    "timestamp %d is already owned by %r"
                    % (ts, self._ts_owner[ts])
                )
            self._next_ts = max(self._next_ts, ts + 1)
        name = (self._next_top,)
        self._next_top += 1
        txn = Transaction(self, name, parent=None)
        self.transactions[name] = txn
        started = ts if ts is not None else self._next_ts
        self.started_at[name] = at if at is not None else float(started)
        if ts is None:
            ts = self._next_ts
            self._next_ts += 1
        self._tree_ts[name] = ts
        self._ts_owner[ts] = name
        obs = self.obs
        if obs is not None:
            obs.txn_begin(name)
        return txn

    def _begin_child(self, parent: Transaction) -> Transaction:
        name = parent._claim_child_slot()
        txn = Transaction(self, name, parent=parent)
        self.transactions[name] = txn
        parent.children.append(txn)
        obs = self.obs
        if obs is not None:
            obs.txn_begin(name)
        return txn

    def count_deadlock(self) -> None:
        """Record one externally resolved deadlock in the stats."""
        self.stats["deadlocks"] += 1
        obs = self.obs
        if obs is not None:
            obs.deadlock()

    def transaction(self, name: TransactionName) -> Transaction:
        try:
            return self.transactions[name]
        except KeyError:
            raise EngineError("unknown transaction %r" % (name,)) from None

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _top_of(self, txn: Transaction) -> TransactionName:
        return txn.name[:1]

    def _ts_of(self, txn: Transaction) -> int:
        return self._tree_ts[self._top_of(txn)]

    def _check_not_orphan(self, txn: Transaction) -> None:
        node: Optional[Transaction] = txn
        while node is not None:
            if node.status is TransactionStatus.ABORTED:
                raise TransactionAborted(
                    txn.name,
                    "ancestor %s aborted" % pretty_name(node.name),
                )
            node = node.parent

    def fresh_blockers(
        self,
        txn: Transaction,
        object_name: str,
        operation: Operation,
    ) -> Set[TransactionName]:
        """Pending earlier writers this access would have to wait for."""
        mv_object = self.store.object(object_name)
        ts = self._ts_of(txn)
        owners = set()
        for wts in mv_object.earlier_pending_writers(ts):
            owner = self._ts_owner.get(wts)
            if owner is not None and owner != self._top_of(txn):
                owners.add(owner)
        return owners

    # ------------------------------------------------------------------
    # Access / commit / abort (called via Transaction handles)
    # ------------------------------------------------------------------
    def _perform(
        self,
        txn: Transaction,
        object_name: str,
        operation: Operation,
    ) -> Any:
        self._check_not_orphan(txn)
        mv_object = self.store.object(object_name)
        ts = self._ts_of(txn)
        top = self._top_of(txn)
        buffer = mv_object.buffers.get(ts)
        own_dirty = buffer is not None and buffer.dirty()
        obs = self.obs
        if not own_dirty:
            # Wait for pending earlier writers before touching committed
            # state (both reads and writes keep timestamp order this way).
            blockers = self.fresh_blockers(txn, object_name, operation)
            if blockers:
                self.stats["denials"] += 1
                if obs is not None:
                    obs.lock_denied(txn.name, object_name, blockers)
                raise RetryLater(
                    "mvto: ts=%d waits on %s at %s"
                    % (ts, sorted(blockers), object_name),
                    blockers=blockers,
                    # Ordered waits clear as soon as the earlier-ts
                    # writers finish; a nominal 1ms hint tells remote
                    # callers "poll soon" without pretending the engine
                    # can predict the blockers' remaining runtime.
                    retry_after_ms=1,
                )
        version = mv_object.version_before(ts)
        if operation.is_read:
            self.stats["accesses"] += 1
            if obs is not None:
                obs.access(txn.name, object_name, operation.kind, True)
            if own_dirty:
                base = buffer.current()
                result, _ = mv_object.spec.apply(base, operation)
                return result
            version.rts = max(version.rts, ts)
            result, _ = mv_object.spec.apply(version.value, operation)
            return result
        # Write path: timestamp-order checks against the committed chain.
        if not own_dirty and (
            mv_object.later_committed_write(ts) or version.rts > ts
        ):
            self.stats["ts_aborts"] += 1
            if obs is not None:
                obs.mark_abort_cause(top, "ts-conflict")
            self._abort_tree(top)
            raise TransactionAborted(
                txn.name, "timestamp conflict at %s" % object_name
            )
        self.stats["accesses"] += 1
        if obs is not None:
            obs.access(txn.name, object_name, operation.kind, False)
        # A write is a read-modify-write of the base version (the spec
        # applies the operation to its value), so it must leave a read
        # footprint: an earlier-timestamp writer arriving afterwards
        # has to trip the ``version.rts > ts`` check above and restart,
        # or it would install a version this write's base never saw --
        # the classic lost update.
        version.rts = max(version.rts, ts)
        live_buffer = mv_object.buffer_for(ts, version.value)
        base = live_buffer.current()
        result, new_value = mv_object.spec.apply(base, operation)
        node = txn.name + (txn._next_child,)
        txn._claim_child_slot()
        live_buffer.install(node, new_value)
        # A freshly-written node buffer must merge into the writing
        # transaction immediately (the access "subtransaction" commits at
        # once, as in the locking engine).
        live_buffer.promote(node)
        mv_object.pending_writers.add(ts)
        return result

    def _commit(self, txn: Transaction, value: Any) -> None:
        self._check_not_orphan(txn)
        live = txn.live_children()
        if live:
            raise InvalidTransactionState(
                "%s cannot commit with live children" % pretty_name(txn.name)
            )
        txn.status = TransactionStatus.COMMITTED
        txn.value = value
        self.stats["commits"] += 1
        obs = self.obs
        if obs is not None:
            obs.txn_commit(txn.name)
        ts = self._ts_of(txn)
        if txn.is_top_level:
            for mv_object in self.store.values():
                mv_object.commit_tree(ts)
            self._ts_owner.pop(ts, None)
        else:
            for mv_object in self.store.values():
                live_buffer = mv_object.buffers.get(ts)
                if live_buffer is not None:
                    live_buffer.promote(txn.name)

    def _abort(self, txn: Transaction) -> None:
        if txn.is_top_level:
            self._abort_tree(txn.name)
            return
        ts = self._ts_of(txn)
        self._mark_aborted_subtree(txn)
        self.stats["aborts"] += 1
        for mv_object in self.store.values():
            live_buffer = mv_object.buffers.get(ts)
            if live_buffer is not None:
                live_buffer.discard_subtree(txn.name)

    def _abort_tree(self, top: TransactionName) -> None:
        txn = self.transactions[top]
        if txn.is_active:
            self._mark_aborted_subtree(txn)
        self.stats["aborts"] += 1
        ts = self._tree_ts[top]
        for mv_object in self.store.values():
            mv_object.abort_tree(ts)
        self._ts_owner.pop(ts, None)

    def _mark_aborted_subtree(
        self, txn: Transaction, root: bool = True
    ) -> None:
        txn.status = TransactionStatus.ABORTED
        obs = self.obs
        if obs is not None:
            obs.txn_abort(
                txn.name,
                cause="explicit" if root else "ancestor-abort",
            )
        for child in txn.children:
            if child.is_active:
                self._mark_aborted_subtree(child, root=False)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def object_value(self, object_name: str, committed: bool = True) -> Any:
        mv_object = self.store.object(object_name)
        return mv_object.versions[-1].value
