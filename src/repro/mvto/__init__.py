"""A Reed-style multiversion timestamp-ordering baseline.

The paper cites Reed [R] as the other road to nested-transaction data
management: multiversion timestamp concurrency control.  This package
implements a simplified nested MVTO engine behind the same handle API as
:mod:`repro.engine`, registered as scheme ``"mvto"`` in the kernel
registry (:func:`repro.kernel.get_scheme`), so the simulation runner can
sweep it like any locking policy (benchmark E12).

Simplifications relative to Reed's full design (documented in DESIGN.md):
timestamps are per *top-level* transaction (a whole nested tree shares its
root's timestamp; subtransaction aborts discard buffered writes via the
same per-node version-map discipline Moss uses), and readers wait for
pending earlier-timestamp writers instead of reading around them.
"""

from repro.mvto.mv_engine import MVTOEngine
from repro.mvto.mv_object import MVObject, Version

__all__ = ["MVObject", "MVTOEngine", "Version"]
