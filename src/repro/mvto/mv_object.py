"""Multiversion objects: committed version chains plus tentative buffers.

Each object keeps a chain of committed :class:`Version` records ordered by
write timestamp, a read-timestamp watermark per version, and a tentative
buffer per active top-level tree.  Inside a tree the tentative state is a
per-node map exactly like Moss' version map, so subtransaction aborts
discard precisely their own writes.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Any, Dict, List, Set

from repro.core.names import TransactionName, is_descendant
from repro.core.object_spec import ObjectSpec
from repro.errors import EngineError


@dataclass
class Version:
    """One committed version: written at ``wts``, read up to ``rts``."""

    wts: int
    value: Any
    rts: int = 0


class _TreeBuffer:
    """Tentative writes of one top-level tree, keyed by tree node.

    Entries are ordered by install sequence, not node depth: every
    write chains off :meth:`current`, so the newest entry always
    subsumes the older ones, and a parallel sibling that *commits*
    first must not be overwritten by a later promote carrying a stale
    (pre-sibling) value.
    """

    def __init__(self, base: Any):
        self.base = base
        self.by_node: Dict[TransactionName, Any] = {}
        self._seq: Dict[TransactionName, int] = {}
        self._next_seq = 0

    def current(self) -> Any:
        if not self.by_node:
            return self.base
        newest = max(self.by_node, key=self._seq.__getitem__)
        return self.by_node[newest]

    def install(self, node: TransactionName, value: Any) -> None:
        self.by_node[node] = value
        self._next_seq += 1
        self._seq[node] = self._next_seq

    def promote(self, node: TransactionName) -> None:
        if node not in self.by_node:
            return
        value = self.by_node.pop(node)
        seq = self._seq.pop(node)
        mother = node[:-1]
        if self._seq.get(mother, -1) < seq:
            self.by_node[mother] = value
            self._seq[mother] = seq

    def discard_subtree(self, node: TransactionName) -> None:
        for key in [k for k in self.by_node if is_descendant(k, node)]:
            del self.by_node[key]
            del self._seq[key]

    def dirty(self) -> bool:
        return bool(self.by_node)


class MVObject:
    """Version chain and buffers for one object."""

    def __init__(self, spec: ObjectSpec):
        self.spec = spec
        self.versions: List[Version] = [Version(0, spec.initial_value())]
        self.buffers: Dict[int, _TreeBuffer] = {}
        #: pending writer timestamps, for reader waits
        self.pending_writers: Set[int] = set()

    # ------------------------------------------------------------------
    # Committed chain
    # ------------------------------------------------------------------
    def version_before(self, ts: int) -> Version:
        """The committed version a transaction at *ts* reads."""
        keys = [version.wts for version in self.versions]
        index = bisect.bisect_right(keys, ts) - 1
        if index < 0:
            raise EngineError("no version before ts=%d" % ts)
        return self.versions[index]

    def later_committed_write(self, ts: int) -> bool:
        """True if some committed version has wts > ts."""
        return self.versions[-1].wts > ts

    def earlier_pending_writers(self, ts: int) -> Set[int]:
        """Uncommitted writers with smaller timestamps (readers must wait)."""
        return {wts for wts in self.pending_writers if wts < ts}

    # ------------------------------------------------------------------
    # Tentative buffers
    # ------------------------------------------------------------------
    def buffer_for(self, ts: int, base: Any) -> _TreeBuffer:
        buffer = self.buffers.get(ts)
        if buffer is None:
            buffer = _TreeBuffer(base)
            self.buffers[ts] = buffer
        return buffer

    def commit_tree(self, ts: int) -> None:
        """Install the tree's tentative value as a committed version."""
        buffer = self.buffers.pop(ts, None)
        self.pending_writers.discard(ts)
        if buffer is None or not buffer.dirty():
            return
        version = Version(ts, buffer.current(), rts=ts)
        keys = [existing.wts for existing in self.versions]
        index = bisect.bisect_right(keys, ts)
        self.versions.insert(index, version)

    def abort_tree(self, ts: int) -> None:
        """Throw away the tree's tentative state."""
        self.buffers.pop(ts, None)
        self.pending_writers.discard(ts)
