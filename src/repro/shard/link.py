"""Coordinator-side RPC link to one shard worker.

A :class:`ShardLink` wraps one duplex pipe connection with the framed
JSON protocol and a dedicated receiver thread, so any number of client
threads can pipeline requests onto the same worker: ``send`` assigns a
request id and writes the frame under a short lock, ``wait`` blocks on
the caller's own waiter until the receiver thread dispatches the
matching reply.  Replies therefore arrive in the worker's execution
order, and per-reply hooks (observer access events) fire in that order
on the receiver thread -- which is what keeps the merged audit stream
faithful to each shard's actual history.

A dead pipe (worker SIGKILLed, or exited) fails every pending waiter
and every later call with :class:`ShardDown`, a typed
:class:`~repro.errors.EngineError`.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, Optional

from repro.errors import EngineError
from repro.serve import protocol as proto


class ShardDown(EngineError):
    """The worker process behind a shard link is gone."""

    def __init__(self, shard: int, detail: str = ""):
        self.shard = shard
        message = "shard %d worker is down" % shard
        if detail:
            message = "%s (%s)" % (message, detail)
        super().__init__(message)


class _Waiter:
    """One in-flight request: an event plus its reply slot."""

    __slots__ = ("event", "reply", "on_ok")

    def __init__(self, on_ok: Optional[Callable[[Dict[str, Any]], None]]):
        self.event = threading.Event()
        self.reply: Optional[Dict[str, Any]] = None
        self.on_ok = on_ok


class ShardLink:
    """Pipelined request/reply over one worker pipe."""

    def __init__(self, shard: int, conn):
        self.shard = shard
        self.conn = conn
        self._send_lock = threading.Lock()
        self._pending_lock = threading.Lock()
        self._pending: Dict[int, _Waiter] = {}
        self._next_id = 0
        self._down: Optional[ShardDown] = None
        self._receiver = threading.Thread(
            target=self._receive_loop,
            name="repro-shard-%d" % shard,
            daemon=True,
        )
        self._receiver.start()

    # ------------------------------------------------------------------
    # Request/reply
    # ------------------------------------------------------------------
    def send(
        self,
        op: str,
        on_ok: Optional[Callable[[Dict[str, Any]], None]] = None,
        **fields: Any,
    ) -> _Waiter:
        """Fire one request; returns the waiter to pass to ``wait``.

        *on_ok* runs on the receiver thread right before the waiter is
        released, only for ok replies -- the coordinator uses it to
        emit observer events in the shard's execution order.
        """
        if self._down is not None:
            raise self._down
        waiter = _Waiter(on_ok)
        with self._send_lock:
            request_id = self._next_id
            self._next_id += 1
            with self._pending_lock:
                self._pending[request_id] = waiter
            frame = proto.encode_frame(
                proto.request(op, request_id, **fields)
            )
            try:
                self.conn.send_bytes(frame)
            except (OSError, ValueError, BrokenPipeError) as exc:
                with self._pending_lock:
                    self._pending.pop(request_id, None)
                self._mark_down(str(exc))
                raise self._down from None
        return waiter

    def wait(
        self, waiter: _Waiter, timeout: Optional[float] = None
    ) -> Dict[str, Any]:
        """Block for the reply; raises :class:`ShardDown` on link death."""
        if not waiter.event.wait(timeout):
            raise EngineError(
                "shard %d reply timed out after %ss" % (self.shard, timeout)
            )
        reply = waiter.reply
        if reply is None:
            raise self._down or ShardDown(self.shard)
        return reply

    def call(
        self,
        op: str,
        timeout: Optional[float] = None,
        on_ok: Optional[Callable[[Dict[str, Any]], None]] = None,
        **fields: Any,
    ) -> Dict[str, Any]:
        """``send`` + ``wait`` in one step."""
        return self.wait(self.send(op, on_ok=on_ok, **fields), timeout)

    @property
    def alive(self) -> bool:
        return self._down is None

    # ------------------------------------------------------------------
    # Receiver
    # ------------------------------------------------------------------
    def _receive_loop(self) -> None:
        conn = self.conn
        while True:
            try:
                data = conn.recv_bytes()
            except (EOFError, OSError, ValueError):
                self._mark_down("pipe closed")
                return
            try:
                message = proto.decode_frame(data)
            except proto.ProtocolError:
                self._mark_down("bad frame from worker")
                return
            waiter = None
            request_id = message.get("id")
            if request_id is not None:
                with self._pending_lock:
                    waiter = self._pending.pop(request_id, None)
            if waiter is None:
                # A boot-failure report (id None) poisons the link.
                if message.get("ok") is False:
                    error = message.get("error") or {}
                    self._mark_down(
                        str(error.get("message", "worker boot failed"))
                    )
                    return
                continue
            if message.get("ok") and waiter.on_ok is not None:
                try:
                    waiter.on_ok(message)
                except Exception:  # noqa: BLE001 - hooks must not kill I/O
                    pass
            waiter.reply = message
            waiter.event.set()

    def _mark_down(self, detail: str) -> None:
        if self._down is None:
            self._down = ShardDown(self.shard, detail)
        with self._pending_lock:
            pending = list(self._pending.values())
            self._pending.clear()
        for waiter in pending:
            waiter.event.set()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        try:
            self.conn.close()
        except OSError:
            pass
        self._mark_down("closed")
        self._receiver.join(timeout=1.0)
