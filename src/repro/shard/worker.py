"""The shard worker process: one single-threaded engine per shard.

``worker_main`` is the spawn-safe process target.  It builds the
engine named by its :class:`WorkerConfig` over the shard's spec slice,
optionally attaches a per-shard file WAL, and then serves framed-JSON
requests (:mod:`repro.serve.protocol` framing, one frame per pipe
message) until the coordinator pipe closes.

Name mirroring is lazy and worker-local: requests carry *global*
transaction names (the coordinator's numbering); the worker maps each
global name to a local handle, beginning missing ancestors on demand.
Local slot numbers therefore differ from the global ones -- they are
assigned sequentially by the local engine, which is exactly what WAL
recovery replays against (``repro recover`` on a shard directory
cross-checks the local numbering).  Lock blockers travel back
translated to global *top* names so the coordinator can run wound-wait
across shards.

The worker protocol (superset shapes of the serve wire protocol):

====================  =====================================================
``hello``             version pin + sharding self-check; replies scheme,
                      shard index, object count
``begin``             mirror a global top (``txn``); optional ``ts`` is
                      the global timestamp (MVTO orders by it so every
                      shard agrees on one serialization order)
``perform``           one access: ``txn``/``object``/``kind``/``args``/
                      ``read``; lazily mirrors missing ancestors
``commit``            commit a mirrored subtransaction (no-op if the
                      child never touched this shard)
``abort``             abort a mirrored subtree (no-op if unknown)
``prepare``           phase 1 of 2PC: validate the tree is active and
                      force the WAL durable (presumed abort: nothing is
                      logged for the prepare itself)
``decide``            phase 2 (and the single-shard fast path): commit
                      the local top; the engine logs COMMIT and flushes
``value``             committed (or current) object value
``stats``             engine + WAL counters
``shutdown``          close the WAL and exit after replying
====================  =====================================================
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.object_spec import Operation
from repro.errors import EngineError, LockDenied, RetryLater
from repro.kernel.registry import get_scheme
from repro.kernel.store import default_sharding
from repro.serve import protocol as proto


@dataclass
class WorkerConfig:
    """Everything a spawn worker needs; must stay picklable."""

    shard: int
    shards: int
    scheme: str = "moss-rw"
    specs: List[Any] = field(default_factory=list)
    wal_dir: Optional[str] = None
    segment_bytes: Optional[int] = None
    wal_group_ms: Optional[float] = None
    #: Verify ``default_sharding`` routed every spec to this shard --
    #: the cross-process determinism pin (off for custom shardings).
    check_sharding: bool = True


class ShardWorker:
    """Dispatches worker-protocol messages onto a local engine."""

    def __init__(self, config: WorkerConfig):
        self.config = config
        self.scheme = get_scheme(config.scheme)
        self.engine = self.scheme.build(config.specs)
        self.wal = None
        if config.wal_dir is not None and self.scheme.capabilities.durable:
            from repro.wal.log import (
                DEFAULT_SEGMENT_BYTES,
                FileWalSink,
                GroupCommitSink,
            )

            if config.wal_group_ms is not None:
                sink = GroupCommitSink(
                    config.wal_dir, window_ms=config.wal_group_ms
                )
            else:
                sink = FileWalSink(config.wal_dir)
            self.wal = self.engine.attach_wal(
                sink=sink,
                segment_bytes=(
                    config.segment_bytes
                    if config.segment_bytes is not None
                    else DEFAULT_SEGMENT_BYTES
                ),
            )
        #: global name tuple -> local Transaction handle
        self._nodes: Dict[Tuple[int, ...], Any] = {}
        #: global top ordinal -> every mirrored global name under it
        self._by_top: Dict[int, List[Tuple[int, ...]]] = {}
        #: local top slot -> global top name (blocker translation)
        self._local_tops: Dict[int, Tuple[int, ...]] = {}
        self._accepts_ts = (
            "ts" in inspect.signature(self.engine.begin_top).parameters
        )
        self._handlers = {
            "hello": self._op_hello,
            "begin": self._op_begin,
            "perform": self._op_perform,
            "commit": self._op_commit,
            "abort": self._op_abort,
            "prepare": self._op_prepare,
            "decide": self._op_decide,
            "value": self._op_value,
            "stats": self._op_stats,
        }
        if config.check_sharding:
            self._check_sharding()

    # ------------------------------------------------------------------
    # Boot checks
    # ------------------------------------------------------------------
    def _check_sharding(self) -> None:
        """Pin that CRC32 sharding is deterministic across processes.

        The coordinator routed these specs here with its own
        ``default_sharding``; recomputing in the spawned interpreter
        must agree, or reads would silently go to the wrong engine.
        """
        for spec in self.config.specs:
            index = default_sharding(spec.name, self.config.shards)
            if index != self.config.shard:
                raise EngineError(
                    "sharding disagrees across processes: %r -> %d "
                    "in the worker, %d per the coordinator"
                    % (spec.name, index, self.config.shard)
                )

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def handle(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """One request message in, one response message out."""
        request_id = message.get("id")
        handler = self._handlers.get(message.get("op"))
        if handler is None:
            return proto.error_response(
                request_id,
                proto.ERR_BAD_REQUEST,
                "unknown worker op %r" % (message.get("op"),),
            )
        try:
            return handler(request_id, message)
        except RetryLater as exc:
            return self._denial(request_id, exc, proto.ERR_RETRY_LATER)
        except LockDenied as exc:
            return self._denial(request_id, exc, proto.ERR_LOCK_DENIED)
        except Exception as exc:  # noqa: BLE001 - typed on the wire
            return proto.exception_to_error(request_id, exc)

    def _denial(self, request_id, exc, code) -> Dict[str, Any]:
        """A lock denial with blockers translated to global top names."""
        hint = getattr(exc, "retry_after_ms", None)
        return proto.error_response(
            request_id,
            code,
            str(exc),
            retry_after_ms=hint,
            blockers=self._translate_blockers(exc.blockers),
        )

    def _translate_blockers(self, blockers) -> List[Tuple[int, ...]]:
        seen = set()
        for blocker in blockers or ():
            top = self._local_tops.get(blocker[0])
            if top is not None:
                seen.add(top)
        return sorted(seen)

    # ------------------------------------------------------------------
    # Name mirroring
    # ------------------------------------------------------------------
    def _mirror(
        self,
        name: Tuple[int, ...],
        ts: Optional[int] = None,
        at: Optional[float] = None,
    ):
        """The local handle for global *name*, mirroring as needed."""
        node = self._nodes.get(name)
        if node is not None:
            return node
        if len(name) == 1:
            kwargs: Dict[str, Any] = {}
            if self._accepts_ts and ts is not None:
                kwargs["ts"] = ts
            node = self.engine.begin_top(at=at, **kwargs)
            self._by_top[name[0]] = [name]
            self._local_tops[node.name[0]] = name
        else:
            parent = self._mirror(name[:-1], ts=ts, at=at)
            node = parent.begin_child()
            self._by_top[name[0]].append(name)
        self._nodes[name] = node
        return node

    def _lookup(self, message: Dict[str, Any]):
        name = proto.txn_name(message.get("txn"))
        node = self._nodes.get(name)
        if node is None:
            raise EngineError(
                "shard %d does not know transaction %r"
                % (self.config.shard, name)
            )
        return name, node

    def _forget_top(self, ordinal: int) -> None:
        for name in self._by_top.pop(ordinal, ()):
            node = self._nodes.pop(name, None)
            if node is not None and len(name) == 1:
                self._local_tops.pop(node.name[0], None)

    # ------------------------------------------------------------------
    # Ops
    # ------------------------------------------------------------------
    def _op_hello(self, request_id, message) -> Dict[str, Any]:
        version = message.get("version")
        if version is not None and version != proto.PROTOCOL_VERSION:
            return proto.error_response(
                request_id,
                proto.ERR_VERSION,
                "worker speaks protocol %d, coordinator asked for %r"
                % (proto.PROTOCOL_VERSION, version),
            )
        return proto.ok_response(
            request_id,
            version=proto.PROTOCOL_VERSION,
            scheme=self.scheme.name,
            shard=self.config.shard,
            objects=len(self.config.specs),
            durable=self.wal is not None,
        )

    def _op_begin(self, request_id, message) -> Dict[str, Any]:
        name = proto.txn_name(message.get("txn"))
        if len(name) != 1:
            raise EngineError("begin mirrors top-level names only")
        self._mirror(name, ts=message.get("ts"), at=message.get("at"))
        return proto.ok_response(request_id)

    def _op_perform(self, request_id, message) -> Dict[str, Any]:
        name = proto.txn_name(message.get("txn"))
        object_name = message.get("object")
        if not isinstance(object_name, str):
            raise EngineError("perform needs an object name")
        if name[0] not in self._by_top:
            # Tops are only ever created by an explicit ``begin``; one
            # that is missing here was forgotten (the tree aborted or
            # committed while this perform raced it down the pipe).
            # Lazily re-beginning it would plant a ghost mirror whose
            # locks nothing ever releases, so refuse instead.
            return proto.error_response(
                request_id,
                proto.ERR_TXN_ABORTED,
                "shard %d no longer mirrors tree %r "
                "(aborted or committed)" % (self.config.shard, name[:1]),
            )
        node = self._mirror(name)
        operation = Operation(
            message.get("kind") or "read",
            proto.wire_args(message.get("args")),
            is_read=bool(message.get("read")),
        )
        value = node.perform(object_name, operation)
        return proto.ok_response(request_id, value=value)

    def _op_commit(self, request_id, message) -> Dict[str, Any]:
        name = proto.txn_name(message.get("txn"))
        if len(name) == 1:
            raise EngineError("top-level commits go through 2PC (decide)")
        node = self._nodes.get(name)
        if node is not None and node.is_active:
            node.commit()
        return proto.ok_response(request_id)

    def _op_abort(self, request_id, message) -> Dict[str, Any]:
        name = proto.txn_name(message.get("txn"))
        node = self._nodes.get(name)
        if node is not None and node.is_active:
            node.abort()
        if len(name) == 1:
            self._forget_top(name[0])
        return proto.ok_response(request_id)

    def _op_prepare(self, request_id, message) -> Dict[str, Any]:
        name, node = self._lookup(message)
        if len(name) != 1:
            raise EngineError("prepare takes a top-level name")
        if not node.is_active:
            raise EngineError(
                "cannot prepare %r: tree is %s" % (name, node.status)
            )
        # Presumed abort: make every logged transition of the tree
        # durable, log nothing for the prepare itself.  A crash before
        # the decision leaves an active tree that recovery aborts.
        if self.wal is not None:
            self.wal.flush()
        # The local slot lets the coordinator's decision record name
        # this shard's WAL-visible top for recovery cross-checks.
        return proto.ok_response(request_id, local=node.name[0])

    def _op_decide(self, request_id, message) -> Dict[str, Any]:
        name, node = self._lookup(message)
        if len(name) != 1:
            raise EngineError("decide takes a top-level name")
        node.commit()
        self._forget_top(name[0])
        return proto.ok_response(request_id)

    def _op_value(self, request_id, message) -> Dict[str, Any]:
        object_name = message.get("object")
        if not isinstance(object_name, str):
            raise EngineError("value needs an object name")
        value = self.engine.object_value(
            object_name, committed=bool(message.get("committed", True))
        )
        return proto.ok_response(request_id, value=value)

    def _op_stats(self, request_id, message) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "shard": self.config.shard,
            "engine": dict(self.engine.stats),
        }
        if self.wal is not None:
            payload["wal"] = dict(self.wal.stats)
        return proto.ok_response(request_id, stats=payload)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        if self.wal is not None:
            self.wal.close()


def worker_main(conn, config: WorkerConfig) -> None:
    """Process target: serve framed requests until the pipe closes.

    The coordinator pipe is the worker's lifeline -- EOF (coordinator
    exit or crash) means close the WAL and leave.  SIGKILL of the
    coordinator therefore never strands workers: their blocking
    ``recv_bytes`` raises and they exit through the same path (without
    the WAL close -- which is exactly the crash the per-shard recovery
    path replays).
    """
    try:
        worker = ShardWorker(config)
    except Exception as exc:  # noqa: BLE001 - boot errors go on the wire
        try:
            conn.send_bytes(
                proto.encode_frame(proto.exception_to_error(None, exc))
            )
        except (OSError, ValueError, BrokenPipeError):
            pass
        conn.close()
        return
    try:
        while True:
            try:
                data = conn.recv_bytes()
            except (EOFError, OSError):
                break
            try:
                message = proto.decode_frame(data)
            except proto.ProtocolError as exc:
                conn.send_bytes(
                    proto.encode_frame(
                        proto.error_response(
                            None, proto.ERR_BAD_FRAME, str(exc)
                        )
                    )
                )
                continue
            shutdown = message.get("op") == "shutdown"
            if shutdown:
                response = proto.ok_response(message.get("id"))
            else:
                response = worker.handle(message)
            try:
                conn.send_bytes(proto.encode_frame(response))
            except (OSError, ValueError, BrokenPipeError):
                break
            if shutdown:
                break
    finally:
        worker.close()
        try:
            conn.close()
        except OSError:
            pass
