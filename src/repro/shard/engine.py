"""The sharded engine: coordinator, facade handles, and 2PC.

:class:`ShardedEngine` exposes the :class:`~repro.engine.threadsafe.
ThreadSafeEngine` facade API (``begin_top`` / ``begin_child`` /
``perform`` / ``commit`` / ``abort`` / ``abort_top`` / ``attach_wal``
/ ``attach_auditor`` / ``object_value``), but every object lives in
exactly one worker *process*; the coordinator:

* routes each access by ``ObjectStore.shard_of`` (CRC32 by default,
  placement- or custom-sharding aware);
* mirrors the nested tree name onto participant shards lazily -- a
  ``begin`` on first touch, intermediate children on demand inside the
  worker (ancestry is carried by the global name tuple, so each
  shard's lock automata see the same ancestor relation the paper's
  footnote 9 relies on);
* resolves cross-shard conflicts with wound-wait over *global* top
  ordinals (workers return blockers translated to global top names;
  older trees win, younger are wounded) -- worker engines stay
  non-blocking and never deadlock;
* commits top-level trees with presumed-abort two-phase commit:
  ``prepare`` (force each participant WAL durable), a coordinator
  decision record, then ``decide`` (participants log COMMIT and
  flush).  Single-shard trees skip all of that for a one-phase fast
  path -- one round trip whose worker-side flush is the durability
  point.  A commit is acknowledged to the caller only after every
  participant acknowledged phase 2, so an acked commit is durable in
  every per-shard WAL.

Observer/auditor events are emitted coordinator-side: lifecycle events
under the coordinator mutex, access events on each link's receiver
thread in the shard's actual execution order -- the merged stream an
attached :class:`~repro.audit.OnlineAuditor` consumes.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.core.object_spec import ObjectSpec, Operation
from repro.engine.transaction import TransactionStatus
from repro.errors import (
    EngineError,
    InvalidTransactionState,
    LockDenied,
    RetryLater,
    TransactionAborted,
)
from repro.kernel.registry import get_scheme
from repro.kernel.store import ObjectStore, default_sharding
from repro.serve import protocol as proto
from repro.shard.link import ShardDown, ShardLink
from repro.shard.recovery import DecisionLog
from repro.shard.worker import WorkerConfig, worker_main

#: Default coordinator-side pause between denial retries (seconds).
DEFAULT_RETRY_S = 0.0005
#: Ceiling on any single denial backoff sleep.
_MAX_PAUSE_S = 0.05


def placement_sharding(
    placement: Dict[str, int]
) -> Callable[[str, int], int]:
    """A sharding callable honouring per-object *placement* affinities.

    Objects named in *placement* go to ``affinity % shards`` (modulo
    keeps a spec written for many shards valid on fewer); everything
    else falls back to CRC32 :func:`default_sharding`.
    """

    def sharding(name: str, shards: int) -> int:
        affinity = placement.get(name)
        if affinity is None:
            return default_sharding(name, shards)
        return affinity % shards

    return sharding


class _Node:
    """Coordinator-side state of one transaction in a tree."""

    __slots__ = ("name", "parent", "status", "children", "next_child")

    def __init__(self, name: Tuple[int, ...], parent: Optional["_Node"]):
        self.name = name
        self.parent = parent
        self.status = TransactionStatus.ACTIVE
        self.children: List[_Node] = []
        self.next_child = 0


class _Top:
    """One top-level tree: its root node plus 2PC bookkeeping."""

    __slots__ = ("ordinal", "root", "participants", "joined", "cause")

    def __init__(self, ordinal: int):
        self.ordinal = ordinal
        self.root = _Node((ordinal,), None)
        #: shards this tree has touched (the 2PC participant set)
        self.participants: set = set()
        #: shard -> in-flight begin waiter, or True once mirrored
        self.joined: Dict[int, Any] = {}
        #: abort cause, for error messages after the tree died
        self.cause: Optional[str] = None

    @property
    def name(self) -> Tuple[int, ...]:
        return self.root.name


class ShardedTransaction:
    """Facade handle onto one coordinator-side transaction node.

    Same surface as ``ThreadSafeTransaction``: ``name`` / ``status`` /
    ``is_active`` / ``begin_child`` / ``perform`` / ``commit`` /
    ``abort`` plus context-manager commit-or-abort.
    """

    __slots__ = ("_engine", "_node", "_top", "value")

    def __init__(self, engine: "ShardedEngine", node: _Node, top: _Top):
        self._engine = engine
        self._node = node
        self._top = top
        self.value: Any = None

    @property
    def name(self) -> Tuple[int, ...]:
        return self._node.name

    @property
    def status(self) -> TransactionStatus:
        return self._node.status

    @property
    def is_active(self) -> bool:
        return self._node.status is TransactionStatus.ACTIVE

    def begin_child(self) -> "ShardedTransaction":
        return self._engine._begin_child(self)

    def perform(
        self,
        object_name: str,
        operation: Operation,
        timeout: Optional[float] = None,
    ) -> Any:
        return self._engine._perform(self, object_name, operation, timeout)

    def commit(self, value: Any = None) -> "ShardedTransaction":
        self._engine._commit(self, value)
        self.value = value
        return self

    def abort(self) -> "ShardedTransaction":
        self._engine._abort_node(self._node, self._top, cause="explicit")
        return self

    def __enter__(self) -> "ShardedTransaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is None:
            if self.is_active:
                self.commit()
        elif self.is_active:
            self.abort()
        return False


class _EngineView:
    """What the serve server reads off ``facade.engine``."""

    __slots__ = ("_engine",)

    def __init__(self, engine: "ShardedEngine"):
        self._engine = engine

    @property
    def specs(self) -> Dict[str, ObjectSpec]:
        return self._engine.store.specs

    @property
    def stats(self) -> Dict[str, int]:
        return self._engine.stats


class ShardedWal:
    """Handle returned by :meth:`ShardedEngine.attach_wal`.

    The actual logs live in the workers (one segment directory per
    shard, ``shard-NN/``) plus the coordinator decision log
    (``coord/``); this handle aggregates their counters and exposes
    the ``close``/``stats`` surface callers expect from a WAL.
    """

    def __init__(self, engine: "ShardedEngine", directory: str):
        self.engine = engine
        self.directory = directory

    @property
    def stats(self) -> Dict[str, int]:
        totals = {
            "appends": 0,
            "bytes": 0,
            "flushes": 0,
            "fsyncs": 0,
            "segment_rolls": 0,
        }
        try:
            for shard_stats in self.engine.shard_stats():
                for key, value in shard_stats.get("wal", {}).items():
                    totals[key] = totals.get(key, 0) + value
        except EngineError:
            pass
        return totals

    def close(self) -> None:
        """Worker logs close with their processes; nothing to do here."""


class ShardedEngine:
    """N worker processes, one coordinator, the facade API on top."""

    def __init__(
        self,
        specs: Iterable[ObjectSpec],
        policy: str = "moss-rw",
        workers: Optional[int] = None,
        observer=None,
        sharding: Optional[Callable[[str, int], int]] = None,
        placement: Optional[Dict[str, int]] = None,
        retry_s: float = DEFAULT_RETRY_S,
    ):
        if sharding is not None and placement is not None:
            raise EngineError("pass sharding or placement, not both")
        if placement:
            sharding = placement_sharding(dict(placement))
        self._custom_sharding = sharding is not None
        if workers is None:
            workers = max(1, min(4, os.cpu_count() or 1))
        specs = list(specs)
        self.store = ObjectStore(
            specs,
            lambda spec: spec,
            shards=workers,
            sharding=sharding,
        )
        self.scheme = get_scheme(policy)
        self.obs = observer
        if observer is not None:
            from repro.engine.threadsafe import _LockedObserver

            self.obs = _LockedObserver(observer)
        self._specs = specs
        self._retry_s = retry_s
        self._mutex = threading.RLock()
        self._tops: Dict[int, _Top] = {}
        self._next_top = 0
        self._links: List[ShardLink] = []
        self._procs: List[Any] = []
        self._started = False
        self._closed = False
        self._wal_dir: Optional[str] = None
        self._segment_bytes: Optional[int] = None
        self._wal_group_ms: Optional[float] = None
        self._wal_handle: Optional[ShardedWal] = None
        self._decisions: Optional[DecisionLog] = None
        self.auditor = None
        self.stats = {
            "accesses": 0,
            "denials": 0,
            "commits": 0,
            "aborts": 0,
            "deadlocks": 0,
        }
        #: What the serve server dereferences as ``facade.engine``.
        self.engine = _EngineView(self)

    # ------------------------------------------------------------------
    # Introspection / facade parity
    # ------------------------------------------------------------------
    @property
    def capabilities(self):
        return self.scheme.capabilities

    @property
    def shards(self) -> int:
        """Effective worker count (clamped by the object count)."""
        return self.store.shards

    @property
    def specs(self) -> Dict[str, ObjectSpec]:
        return self.store.specs

    @property
    def worker_pids(self) -> List[int]:
        return [proc.pid for proc in self._procs]

    # ------------------------------------------------------------------
    # Seams (mirror the facade's)
    # ------------------------------------------------------------------
    def attach_wal(
        self,
        wal=None,
        sink=None,
        segment_bytes: Optional[int] = None,
        wal_dir: Optional[str] = None,
        group_ms: Optional[float] = None,
    ) -> ShardedWal:
        """Configure per-shard WALs; must run before workers start.

        The facade signature is honoured but a sharded engine cannot
        adopt an in-process ``wal``/``sink`` -- logs are written by the
        workers.  Pass *wal_dir*; each worker logs to
        ``wal_dir/shard-NN`` and cross-shard decisions go to
        ``wal_dir/coord``.
        """
        if not self.scheme.capabilities.durable:
            raise EngineError(
                "scheme %r is not durable "
                "(capabilities.durable is False)" % self.scheme.name
            )
        if wal is not None or sink is not None:
            raise EngineError(
                "sharded engine logs per shard: pass wal_dir, "
                "not an in-process wal/sink"
            )
        if wal_dir is None:
            raise EngineError("attach_wal needs wal_dir")
        if self._started:
            raise EngineError(
                "attach_wal must run before the workers start"
            )
        self._wal_dir = wal_dir
        self._segment_bytes = segment_bytes
        self._wal_group_ms = group_ms
        self._wal_handle = ShardedWal(self, wal_dir)
        return self._wal_handle

    def attach_auditor(self, auditor=None, config=None):
        """Attach an online serializability auditor; returns it.

        The auditor consumes the coordinator's merged observer stream:
        per-object access order is each shard's true execution order
        (events are emitted on the link receiver threads), lifecycle
        events are globally ordered under the coordinator mutex.
        """
        from repro.audit import AuditConfig, OnlineAuditor

        if auditor is None:
            if config is None:
                config = AuditConfig.for_capabilities(self.capabilities)
            auditor = OnlineAuditor(config)
        obs = self.obs
        if obs is None:
            from repro.engine.threadsafe import _LockedObserver
            from repro.obs import AuditObserver

            obs = _LockedObserver(AuditObserver())
            self.obs = obs
        obs.attach_auditor(auditor)
        self.auditor = auditor
        return auditor

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ShardedEngine":
        """Spawn one worker per shard and shake hands; idempotent."""
        if self._started:
            return self
        if self._closed:
            raise EngineError("sharded engine is closed")
        ctx = multiprocessing.get_context("spawn")
        shard_specs: List[List[ObjectSpec]] = [
            [] for _ in range(self.store.shards)
        ]
        for spec in self._specs:
            shard_specs[self.store.shard_of(spec.name)].append(spec)
        if self._wal_dir is not None:
            os.makedirs(self._wal_dir, exist_ok=True)
            self._decisions = DecisionLog(
                self._wal_dir, window_ms=self._wal_group_ms
            )
        for shard in range(self.store.shards):
            config = WorkerConfig(
                shard=shard,
                shards=self.store.shards,
                scheme=self.scheme.name,
                specs=shard_specs[shard],
                wal_dir=(
                    os.path.join(self._wal_dir, "shard-%02d" % shard)
                    if self._wal_dir is not None
                    else None
                ),
                segment_bytes=self._segment_bytes,
                wal_group_ms=self._wal_group_ms,
                check_sharding=not self._custom_sharding,
            )
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            proc = ctx.Process(
                target=worker_main,
                args=(child_conn, config),
                name="repro-shard-%d" % shard,
                daemon=True,
            )
            proc.start()
            child_conn.close()
            self._links.append(ShardLink(shard, parent_conn))
            self._procs.append(proc)
        self._started = True
        try:
            for link in self._links:
                reply = link.call(
                    "hello", timeout=30.0, version=proto.PROTOCOL_VERSION
                )
                if not reply.get("ok"):
                    error = reply.get("error") or {}
                    raise EngineError(
                        "shard %d refused hello: %s"
                        % (link.shard, error.get("message"))
                    )
        except EngineError:
            self.close()
            raise
        return self

    def close(self) -> None:
        """Shut workers down and reap them; idempotent."""
        if self._closed:
            return
        self._closed = True
        for link in self._links:
            if link.alive:
                try:
                    link.call("shutdown", timeout=2.0)
                except EngineError:
                    pass
            link.close()
        for proc in self._procs:
            proc.join(timeout=3.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
        if self._decisions is not None:
            self._decisions.close()

    def __enter__(self) -> "ShardedEngine":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def _link(self, shard: int) -> ShardLink:
        if not self._started:
            self.start()
        return self._links[shard]

    # ------------------------------------------------------------------
    # Facade API
    # ------------------------------------------------------------------
    def begin_top(self) -> ShardedTransaction:
        if self._closed:
            raise EngineError("sharded engine is closed")
        if not self._started:
            self.start()
        with self._mutex:
            ordinal = self._next_top
            self._next_top += 1
            top = _Top(ordinal)
            self._tops[ordinal] = top
        obs = self.obs
        if obs is not None:
            obs.txn_begin(top.name)
        return ShardedTransaction(self, top.root, top)

    def abort_top(self, name, cause: Optional[str] = None) -> bool:
        """Abort the tree containing *name*; idempotent, any thread."""
        top_name = tuple(name)[:1]
        with self._mutex:
            top = self._tops.get(top_name[0])
            if top is None or top.root.status is not TransactionStatus.ACTIVE:
                return False
        self._abort_node(top.root, top, cause=cause or "explicit")
        return True

    def object_value(self, object_name: str, committed: bool = True) -> Any:
        shard = self.store.shard_of(object_name)
        reply = self._link(shard).call(
            "value", object=object_name, committed=committed
        )
        if not reply.get("ok"):
            error = reply.get("error") or {}
            raise EngineError(str(error.get("message")))
        return reply.get("value")

    def shard_stats(self) -> List[Dict[str, Any]]:
        """Per-worker engine/WAL counters (one RPC per shard)."""
        if not self._started:
            return []
        waiters = [
            (link, link.send("stats"))
            for link in self._links
            if link.alive
        ]
        results = []
        for link, waiter in waiters:
            reply = link.wait(waiter, timeout=10.0)
            if reply.get("ok"):
                results.append(reply.get("stats") or {})
        return results

    # ------------------------------------------------------------------
    # Tree transitions (called through the handles)
    # ------------------------------------------------------------------
    def _begin_child(self, handle: ShardedTransaction) -> ShardedTransaction:
        with self._mutex:
            self._check_node(handle._node, handle._top)
            parent = handle._node
            name = parent.name + (parent.next_child,)
            parent.next_child += 1
            node = _Node(name, parent)
            parent.children.append(node)
        obs = self.obs
        if obs is not None:
            obs.txn_begin(name)
        return ShardedTransaction(self, node, handle._top)

    def _check_node(self, node: _Node, top: _Top) -> None:
        status = node.status
        if status is TransactionStatus.ACTIVE:
            return
        if status is TransactionStatus.ABORTED:
            raise TransactionAborted(
                node.name, top.cause or "transaction aborted"
            )
        raise InvalidTransactionState(
            "%r is %s" % (node.name, status.name.lower())
        )

    def _join_shard(self, top: _Top, shard: int, link: ShardLink) -> None:
        """Mirror *top* onto *shard* exactly once (begin on first touch).

        The winner sends ``begin`` under the mutex so it enters the
        link FIFO before any loser's ``perform``; everyone waits on
        the same waiter, so no access runs before the mirror exists.
        The global ordinal doubles as the tree's cross-shard timestamp
        (MVTO workers order by it, keeping one serialization order
        across shards) and as its wound-wait age.
        """
        with self._mutex:
            state = top.joined.get(shard)
            if state is None:
                # Re-check under the mutex: ``_abort_node`` snapshots
                # its participant set under this same mutex, so a join
                # that loses the race must not begin a mirror the
                # abort broadcast will never reach.
                self._check_node(top.root, top)
                state = link.send(
                    "begin",
                    txn=[top.ordinal],
                    ts=top.ordinal + 1,
                    at=float(top.ordinal),
                )
                top.joined[shard] = state
                top.participants.add(shard)
        if state is True:
            return
        reply = link.wait(state)
        if reply.get("ok"):
            with self._mutex:
                top.joined[shard] = True
            return
        error = reply.get("error") or {}
        raise EngineError(
            "shard %d refused begin: %s" % (shard, error.get("message"))
        )

    def _perform(
        self,
        handle: ShardedTransaction,
        object_name: str,
        operation: Operation,
        timeout: Optional[float],
    ) -> Any:
        node, top = handle._node, handle._top
        shard = self.store.shard_of(object_name)
        link = self._link(shard)
        deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        args = list(operation.args) if operation.args else None
        stats = self.stats
        while True:
            with self._mutex:
                self._check_node(node, top)
            self._join_shard(top, shard, link)
            obs = self.obs
            on_ok = None
            if obs is not None:
                on_ok = self._access_hook(
                    obs, node.name, object_name, operation
                )
            reply = link.wait(
                link.send(
                    "perform",
                    on_ok=on_ok,
                    txn=list(node.name),
                    object=object_name,
                    kind=operation.kind,
                    args=args,
                    read=True if operation.is_read else None,
                )
            )
            if reply.get("ok"):
                stats["accesses"] += 1
                return reply.get("value")
            error = reply.get("error") or {}
            code = error.get("code")
            if code in (proto.ERR_LOCK_DENIED, proto.ERR_RETRY_LATER):
                stats["denials"] += 1
                blockers = [
                    tuple(blocker)
                    for blocker in error.get("blockers") or ()
                ]
                self._wound_younger(top, blockers)
                now = time.monotonic()
                if deadline is not None and now >= deadline:
                    raise self._denial(code, error, blockers)
                hint = error.get("retry_after_ms")
                pause = (
                    hint / 1000.0 if hint else self._retry_s
                )
                if deadline is not None:
                    pause = min(pause, max(0.0, deadline - now))
                time.sleep(min(pause, _MAX_PAUSE_S))
                continue
            self._raise_error(error, node, top)

    @staticmethod
    def _access_hook(obs, txn_name, object_name, operation):
        kind = operation.kind
        is_read = operation.is_read

        def hook(message, _obs=obs):
            _obs.access(txn_name, object_name, kind, is_read)

        return hook

    def _denial(self, code, error, blockers):
        message = str(error.get("message", "lock denied"))
        if code == proto.ERR_RETRY_LATER:
            return RetryLater(
                message,
                blockers=blockers,
                retry_after_ms=error.get("retry_after_ms"),
            )
        return LockDenied(message, blockers=blockers)

    def _raise_error(self, error: Dict[str, Any], node: _Node, top: _Top):
        code = error.get("code")
        message = str(error.get("message", ""))
        if code == proto.ERR_TXN_ABORTED:
            # The worker killed its local tree (MVTO timestamp
            # conflict, orphaned mirror, ...); propagate the abort to
            # every other participant and the coordinator state.
            self._abort_node(
                top.root, top, cause=message or "aborted by shard"
            )
            raise TransactionAborted(node.name, message)
        if code == proto.ERR_INVALID_STATE:
            raise InvalidTransactionState(message)
        raise EngineError(message or "shard error %r" % (code,))

    def _wound_younger(
        self, top: _Top, blockers: List[Tuple[int, ...]]
    ) -> None:
        """Wound-wait across shards: older trees win, younger die."""
        for blocker in blockers:
            if not blocker or blocker[0] <= top.ordinal:
                continue
            with self._mutex:
                victim = self._tops.get(blocker[0])
                if (
                    victim is None
                    or victim.root.status is not TransactionStatus.ACTIVE
                ):
                    continue
            obs = self.obs
            if obs is not None:
                obs.wound(victim.name, top.name)
            self.stats["deadlocks"] += 1
            self._abort_node(victim.root, victim, cause="wound-wait")

    # ------------------------------------------------------------------
    # Commit / abort
    # ------------------------------------------------------------------
    def _commit(self, handle: ShardedTransaction, value: Any) -> None:
        node, top = handle._node, handle._top
        if node.parent is None:
            self._commit_top(handle, value)
            return
        with self._mutex:
            self._check_node(node, top)
            if any(
                child.status is TransactionStatus.ACTIVE
                for child in node.children
            ):
                raise InvalidTransactionState(
                    "%r cannot commit with live children" % (node.name,)
                )
            node.status = TransactionStatus.COMMITTED  # repro-lint: ignore[CD003]
            participants = sorted(top.participants)
        # Broadcast the subcommit so each shard moves the mirror's
        # locks up to its local parent; shards that never mirrored
        # this child answer ok as a no-op.
        link_waiters = [
            (self._links[shard], None) for shard in participants
        ]
        for index, (link, _) in enumerate(link_waiters):
            link_waiters[index] = (
                link,
                link.send("commit", txn=list(node.name)),
            )
        failure = None
        for link, waiter in link_waiters:
            try:
                reply = link.wait(waiter)
            except ShardDown as exc:
                failure = {"code": proto.ERR_INTERNAL, "message": str(exc)}
                continue
            if not reply.get("ok"):
                failure = reply.get("error") or {}
        if failure is not None:
            self._raise_error(failure, node, top)
        self.stats["commits"] += 1
        obs = self.obs
        if obs is not None:
            obs.txn_commit(node.name)

    def _commit_top(self, handle: ShardedTransaction, value: Any) -> None:
        node, top = handle._node, handle._top
        with self._mutex:
            self._check_node(node, top)
            if any(
                child.status is TransactionStatus.ACTIVE
                for child in node.children
            ):
                raise InvalidTransactionState(
                    "%r cannot commit with live children" % (node.name,)
                )
            participants = sorted(top.participants)
        if not participants:
            self._finalize_commit(top)
            return
        if len(participants) == 1:
            # One-phase fast path: the only participant's commit+flush
            # IS the durability point; no prepare, no decision record.
            link = self._links[participants[0]]
            try:
                reply = link.call("decide", txn=[top.ordinal])
            except ShardDown as exc:
                self._raise_error(
                    {"code": proto.ERR_INTERNAL, "message": str(exc)},
                    node,
                    top,
                )
            if not reply.get("ok"):
                self._raise_error(reply.get("error") or {}, node, top)
            self._finalize_commit(top)
            return
        self._two_phase_commit(node, top, participants)
        self._finalize_commit(top)

    def _two_phase_commit(
        self, node: _Node, top: _Top, participants: List[int]
    ) -> None:
        # Phase 1 (presumed abort): every participant forces its WAL;
        # nothing is logged for the prepare itself, so a crash before
        # the decision record replays to an active tree that recovery
        # presumed-aborts.
        waiters = [
            (shard, self._links[shard].send("prepare", txn=[top.ordinal]))
            for shard in participants
        ]
        locals_map: Dict[str, int] = {}
        failure = None
        for shard, waiter in waiters:
            try:
                reply = self._links[shard].wait(waiter)
            except ShardDown as exc:
                failure = {
                    "code": proto.ERR_INTERNAL,
                    "message": str(exc),
                }
                continue
            if reply.get("ok"):
                local = reply.get("local")
                if local is not None:
                    locals_map[str(shard)] = local
            else:
                failure = reply.get("error") or {}
        if failure is not None:
            self._abort_node(
                top.root,
                top,
                cause="prepare failed: %s" % failure.get("message"),
            )
            raise TransactionAborted(
                node.name,
                "2pc prepare failed: %s" % failure.get("message"),
            )
        # Claim the decision: a wound-wait abort racing this commit
        # marks the root under the mutex before broadcasting worker
        # aborts, so checking-and-marking here is atomic against it.
        # If the wound got in first, its aborts will reach (or have
        # reached) every mirror -- nothing was decided, presumed abort
        # holds.  If we get in first, the wound sees a finished tree
        # and stands down, so phase 2 runs against live mirrors.
        with self._mutex:
            if top.root.status is not TransactionStatus.ACTIVE:
                raise TransactionAborted(
                    node.name,
                    "wounded during 2pc prepare (%s)"
                    % (top.cause or "aborted"),
                )
            top.root.status = (  # repro-lint: ignore[CD003]
                TransactionStatus.COMMITTED
            )
        # Decision record: once durable, the commit survives any crash
        # (recover_sharded resolves prepared-but-undecided shards).
        if self._decisions is not None:
            self._decisions.log(top.ordinal, participants, locals_map)
        # Phase 2: every participant logs COMMIT and flushes.  The
        # caller is acked only after all of them answered, so an acked
        # commit is durable on every shard it touched.
        waiters = [
            (shard, self._links[shard].send("decide", txn=[top.ordinal]))
            for shard in participants
        ]
        stragglers = []
        for shard, waiter in waiters:
            try:
                reply = self._links[shard].wait(waiter)
            except ShardDown:
                stragglers.append(shard)
                continue
            if not reply.get("ok"):
                stragglers.append(shard)
        if stragglers:
            # The decision stands (and is durable); the caller just
            # cannot be told "durable everywhere", so the commit is
            # NOT acknowledged as such.
            raise EngineError(
                "commit %d decided but shards %s did not acknowledge"
                % (top.ordinal, stragglers)
            )

    def _finalize_commit(self, top: _Top) -> None:
        with self._mutex:
            top.root.status = TransactionStatus.COMMITTED  # repro-lint: ignore[CD003]
            self._tops.pop(top.ordinal, None)
        self.stats["commits"] += 1
        obs = self.obs
        if obs is not None:
            obs.txn_commit(top.name)

    def _abort_node(
        self, node: _Node, top: _Top, cause: str = "explicit"
    ) -> None:
        """Abort *node*'s subtree locally and on every participant."""
        with self._mutex:
            if node.status is not TransactionStatus.ACTIVE:
                return
            aborted: List[Tuple[int, ...]] = []
            self._mark_aborted(node, aborted)
            if node.parent is None:
                top.cause = cause
                self._tops.pop(top.ordinal, None)
            participants = sorted(top.participants)
        obs = self.obs
        if obs is not None:
            if cause not in ("explicit", "ancestor-abort"):
                obs.mark_abort_cause(top.name, cause)
            for index, name in enumerate(aborted):
                obs.txn_abort(
                    name, cause=cause if index == 0 else "ancestor-abort"
                )
        self.stats["aborts"] += 1
        waiters = []
        for shard in participants:
            link = self._links[shard]
            if not link.alive:
                continue
            try:
                waiters.append((link, link.send("abort", txn=list(node.name))))
            except ShardDown:
                continue
        for link, waiter in waiters:
            try:
                link.wait(waiter)
            except ShardDown:
                # A dead worker's locks died with it; nothing to undo.
                continue

    def _mark_aborted(
        self, node: _Node, out: List[Tuple[int, ...]]
    ) -> None:
        # The coordinator's _Node mirrors are bookkeeping, not engine
        # transactions -- the authoritative transition runs in the
        # shard worker's Engine.
        node.status = TransactionStatus.ABORTED  # repro-lint: ignore[CD003]
        out.append(node.name)
        for child in node.children:
            if child.status is TransactionStatus.ACTIVE:
                self._mark_aborted(child, out)
