"""Multiprocess sharded engine: real parallelism behind the facade API.

Everything else in the repo executes behind one GIL; this package
promotes the CRC32-sharded :class:`~repro.kernel.store.ObjectStore`
and the :mod:`repro.dist` two-phase-commit *model* to reality.  One
worker process per shard runs the proven single-threaded engine over
its slice of the object store; a coordinator in the client process
routes accesses by ``ObjectStore.shard_of``, lazily mirrors nested
tree names onto participant shards, and runs presumed-abort two-phase
commit at top-level commit (single-shard trees take a one-phase fast
path).  Workers speak the version-pinned framed-JSON protocol of
:mod:`repro.serve.protocol` over spawn-safe pipes.

Per the paper's footnote 9, distribution is orthogonal to locking
correctness: each object's lock automaton only consults tree *names*
(ancestry), which the mirrored name tuples carry shard-locally.  See
``docs/SHARDING.md`` for the architecture and failure matrix.
"""

from repro.shard.engine import ShardedEngine, ShardedTransaction
from repro.shard.link import ShardDown
from repro.shard.recovery import (
    ShardedRecovery,
    read_decisions,
    recover_sharded,
)
from repro.shard.worker import WorkerConfig, worker_main

__all__ = [
    "ShardedEngine",
    "ShardedTransaction",
    "ShardDown",
    "ShardedRecovery",
    "WorkerConfig",
    "read_decisions",
    "recover_sharded",
    "worker_main",
]
