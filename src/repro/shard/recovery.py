"""Sharded durability: the decision log and cross-shard recovery.

A sharded run leaves this layout under its ``wal_dir``::

    wal_dir/
      shard-00/ wal-00000000.seg ...   per-worker engine WALs
      shard-01/ ...
      coord/    wal-00000000.seg ...   coordinator decision records

Each worker logs exactly what a single-process engine logs, in its own
*local* numbering, so ``repro.wal.recovery.recover`` replays each
shard directory unchanged.  Presumed abort does the rest: a tree that
crashed before its COMMIT record replays to an active tree and is
aborted by recovery -- which is the correct outcome for every
unprepared or undecided cross-shard tree, because the coordinator acks
a commit only after *every* participant logged COMMIT durably.

The decision log adds the one piece the per-shard logs cannot carry:
for each cross-shard commit, a framed-JSON record (the serve protocol
framing, so it is CRC-checked and torn-tail tolerant) written *between*
phase 1 and phase 2, naming the global ordinal, the participant
shards, and each participant's local top slot.  Recovery uses it to
flag decided-but-unapplied shards (prepared, decision durable, crash
before the shard's COMMIT record): those trees were never acked, but
the decision shows how to roll them forward.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import EngineError
from repro.serve import protocol as proto

#: Subdirectory of the sharded ``wal_dir`` holding decision records.
COORD_DIRNAME = "coord"
#: Per-shard WAL directories: ``shard-00``, ``shard-01``, ...
SHARD_DIR_PREFIX = "shard-"


class DecisionLog:
    """Append-only, fsync-per-decision log of 2PC commit decisions.

    Thread-safe: any number of committing client threads may log
    concurrently.  With a group-commit window the underlying sink
    coalesces their fsyncs (``flush_begin``/``flush_wait`` run outside
    the append lock), which is the decision log's natural regime --
    it only sees cross-shard commits, which arrive from many sessions.
    """

    def __init__(self, wal_dir: str, window_ms: Optional[float] = None):
        from repro.wal.log import FileWalSink, GroupCommitSink

        self.directory = os.path.join(wal_dir, COORD_DIRNAME)
        if window_ms is not None:
            self._sink = GroupCommitSink(
                self.directory, window_ms=window_ms
            )
        else:
            self._sink = FileWalSink(self.directory)
        self._lock = threading.Lock()
        self._count = 0

    @property
    def decisions(self) -> int:
        return self._count

    def log(
        self,
        ordinal: int,
        participants: List[int],
        locals_map: Optional[Dict[str, int]] = None,
    ) -> None:
        """Durably record "commit" for global top *ordinal*.

        Returns only once the record is on disk -- this is the 2PC
        commit point between prepare and decide.
        """
        frame = proto.encode_frame(
            {
                "decision": "commit",
                "txn": [int(ordinal)],
                "participants": [int(shard) for shard in participants],
                "local": locals_map or {},
            }
        )
        with self._lock:
            self._sink.append(frame)
            self._count += 1
        flush_begin = getattr(self._sink, "flush_begin", None)
        if flush_begin is not None:
            # Group sink: wait outside the lock so concurrent
            # committers share one fsync.
            self._sink.flush_wait(flush_begin())
        else:
            with self._lock:
                self._sink.flush()

    def close(self) -> None:
        with self._lock:
            self._sink.close()


def read_decisions(wal_dir: str) -> List[Dict[str, Any]]:
    """Replay the decision log; torn or corrupt tails stop the scan.

    Returns the decoded decision records in log order.  A missing
    ``coord`` directory (no cross-shard commit ever decided) is an
    empty list, not an error -- presumed abort covers everything.
    """
    directory = os.path.join(wal_dir, COORD_DIRNAME)
    if not os.path.isdir(directory):
        return []
    parts = []
    for name in sorted(os.listdir(directory)):
        if name.startswith("wal-") and name.endswith(".seg"):
            with open(os.path.join(directory, name), "rb") as handle:
                parts.append(handle.read())
    data = b"".join(parts)
    decoder = proto.FrameDecoder()
    decisions: List[Dict[str, Any]] = []
    # Feed in chunks so a corrupt record surrenders only the tail: the
    # frames before it decode normally (a merely *torn* tail is
    # buffered by the decoder and ignored, like a torn WAL record).
    for offset in range(0, len(data), 4096):
        try:
            decisions.extend(decoder.feed(data[offset : offset + 4096]))
        except proto.ProtocolError:
            break
    return decisions


@dataclass
class ShardedRecovery:
    """Everything recovery learned from a sharded ``wal_dir``."""

    wal_dir: str
    #: shard index -> :class:`repro.wal.recovery.RecoveredState`
    shards: Dict[int, Any] = field(default_factory=dict)
    decisions: List[Dict[str, Any]] = field(default_factory=list)
    #: shard index -> error string, for unrecoverable shard logs
    shard_errors: Dict[int, str] = field(default_factory=dict)
    #: ``(global_ordinal, shard, local_slot)`` of decided commits the
    #: shard's log does not show committed (prepared, decision logged,
    #: crash before the COMMIT record).  Never acked to a client; the
    #: decision record says they roll forward, not back.
    in_doubt: List[Tuple[int, int, int]] = field(default_factory=list)

    @property
    def verdict(self) -> str:
        """``"complete"`` iff every shard log replayed completely."""
        if self.shard_errors or not self.shards:
            return "partial"
        return (
            "complete"
            if all(
                state.report.verdict == "complete"
                for state in self.shards.values()
            )
            else "partial"
        )

    def committed(self) -> Dict[str, Any]:
        """Committed object values merged across shards (disjoint)."""
        merged: Dict[str, Any] = {}
        for state in self.shards.values():
            merged.update(state.report.committed)
        return merged

    def render(self) -> str:
        lines = [
            "sharded recovery: %s (%d shards, %d decisions)"
            % (self.verdict, len(self.shards), len(self.decisions))
        ]
        for shard in sorted(self.shards):
            report = self.shards[shard].report
            lines.append(
                "  shard %d: %s, records=%d/%d, presumed-abort=%d"
                % (
                    shard,
                    report.verdict,
                    report.records_applied,
                    report.records_scanned,
                    len(report.presumed_aborted),
                )
            )
        for shard in sorted(self.shard_errors):
            lines.append(
                "  shard %d: unrecoverable (%s)"
                % (shard, self.shard_errors[shard])
            )
        for ordinal, shard, slot in self.in_doubt:
            lines.append(
                "  in-doubt: top %d decided commit, shard %d local "
                "T%d not committed -> roll forward" % (ordinal, shard, slot)
            )
        for object_name, value in sorted(self.committed().items()):
            lines.append("  committed %s = %r" % (object_name, value))
        return "\n".join(lines)


def recover_sharded(
    wal_dir: str, presume_abort: bool = True
) -> ShardedRecovery:
    """Recover every shard log under *wal_dir* plus the decision log.

    Each ``shard-NN`` directory replays independently through
    :func:`repro.wal.recovery.recover` (same presumed-abort semantics
    as a single-process log); the decision log then cross-checks that
    every decided cross-shard commit reached every participant --
    shards where it did not are reported ``in_doubt`` with a
    roll-forward resolution.
    """
    from repro.wal.recovery import recover

    if not os.path.isdir(wal_dir):
        raise EngineError("no such wal directory: %r" % wal_dir)
    result = ShardedRecovery(wal_dir=wal_dir)
    for name in sorted(os.listdir(wal_dir)):
        path = os.path.join(wal_dir, name)
        if not name.startswith(SHARD_DIR_PREFIX) or not os.path.isdir(path):
            continue
        try:
            shard = int(name[len(SHARD_DIR_PREFIX) :])
        except ValueError:
            continue
        try:
            result.shards[shard] = recover(
                path, presume_abort=presume_abort
            )
        except Exception as exc:  # noqa: BLE001 - reported, not fatal
            result.shard_errors[shard] = str(exc)
    if not result.shards and not result.shard_errors:
        raise EngineError(
            "no %s* directories under %r" % (SHARD_DIR_PREFIX, wal_dir)
        )
    result.decisions = read_decisions(wal_dir)
    for decision in result.decisions:
        if decision.get("decision") != "commit":
            continue
        txn = decision.get("txn") or [None]
        locals_map = decision.get("local") or {}
        for shard_key, slot in locals_map.items():
            try:
                shard = int(shard_key)
                local = (int(slot),)
            except (TypeError, ValueError):
                continue
            state = result.shards.get(shard)
            if state is None:
                continue
            if local in state.report.presumed_aborted:
                result.in_doubt.append((txn[0], shard, local[0]))
    return result
