"""repro.audit -- the online serializability auditor.

A production-shaped safety net for schedules the test suite never saw:
an :class:`OnlineAuditor` attaches to the :mod:`repro.obs` observer of
any engine, facade, or runner and incrementally maintains the direct
serialization graph over committed top-level transactions (WR, WW, and
RW dependencies per object).  A cycle is flagged immediately with a
**minimal witness** -- the transactions and the object accesses forcing
each edge -- rendered through :mod:`repro.analysis.reporters` as
``SER001`` findings.

Quick use::

    from repro.audit import attach_auditor

    auditor = attach_auditor(engine)      # trust dial from capabilities
    ...drive transactions...
    report = auditor.report()             # verdict + witnesses + stats

Memory stays bounded (vertices are garbage-collected once no live
transaction can precede them), sampling audits every Nth top-level
tree, and a lossy event source (ring-buffer tracing with drops)
downgrades the verdict to *inconclusive* (``SER002``) instead of
reporting a hollow clean audit.  Offline, the same core replays
recorded JSONL traces (``python -m repro audit``) and model-alphabet
engine traces.  See ``docs/ANALYSIS.md`` for the algorithm, the
sampling semantics, and the witness format.
"""

from repro.audit.auditor import (
    SER001,
    SER002,
    AuditConfig,
    AuditReport,
    OnlineAuditor,
    Violation,
    attach_auditor,
)
from repro.audit.graph import (
    SerializationGraph,
    WitnessEdge,
    edge_kind,
)
from repro.audit.stream import (
    audit_engine,
    audit_jsonl,
    audit_jsonl_file,
    audit_schedule,
)

__all__ = [
    "AuditConfig",
    "AuditReport",
    "OnlineAuditor",
    "SER001",
    "SER002",
    "SerializationGraph",
    "Violation",
    "WitnessEdge",
    "attach_auditor",
    "audit_engine",
    "audit_jsonl",
    "audit_jsonl_file",
    "audit_schedule",
    "edge_kind",
]
