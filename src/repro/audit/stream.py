"""Offline adapters: replay recorded histories through the auditor.

The :class:`~repro.audit.auditor.OnlineAuditor` is an event sink; this
module feeds it from the two recorded forms a run leaves behind:

* :func:`audit_schedule` -- a model-alphabet schedule (the engine's
  :class:`~repro.engine.trace.TraceRecorder` events, or any IOA
  schedule) plus its :class:`~repro.core.names.SystemType`.  Access
  leaves are folded at their COMMIT (an aborted leaf never happened),
  internal nodes at their CREATE/COMMIT/ABORT.
* :func:`audit_engine` -- convenience over a traced engine: rebuilds
  the system type from the recorder and, crucially, downgrades the
  verdict to *inconclusive* when the recorder ran in ring-buffer mode
  and evicted events -- a truncated history cannot prove a clean audit.
* :func:`audit_jsonl` / :func:`audit_jsonl_file` -- the ``repro.obs``
  JSONL export (``python -m repro trace --jsonl``): transaction spans
  carry begin/end times and outcomes, access instants carry performer,
  object, and operation.  Events are replayed in timestamp order with
  begins before accesses before ends at equal timestamps; edge
  directions depend only on the per-object access order, which the
  exporter preserves.
"""

from __future__ import annotations

import json
from typing import Iterable, Optional, Sequence

from repro.audit.auditor import AuditConfig, AuditReport, OnlineAuditor
from repro.core.events import Abort, Commit, Create, Event
from repro.core.names import SystemType, TransactionName
from repro.errors import ReproError


def audit_schedule(
    system_type: SystemType,
    alpha: Sequence[Event],
    config: Optional[AuditConfig] = None,
    auditor: Optional[OnlineAuditor] = None,
) -> OnlineAuditor:
    """Replay a model-alphabet schedule; returns the fed auditor."""
    if auditor is None:
        auditor = OnlineAuditor(config)
    for event in alpha:
        name = event.transaction if hasattr(event, "transaction") else None
        if name is None:
            continue
        if system_type.is_access(name):
            if isinstance(event, Commit):
                auditor.access(
                    name[:-1],
                    system_type.object_of(name),
                    system_type.operation_of(name).kind,
                    system_type.is_read_access(name),
                )
            continue
        if isinstance(event, Create):
            auditor.txn_begin(name)
        elif isinstance(event, Commit):
            auditor.txn_commit(name)
        elif isinstance(event, Abort):
            auditor.txn_abort(name)
    return auditor


def audit_engine(
    engine, config: Optional[AuditConfig] = None
) -> AuditReport:
    """Audit a traced engine run offline; returns the report.

    The engine must have been built with ``trace=True``.  When its
    recorder ran in ring-buffer mode and dropped events, the verdict is
    downgraded to ``inconclusive`` (SER002) rather than pretending the
    surviving suffix proves anything.
    """
    recorder = engine.recorder
    if not hasattr(recorder, "system_type"):
        raise ReproError(
            "audit_engine needs a traced engine "
            "(construct it with trace=True)"
        )
    system_type = recorder.system_type(engine.specs)
    auditor = audit_schedule(
        system_type, recorder.schedule(), config
    )
    auditor.note_dropped_events(recorder.dropped_events)
    return auditor.report()


def _parse_txn(text: str) -> Optional[TransactionName]:
    """Invert :func:`repro.core.names.pretty_name` (``T0.1.2``)."""
    if not text or not text.startswith("T0"):
        return None
    if text == "T0":
        return ()
    try:
        return tuple(int(part) for part in text[3:].split("."))
    except ValueError:
        return None


def audit_jsonl(
    lines: Iterable[str],
    config: Optional[AuditConfig] = None,
) -> AuditReport:
    """Audit a recorded ``repro.obs`` JSONL stream."""
    # (time, tie-break, action, payload): begins sort before accesses
    # before ends at equal timestamps, so a span's own accesses always
    # replay inside its lifetime.
    replay: list = []
    for line in lines:
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        kind = record.get("type")
        if kind == "span" and record.get("cat") == "txn":
            txn = _parse_txn(record.get("txn") or "")
            if txn is None:
                continue
            outcome = (record.get("args") or {}).get("outcome")
            replay.append((record["start"], 0, "begin", txn, None))
            replay.append((record["end"], 2, outcome, txn, None))
        elif kind == "instant" and record.get("cat") == "access":
            txn = _parse_txn(record.get("txn") or "")
            if txn is None:
                continue
            args = record.get("args") or {}
            name = record.get("name") or ""
            replay.append(
                (
                    record["ts"],
                    1,
                    "access",
                    txn,
                    (
                        args.get("object"),
                        args.get("op", ""),
                        name.startswith("r "),
                    ),
                )
            )
    replay.sort(key=lambda item: (item[0], item[1]))
    auditor = OnlineAuditor(config)
    for _, _, action, txn, payload in replay:
        if action == "begin":
            auditor.txn_begin(txn)
        elif action == "access":
            object_name, op, is_read = payload
            auditor.access(txn, object_name, op, is_read)
        elif action == "commit":
            auditor.txn_commit(txn)
        else:
            # "abort", "unfinished", or anything unknown: the tree
            # never committed, so it must not enter the graph.
            auditor.txn_abort(txn)
    return auditor.report()


def audit_jsonl_file(
    path: str, config: Optional[AuditConfig] = None
) -> AuditReport:
    """Audit one ``repro trace --jsonl`` output file."""
    with open(path, "r", encoding="utf-8") as handle:
        return audit_jsonl(handle, config)
