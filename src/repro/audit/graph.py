"""The labelled direct serialization graph the online auditor maintains.

Vertices are *committed top-level* transactions; a directed edge
``A -> B`` says an access of A conflicted with, and preceded, an access
of B on some object -- a WR (B read what A wrote), WW (B overwrote A),
or RW (B overwrote what A read: the anti-dependency) dependency.  The
first conflict observed for an ordered pair becomes the edge's *label*,
a :class:`WitnessEdge` remembering both accesses, so when a cycle
closes the graph can print exactly which operations force each arrow.

The graph supports removal: the auditor garbage-collects vertices that
can no longer take part in a cycle, and evicts the offending vertex of
a reported violation to restore acyclicity.  Cycle search itself lives
in :mod:`repro.core.digraph`, shared with the offline checkers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.core.digraph import shortest_cycle_through
from repro.core.names import TransactionName, pretty_name


@dataclass(frozen=True)
class WitnessEdge:
    """One dependency edge plus the pair of accesses forcing it."""

    source: TransactionName
    target: TransactionName
    #: ``"wr"`` (reads-from), ``"ww"`` (version order) or ``"rw"``
    #: (anti-dependency), named source-side first.
    kind: str
    object_name: str
    #: The conflicting operations: ``"r"``/``"w"`` plus the global
    #: access position at which each was performed.
    source_op: str
    source_position: int
    target_op: str
    target_position: int

    def __str__(self) -> str:
        return "%s -%s[%s]-> %s (%s %s @%d < %s %s @%d)" % (
            pretty_name(self.source),
            self.kind,
            self.object_name,
            pretty_name(self.target),
            self.source_op,
            self.object_name,
            self.source_position,
            self.target_op,
            self.object_name,
            self.target_position,
        )


def edge_kind(source_is_read: bool, target_is_read: bool) -> str:
    """Classify the dependency of an ordered conflicting pair."""
    if source_is_read:
        return "rw"
    return "wr" if target_is_read else "ww"


class SerializationGraph:
    """Mutable labelled digraph over committed top-level transactions."""

    def __init__(self) -> None:
        #: vertex -> commit sequence number (monotone fold order).
        self.vertices: Dict[TransactionName, int] = {}
        self.edges: Dict[
            TransactionName, Dict[TransactionName, WitnessEdge]
        ] = {}
        #: Reverse adjacency, for O(degree) vertex removal.
        self._incoming: Dict[TransactionName, Set[TransactionName]] = {}

    def __len__(self) -> int:
        return len(self.vertices)

    @property
    def edge_count(self) -> int:
        return sum(len(targets) for targets in self.edges.values())

    def add_vertex(
        self, name: TransactionName, commit_seq: int
    ) -> None:
        self.vertices[name] = commit_seq

    def add_edge(self, edge: WitnessEdge) -> None:
        """Insert *edge*; the first label per ordered pair is kept.

        Keeping the earliest-observed conflict as the label makes the
        rendered witness deterministic and keeps edge storage at one
        record per vertex pair no matter how many conflicting accesses
        the pair shares.
        """
        if edge.source == edge.target:
            return
        targets = self.edges.setdefault(edge.source, {})
        if edge.target not in targets:
            targets[edge.target] = edge
        self._incoming.setdefault(edge.target, set()).add(edge.source)

    def successors(self, name: TransactionName):
        return self.edges.get(name, ())

    def label(
        self, source: TransactionName, target: TransactionName
    ) -> WitnessEdge:
        return self.edges[source][target]

    def witness_cycle_through(
        self, name: TransactionName
    ) -> Optional[List[WitnessEdge]]:
        """The minimal cycle through *name* as labelled edges, or None.

        The auditor calls this right after folding *name* in: the graph
        was acyclic before, so every new cycle passes through *name*
        and the BFS-shortest one is a minimal witness.
        """
        # A vertex without both incoming and outgoing edges cannot lie
        # on any cycle; this is the overwhelmingly common case on a
        # clean history, so bail before the BFS allocates anything.
        if name not in self.edges or name not in self._incoming:
            return None
        cycle = shortest_cycle_through(name, self.successors)
        if cycle is None:
            return None
        return [
            self.label(cycle[index], cycle[index + 1])
            for index in range(len(cycle) - 1)
        ]

    def remove_vertex(self, name: TransactionName) -> None:
        """Drop *name* and every incident edge."""
        self.vertices.pop(name, None)
        for target in self.edges.pop(name, ()):
            sources = self._incoming.get(target)
            if sources is not None:
                sources.discard(name)
                if not sources:
                    del self._incoming[target]
        for source in self._incoming.pop(name, ()):
            targets = self.edges.get(source)
            if targets is not None:
                targets.pop(name, None)
                if not targets:
                    del self.edges[source]
