"""The streaming serializability auditor.

:class:`OnlineAuditor` consumes the observer's event vocabulary --
transaction begin/commit/abort and granted accesses -- and maintains
the direct serialization graph over *committed top-level* transactions
incrementally:

* While a top-level tree runs, its granted accesses are buffered,
  tagged with the performing (sub)transaction and a global monotone
  position.  Aborting a subtree prunes exactly the buffered accesses
  that subtree performed (Moss' versions undo them; they never
  happened).
* When the top commits, its surviving accesses *fold* into per-object
  committed timelines, drawing a labelled dependency edge against
  every conflicting committed access -- WR/WW/RW by operation pair,
  direction by position.
* The graph was acyclic before the fold, so any new cycle passes
  through the new vertex; the BFS-shortest such cycle is reported as a
  **minimal witness** (:class:`Violation`), and the vertex is evicted
  to restore acyclicity so one bad transaction cannot re-report against
  every later one.

Bounded memory: a committed vertex is garbage-collected once every
live *audited* top-level tree began after it committed.  At that point
no future fold can add an edge into it (all later accesses have later
positions), and by induction on commit order no future cycle can need
it as an intermediate vertex -- every intermediate of a cycle through a
future vertex must overlap that vertex's lifetime and is therefore
still retained.

Sampling: ``AuditConfig.sample_every = N`` audits every Nth top-level
tree and ignores the rest entirely.  Cycles found among the audited
subset are genuine (sampling can only *miss* violations, never invent
them), which is what makes the capability-gated trust dial sound:
schemes declaring ``model_conformant`` default to cheap sampled
auditing, experimental or deliberately broken schemes to full audit.

Verdict precedence is ``violation > inconclusive > clean``: when the
event source is known lossy (a ring-buffer trace that dropped events),
:meth:`OnlineAuditor.note_dropped_events` downgrades a would-be clean
verdict to *inconclusive* with an explicit SER002 finding rather than
letting an unaudited gap masquerade as a clean bill of health.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Set, Tuple

from repro.analysis.findings import (
    AnalysisReport,
    Finding,
    register_rule,
)
from repro.audit.graph import (
    SerializationGraph,
    WitnessEdge,
    edge_kind,
)
from repro.core.names import TransactionName, pretty_name

SER001 = register_rule(
    "SER001",
    "serialization graph cycle",
    "classical theory [EGLT, P, BG]; Biswas-Enea checking",
    "The direct serialization graph over committed top-level "
    "transactions has a cycle: no serial order of these transactions "
    "explains the observed reads-from / version-order / "
    "anti-dependency conflicts.  The finding carries the minimal "
    "witness cycle with the object accesses forcing each edge.",
)
SER002 = register_rule(
    "SER002",
    "audit inconclusive: events dropped",
    "repo invariant; ring-buffer tracing",
    "The audited event stream is known to be incomplete (the trace "
    "recorder ran in ring-buffer mode and evicted events), so a clean "
    "serialization graph proves nothing; the audit verdict is "
    "downgraded to inconclusive instead of reporting a clean audit.",
)


@dataclass(frozen=True)
class AuditConfig:
    """Tuning knobs of one auditor instance."""

    #: Audit every Nth top-level transaction tree (1 = all of them).
    sample_every: int = 1

    def __post_init__(self) -> None:
        if self.sample_every < 1:
            raise ValueError(
                "sample_every must be >= 1, got %d" % self.sample_every
            )

    @classmethod
    def for_capabilities(
        cls, capabilities, sampled_every: int = 16
    ) -> "AuditConfig":
        """The capability-gated trust dial.

        A scheme whose :class:`~repro.kernel.scheme.SchemeCapabilities`
        declare ``model_conformant`` has a conformance proof obligation
        backing it, so production attachment defaults to sampled
        auditing; anything experimental runs fully audited.
        """
        if capabilities.model_conformant:
            return cls(sample_every=sampled_every)
        return cls(sample_every=1)


# Hot-path records are plain tuples -- the auditor creates one per
# granted access on every audited tree, and frozen-dataclass
# construction (an ``object.__setattr__`` per field) is measurably the
# dominant cost there:
#
#   buffered access : (performer, object_name, op, position)
#   committed access: (top, op, position)
#
# where ``op`` is ``"r"`` or ``"w"`` and ``position`` is the global
# monotone access position.
_Buffered = Tuple[TransactionName, str, str, int]
_Committed = Tuple[TransactionName, str, int]


@dataclass(frozen=True)
class Violation:
    """A witnessed serializability violation: one minimal cycle."""

    cycle: Tuple[TransactionName, ...]
    edges: Tuple[WitnessEdge, ...]

    @property
    def objects(self) -> Tuple[str, ...]:
        return tuple(sorted({edge.object_name for edge in self.edges}))

    def cycle_text(self) -> str:
        names = [pretty_name(edge.source) for edge in self.edges]
        names.append(pretty_name(self.edges[0].source))
        return " -> ".join(names)

    def describe(self) -> str:
        """The pinned multi-line witness rendering."""
        lines = [
            "cycle %s over %s"
            % (self.cycle_text(), ", ".join(self.objects))
        ]
        for edge in self.edges:
            lines.append("  %s" % edge)
        return "\n".join(lines)

    def __str__(self) -> str:
        return "cycle %s: %s" % (
            self.cycle_text(),
            "; ".join(str(edge) for edge in self.edges),
        )


@dataclass
class AuditReport:
    """Outcome of one audit: verdict, witnesses, resource stats."""

    verdict: str  # "clean" | "violation" | "inconclusive"
    violations: Tuple[Violation, ...]
    dropped_events: int
    sample_every: int
    stats: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.verdict == "clean"

    def __bool__(self) -> bool:
        return self.ok

    def to_analysis_report(self) -> AnalysisReport:
        """The audit as SER001/SER002 findings for the reporters."""
        report = AnalysisReport(subject="audit")
        for violation in self.violations:
            report.findings.append(
                Finding(
                    rule=SER001,
                    message=str(violation),
                    transaction=violation.cycle[0],
                    object_name=", ".join(violation.objects),
                )
            )
        if self.verdict == "inconclusive":
            report.findings.append(
                Finding(
                    rule=SER002,
                    message=(
                        "%d trace event(s) dropped in ring-buffer "
                        "mode; a clean graph over the surviving "
                        "events is not a clean audit"
                        % self.dropped_events
                    ),
                )
            )
        return report

    def render(self) -> str:
        """The plain-text audit report (witness format is pinned)."""
        lines = [
            "verdict : %s" % self.verdict,
            "audited : %d/%d top-level transaction(s) (sample 1/%d)"
            % (
                self.stats.get("tops_audited", 0),
                self.stats.get("tops_seen", 0),
                self.sample_every,
            ),
            "graph   : %d live vertex(es), %d collected"
            % (
                self.stats.get("vertices_live", 0),
                self.stats.get("vertices_collected", 0),
            ),
        ]
        if self.dropped_events:
            lines.append("dropped : %d event(s)" % self.dropped_events)
        for index, violation in enumerate(self.violations):
            lines.append("witness %d:" % index)
            for line in violation.describe().splitlines():
                lines.append("  %s" % line)
        return "\n".join(lines)


class OnlineAuditor:
    """Streaming serialization-graph checker over observer events.

    Feed it the observer vocabulary (it is also directly attachable via
    :meth:`repro.obs.Observer.attach_auditor`): ``txn_begin`` /
    ``txn_commit`` / ``txn_abort`` for every tree node, ``access`` for
    every granted access (with the *performing* transaction, i.e. the
    access leaf's parent).  Violations accumulate in
    :attr:`violations`; :meth:`report` summarises.

    The auditor serialises its own state behind an internal lock, so a
    striped :class:`~repro.engine.threadsafe.ThreadSafeEngine` can feed
    it from several worker threads without an external wrapper.  The
    hot-path bail for *unaudited* trees stays lock-free: a tree's
    ``txn_begin`` happens-before its accesses on the driving thread, so
    a membership probe of ``_pending`` (atomic under the GIL) decides
    "not sampled" without taking the lock.
    """

    def __init__(self, config: Optional[AuditConfig] = None):
        self.config = config or AuditConfig()
        self._lock = threading.Lock()
        self.graph = SerializationGraph()
        self.violations: List[Violation] = []
        #: Buffered accesses of each live audited top-level tree.
        self._pending: Dict[TransactionName, List[_Buffered]] = {}
        #: Commit-seq watermark each live audited top began at.
        self._began_at: Dict[TransactionName, int] = {}
        #: Per-object committed accesses of retained vertices.
        self._timelines: Dict[str, List[_Committed]] = {}
        #: Objects each retained vertex touched, scoping its GC sweep.
        self._vertex_objects: Dict[TransactionName, Set[str]] = {}
        #: Retained committed vertices in commit order, for GC sweeps.
        self._commit_order: Deque[TransactionName] = deque()
        self._position = 0
        self._commit_seq = 0
        self._top_count = 0
        self._dropped = 0
        self.stats: Dict[str, int] = {
            "tops_seen": 0,
            "tops_audited": 0,
            "accesses_buffered": 0,
            "accesses_pruned": 0,
            "vertices_collected": 0,
            "violations": 0,
        }

    # ------------------------------------------------------------------
    # Event sinks (observer vocabulary)
    # ------------------------------------------------------------------
    def txn_begin(self, name: TransactionName) -> None:
        if len(name) != 1:
            return
        with self._lock:
            sampled = (
                self._top_count % self.config.sample_every == 0
            )
            self._top_count += 1
            self.stats["tops_seen"] += 1
            if not sampled:
                return
            self.stats["tops_audited"] += 1
            self._pending[name] = []
            self._began_at[name] = self._commit_seq

    def access(
        self,
        txn: TransactionName,
        object_name: str,
        kind: str,
        is_read: bool,
    ) -> None:
        top = txn[:1]
        if top not in self._pending:
            # Unaudited tree: its begin ran (on this thread) before any
            # of its accesses, so absence here is authoritative.
            return
        with self._lock:
            buffered = self._pending.get(top)
            if buffered is None:
                return
            buffered.append(
                (txn, object_name, "r" if is_read else "w",
                 self._position)
            )
            self._position += 1
            self.stats["accesses_buffered"] += 1

    def txn_abort(
        self, name: TransactionName, cause: str = "explicit"
    ) -> None:
        if name[:1] not in self._pending:
            return
        with self._lock:
            if len(name) == 1:
                if self._pending.pop(name, None) is not None:
                    del self._began_at[name]
                    self._collect()
                return
            buffered = self._pending.get(name[:1])
            if not buffered:
                return
            prefix = len(name)
            survivors = [
                access
                for access in buffered
                if access[0][:prefix] != name
            ]
            self.stats["accesses_pruned"] += len(buffered) - len(
                survivors
            )
            self._pending[name[:1]] = survivors

    def txn_commit(self, name: TransactionName) -> None:
        if len(name) != 1:
            # Child commits keep their accesses buffered under the top:
            # whether they become permanent is decided at the root.
            return
        if name not in self._pending:
            return
        with self._lock:
            buffered = self._pending.pop(name, None)
            if buffered is None:
                return
            del self._began_at[name]
            if buffered:
                self._fold(name, buffered)
            self._collect()

    def note_dropped_events(self, count: int) -> None:
        """Mark the event stream lossy (ring-buffer evictions)."""
        if count > 0:
            with self._lock:
                self._dropped += count

    # Lifecycle no-op: present so the observer can forward blindly.
    def finish(self) -> None:
        pass

    # ------------------------------------------------------------------
    # Folding and cycle detection
    # ------------------------------------------------------------------
    def _fold(
        self, name: TransactionName, accesses: List[_Buffered]
    ) -> None:
        self._commit_seq += 1
        self.graph.add_vertex(name, self._commit_seq)
        self._commit_order.append(name)
        touched = self._vertex_objects.setdefault(name, set())
        graph_edges = self.graph.edges
        for _, object_name, op, position in accesses:
            is_read = op == "r"
            touched.add(object_name)
            timeline = self._timelines.setdefault(object_name, [])
            for other_top, other_op, other_position in timeline:
                if other_top == name:
                    continue
                other_is_read = other_op == "r"
                if is_read and other_is_read:
                    continue
                forward = other_position < position
                source = other_top if forward else name
                target = name if forward else other_top
                # First label per ordered pair wins; skip building the
                # (costly) labelled edge when one is already drawn.
                targets = graph_edges.get(source)
                if targets is not None and target in targets:
                    continue
                if forward:
                    edge = WitnessEdge(
                        source=other_top,
                        target=name,
                        kind=edge_kind(other_is_read, is_read),
                        object_name=object_name,
                        source_op=other_op,
                        source_position=other_position,
                        target_op=op,
                        target_position=position,
                    )
                else:
                    edge = WitnessEdge(
                        source=name,
                        target=other_top,
                        kind=edge_kind(is_read, other_is_read),
                        object_name=object_name,
                        source_op=op,
                        source_position=position,
                        target_op=other_op,
                        target_position=other_position,
                    )
                self.graph.add_edge(edge)
            timeline.append((name, op, position))
        witness = self.graph.witness_cycle_through(name)
        if witness is not None:
            violation = Violation(
                cycle=tuple(edge.source for edge in witness),
                edges=tuple(witness),
            )
            self.violations.append(violation)
            self.stats["violations"] += 1
            # Evict the offender so the graph stays acyclic and later
            # commits are judged on their own conflicts, not re-flagged
            # against a transaction already reported.
            self._drop_vertex(name)

    # ------------------------------------------------------------------
    # Garbage collection
    # ------------------------------------------------------------------
    def _collect(self) -> None:
        """Collect vertices no live audited top can still precede.

        A retained vertex V with ``commit_seq <= barrier`` (the oldest
        begin-watermark among live audited tops) committed before every
        live tree began: all future accesses carry later positions, so
        no future fold adds an edge into V, and V cannot lie on any
        future cycle.
        """
        barrier = (
            min(self._began_at.values())
            if self._began_at
            else self._commit_seq
        )
        while self._commit_order:
            oldest = self._commit_order[0]
            seq = self.graph.vertices.get(oldest)
            if seq is None:
                # Already evicted as a violation offender.
                self._commit_order.popleft()
                continue
            if seq > barrier:
                break
            self._commit_order.popleft()
            self._drop_vertex(oldest)
            self.stats["vertices_collected"] += 1

    def _drop_vertex(self, name: TransactionName) -> None:
        self.graph.remove_vertex(name)
        for object_name in self._vertex_objects.pop(name, ()):
            timeline = self._timelines.get(object_name)
            if timeline is None:
                continue
            survivors = [
                access for access in timeline if access[0] != name
            ]
            if survivors:
                self._timelines[object_name] = survivors
            else:
                del self._timelines[object_name]

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    @property
    def verdict(self) -> str:
        if self.violations:
            return "violation"
        if self._dropped:
            return "inconclusive"
        return "clean"

    def report(self) -> AuditReport:
        with self._lock:
            stats = dict(self.stats)
            stats["vertices_live"] = len(self.graph)
            stats["edges_live"] = self.graph.edge_count
            stats["tops_live"] = len(self._pending)
            return AuditReport(
                verdict=self.verdict,
                violations=tuple(self.violations),
                dropped_events=self._dropped,
                sample_every=self.config.sample_every,
                stats=stats,
            )


def attach_auditor(
    target: Any,
    auditor: Optional[OnlineAuditor] = None,
    config: Optional[AuditConfig] = None,
) -> OnlineAuditor:
    """Attach an auditor to anything exposing ``attach_auditor``.

    Convenience wrapper so callers holding an engine or facade do not
    need to import both classes; the engine-side method applies the
    capability-gated default config when none is given.
    """
    return target.attach_auditor(auditor=auditor, config=config)
