"""repro: Nested Transactions and Read/Write Locking (PODS 1987).

A full reproduction of Fekete, Lynch, Merritt & Weihl's correctness theory
for Moss' read/write locking algorithm, plus the executable substrates the
paper relies on but does not build:

* :mod:`repro.ioa` -- the I/O automaton model (Section 2);
* :mod:`repro.core` -- serial systems, R/W Locking systems, visibility,
  equieffectiveness, the Lemma 33 serializer and the Theorem 34 checker;
* :mod:`repro.adt` -- abstract data types satisfying the Section 4.3
  semantic conditions;
* :mod:`repro.engine` -- a production-style nested-transaction engine
  implementing Moss' algorithm (the Argus-style substrate);
* :mod:`repro.mvto` -- a Reed-style multiversion timestamp baseline;
* :mod:`repro.sim` -- a discrete-event simulator and workload generators
  for the system evaluation;
* :mod:`repro.checking` -- statistical and exhaustive validation harnesses.

Quickstart::

    from repro.core import (
        ROOT, SystemTypeBuilder, RWLockingSystem, check_serial_correctness,
    )
    from repro.adt import IntRegister
    from repro.ioa import random_schedule
    import random

    builder = SystemTypeBuilder()
    builder.add_object(IntRegister("x"))
    t1 = builder.add_child(ROOT)
    builder.add_access(t1, "x", IntRegister.write(5))
    t2 = builder.add_child(ROOT)
    builder.add_access(t2, "x", IntRegister.read())
    system_type = builder.build()

    system = RWLockingSystem(system_type)
    alpha = random_schedule(system, 100, random.Random(0))
    report = check_serial_correctness(system, alpha)
    assert report.ok
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
