"""The built-in scenario catalogue.

Four scenarios, each stressing a different axis of the nested
read/write-locking design space:

* ``bank``        -- classic debit/credit OLTP over skewed accounts
  with a long-running analytic balance audit riding alongside
  (readers-vs-writers, the paper's core tension);
* ``inventory``   -- deep nested fan-out (order -> per-line reserve)
  over commutative stock counters, where semantic locking should pull
  ahead of pure read/write modes;
* ``social-feed`` -- read-dominated zipfian fan-in over a kvmap of
  profiles with a small write burst class (hotspot inheritance);
* ``ticketing``   -- open-loop Poisson bursts fighting over a tiny
  set of hot rows with failure-injected holds (abort/retry churn).

Each lives as a TOML file next to this module so ``repro scenario``
can also print the path and users can copy one as a starting point.
"""

from __future__ import annotations

import os
from typing import List

from repro.scenario.spec import ScenarioError, ScenarioSpec, load_scenario

__all__ = ["library_names", "library_path", "load_library_scenario"]

_LIBRARY_DIR = os.path.join(os.path.dirname(__file__), "library")


def library_names() -> List[str]:
    """The bundled scenario names, sorted."""
    return sorted(
        entry[: -len(".toml")]
        for entry in os.listdir(_LIBRARY_DIR)
        if entry.endswith(".toml")
    )


def library_path(name: str) -> str:
    """Absolute path of a bundled scenario's TOML file."""
    path = os.path.join(_LIBRARY_DIR, os.path.basename(name) + ".toml")
    if not os.path.exists(path):
        raise ScenarioError(
            "no library scenario %r (choose from %s)"
            % (name, ", ".join(library_names()))
        )
    return path


def load_library_scenario(name: str) -> ScenarioSpec:
    """Load a bundled scenario by name (``bank``, ``inventory``, ...)."""
    return load_scenario(library_path(name))
