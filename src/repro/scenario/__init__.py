"""Declarative workload scenarios compiled onto every backend.

ROADMAP item 5: workload shapes used to be hand-wired three separate
times (the DES workload generator, the observed demo workloads, and the
service load generator).  This package replaces them with one
declarative layer:

* :mod:`repro.scenario.spec` -- frozen dataclasses describing a
  scenario (arrival process, zipfian hotspot skew, nested fan-out
  topology per tree level, read/write mix per level, per-ADT object
  populations, OLTP vs. analytic transaction classes, think times),
  loadable from TOML with typed validation errors;
* :mod:`repro.scenario.programs` -- the nested program-tree vocabulary
  (:class:`Program` / :class:`Block` / :class:`AccessOp`) and the
  seeded per-ADT access generator, shared with the legacy
  :mod:`repro.sim.workload` entry points;
* :mod:`repro.scenario.compiler` -- lowers one spec + seed to a
  :class:`CompiledScenario`: an object store, a deterministic list of
  nested transaction programs, think times and (open-loop) arrival
  offsets, plus a digest over the logical operation stream;
* :mod:`repro.scenario.backends` -- a common :class:`Driver` protocol
  with four implementations: the DES simulator, the blocking
  :class:`~repro.engine.threadsafe.ThreadSafeEngine`, the distributed
  runner, and the live ``repro.serve`` service;
* :mod:`repro.scenario.library` -- the built-in scenario catalogue
  (bank, inventory, social-feed, ticketing).

The same spec + seed yields a digest-identical logical operation
stream on every deterministic backend; ``repro scenario run`` and
benchmark E24 build cross-scheme x cross-backend league tables on top.
See docs/SCENARIOS.md.
"""

from repro.scenario.backends import (
    Driver,
    ScenarioResult,
    driver_names,
    get_driver,
)
from repro.scenario.compiler import (
    CompiledScenario,
    build_store,
    compile_scenario,
)
from repro.scenario.library import (
    library_names,
    library_path,
    load_library_scenario,
)
from repro.scenario.programs import AccessOp, Block, Program
from repro.scenario.spec import (
    Arrival,
    Level,
    Population,
    ScenarioError,
    ScenarioSpec,
    TxnClass,
    load_scenario,
    load_scenario_text,
    spec_from_dict,
)

__all__ = [
    "AccessOp",
    "Arrival",
    "Block",
    "CompiledScenario",
    "Driver",
    "Level",
    "Population",
    "Program",
    "ScenarioError",
    "ScenarioResult",
    "ScenarioSpec",
    "TxnClass",
    "build_store",
    "compile_scenario",
    "driver_names",
    "get_driver",
    "library_names",
    "library_path",
    "load_library_scenario",
    "load_scenario",
    "load_scenario_text",
    "spec_from_dict",
]
