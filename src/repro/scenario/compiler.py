"""Lower a scenario spec + seed onto a concrete logical workload.

:func:`compile_scenario` is deterministic: one spec + one seed always
produces the same :class:`CompiledScenario` -- the same object store,
the same transaction class sequence, the same nested program trees
with the same operations, the same think times and arrival offsets.
Backends differ only in *how* they execute that logical stream, which
is what makes cross-backend and cross-scheme comparisons meaningful.

All randomness flows through named :class:`~repro.core.sampling.RngStreams`:

* ``"class"``  -- which transaction class each of the N transactions is;
* ``"ops"``    -- object picks and operation payloads inside the trees;
* ``"arrival"`` -- open-loop Poisson interarrival gaps.

Adding draws to one stream never perturbs the others, so e.g. turning
a closed-loop scenario into an open-loop one does not change which
objects its transactions touch.

:meth:`CompiledScenario.digest` hashes the canonical serialization of
the logical operation stream (every transaction's class, tree shape,
objects, operation kind/args, durations, failure injection).  Two
backends given the same spec + seed drive digest-identical streams;
the cross-backend tests and benchmark E24 assert exactly that.
"""

from __future__ import annotations

import functools
import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.core.object_spec import ObjectSpec
from repro.core.sampling import RngStreams, weighted_index, zipf_weights
from repro.scenario.programs import (
    POPULATION_KINDS,
    AccessOp,
    Block,
    Program,
    random_access,
)
from repro.scenario.spec import (
    Population,
    ScenarioSpec,
    TxnClass,
    _as_dict,
)

__all__ = [
    "CompiledScenario",
    "build_store",
    "compile_scenario",
    "workload_digest",
]


def build_store(spec: ScenarioSpec) -> List[ObjectSpec]:
    """The object store a scenario runs against (all populations)."""
    store: List[ObjectSpec] = []
    for population in spec.populations:
        factory = POPULATION_KINDS[population.kind]
        for name in population.object_names():
            store.append(factory(name, population.initial))
    return store


@dataclass
class CompiledScenario:
    """One spec + seed lowered to an executable logical workload.

    ``programs[i]`` is the nested tree of transaction *i*;
    ``class_names[i]`` / ``think_times[i]`` its class and post-commit
    client pause.  ``arrival_offsets`` is ``None`` for a closed-loop
    scenario, else the Poisson arrival time of each transaction.
    """

    spec: ScenarioSpec
    seed: int
    programs: List[Program] = field(default_factory=list)
    class_names: List[str] = field(default_factory=list)
    think_times: List[float] = field(default_factory=list)
    arrival_offsets: Optional[List[float]] = None

    def store(self) -> List[ObjectSpec]:
        """A fresh object store (stores are stateless specs, but each
        backend gets its own list)."""
        return build_store(self.spec)

    def digest(self) -> str:
        """SHA-256 over the canonical logical operation stream."""
        payload = {
            "spec": _as_dict(self.spec),
            "seed": self.seed,
            "arrivals": self.arrival_offsets,
            "txns": [
                {
                    "label": program.label,
                    "class": self.class_names[index],
                    "think": self.think_times[index],
                    "body": _serialize_block(program.body),
                }
                for index, program in enumerate(self.programs)
            ],
        }
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _serialize_block(block: Block) -> Dict[str, object]:
    return {
        "parallel": block.parallel,
        "fail_prob": block.fail_prob,
        "retries": block.retries,
        "steps": [
            {
                "object": step.object_name,
                "kind": step.operation.kind,
                "args": list(step.operation.args),
                "read": step.operation.is_read,
                "duration": step.duration,
            }
            if isinstance(step, AccessOp)
            else _serialize_block(step)
            for step in block.steps
        ],
    }


def workload_digest(programs: List[Program]) -> str:
    """SHA-256 over a bare program list (no spec context).

    Used by the byte-pinning tests for the legacy
    :func:`repro.sim.workload.make_workload` shim.
    """
    blob = json.dumps(
        [
            {"label": program.label, "body": _serialize_block(program.body)}
            for program in programs
        ],
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class _PopulationSampler:
    """Cached names/kinds/zipf-weights per population."""

    def __init__(self, spec: ScenarioSpec):
        self._cache: Dict[str, Tuple[tuple, tuple, list]] = {}
        for population in spec.populations:
            names = population.object_names()
            kind = (
                "commutative"
                if population.kind == "commutative"
                else type(POPULATION_KINDS[population.kind]("_probe", 0))
            )
            kinds = tuple(kind for _ in names)
            weights = zipf_weights(population.count, population.zipf_skew)
            self._cache[population.name] = (names, kinds, weights)

    def parts(self, population: Population):
        return self._cache[population.name]


def _build_block(
    rng,
    spec: ScenarioSpec,
    sampler: _PopulationSampler,
    cls: TxnClass,
    level_index: int,
) -> Block:
    level = cls.levels[level_index]
    population = spec.population(level.population or cls.population)
    names, kinds, weights = sampler.parts(population)
    steps: List[Union[Block, AccessOp]] = []
    for _ in range(level.accesses):
        steps.append(
            random_access(
                rng,
                names,
                kinds,
                weights,
                level.read_fraction,
                level.access_time,
            )
        )
    if level_index + 1 < len(cls.levels):
        for _ in range(level.fanout):
            steps.append(
                _build_block(rng, spec, sampler, cls, level_index + 1)
            )
    return Block(
        steps=steps,
        parallel=level.parallel,
        fail_prob=level.fail_prob,
        retries=level.retries,
    )


def compile_scenario(
    spec: ScenarioSpec,
    seed: int,
    transactions: Optional[int] = None,
) -> CompiledScenario:
    """Deterministically lower *spec* + *seed* to a logical workload.

    *transactions* overrides ``spec.transactions`` (benchmarks use it
    for quick modes) without otherwise perturbing the stream prefix:
    the first N transactions of a longer compile are identical to a
    compile asked for N.
    """
    count = spec.transactions if transactions is None else transactions
    streams = RngStreams(seed)
    class_rng = streams.stream("class")
    op_rng = streams.stream("ops")
    weights = [cls.weight for cls in spec.classes]
    compiled = CompiledScenario(spec=spec, seed=seed)
    for index in range(count):
        cls = spec.classes[weighted_index(class_rng, weights)]
        body = _build_block(op_rng, spec, _sampler_for(spec), cls, 0)
        # The top level never carries injected failure: aborting the
        # whole program models a client error, not a subtransaction
        # fault (same convention as the legacy workload generator).
        body.fail_prob = 0.0
        body.retries = 0
        compiled.programs.append(
            Program(body=body, label="%s-%d" % (cls.name, index))
        )
        compiled.class_names.append(cls.name)
        compiled.think_times.append(cls.think_time)
    if spec.arrival.process == "poisson":
        arrival_rng = streams.stream("arrival")
        offsets: List[float] = []
        clock = 0.0
        for _ in range(count):
            clock += arrival_rng.expovariate(spec.arrival.rate)
            offsets.append(clock)
        compiled.arrival_offsets = offsets
    return compiled


# Specs are frozen (and therefore hashable), so the per-spec
# name/kind/weight tables can be memoised across compiles.
_sampler_for = functools.lru_cache(maxsize=64)(_PopulationSampler)
