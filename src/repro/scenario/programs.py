"""Nested program trees and the seeded per-ADT access generator.

This is the vocabulary every backend executes: a :class:`Program` is a
top-level transaction's script, a :class:`Block` a subtransaction
(optionally parallel, optionally failing with a retry budget), an
:class:`AccessOp` one data access with a simulated duration.

The classes and the access generator lived in :mod:`repro.sim.workload`
for most of this repo's history; they moved here so the scenario
compiler and the legacy workload generator share one implementation.
``repro.sim.workload`` re-exports everything, and
:func:`random_access` consumes the exact RNG call sequence of the code
it replaced, so seeded legacy workloads are byte-for-byte unchanged
(pinned by ``tests/scenario/test_compiler.py``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Sequence, Union

from repro.adt import (
    BankAccount,
    Counter,
    FifoQueue,
    IntRegister,
    KVMap,
    SetObject,
)
from repro.core.object_spec import ObjectSpec, Operation
from repro.core.sampling import weighted_index

__all__ = [
    "AccessOp",
    "Block",
    "KIND_OPERATIONS",
    "POPULATION_KINDS",
    "Program",
    "random_access",
]


@dataclass
class AccessOp:
    """One data access: which object, which operation, how long it takes."""

    object_name: str
    operation: Operation
    duration: float = 1.0


@dataclass
class Block:
    """A subtransaction: steps run in order (or in parallel).

    ``fail_prob`` injects an abort after the block's work completes;
    ``retries`` is how many times the parent re-runs the block (as a fresh
    subtransaction, redoing the work) before giving up and treating the
    child as aborted.
    """

    steps: List[Union["Block", AccessOp]] = field(default_factory=list)
    parallel: bool = False
    fail_prob: float = 0.0
    retries: int = 0

    def access_count(self) -> int:
        """Total accesses in this block's subtree."""
        total = 0
        for step in self.steps:
            if isinstance(step, AccessOp):
                total += 1
            else:
                total += step.access_count()
        return total


@dataclass
class Program:
    """A top-level transaction script."""

    body: Block
    label: str = ""

    def access_count(self) -> int:
        return self.body.access_count()


#: Per-ADT operation makers: read and write constructors, each drawing
#: any payload randomness from the injected RNG.  One table for every
#: workload layer (the service load generator keeps its own *wire*
#: profiles -- ops there are JSON kind/args, not Operation objects).
KIND_OPERATIONS = {
    IntRegister: {
        "read": lambda rng: IntRegister.read(),
        "write": lambda rng: IntRegister.add(1),
    },
    Counter: {
        "read": lambda rng: Counter.value(),
        "write": lambda rng: Counter.increment(rng.randrange(1, 4)),
    },
    BankAccount: {
        "read": lambda rng: BankAccount.balance(),
        "write": lambda rng: (
            BankAccount.deposit(rng.randrange(1, 20))
            if rng.random() < 0.5
            else BankAccount.withdraw(rng.randrange(1, 20))
        ),
    },
    SetObject: {
        "read": lambda rng: SetObject.contains(rng.randrange(8)),
        "write": lambda rng: SetObject.insert(rng.randrange(8)),
    },
    KVMap: {
        "read": lambda rng: KVMap.get("k%d" % rng.randrange(8)),
        "write": lambda rng: KVMap.put(
            "k%d" % rng.randrange(8), rng.randrange(1 << 8)
        ),
    },
    FifoQueue: {
        "read": lambda rng: FifoQueue.length(),
        "write": lambda rng: FifoQueue.enqueue(rng.randrange(1 << 8)),
    },
}

#: Population kinds a scenario spec may name, with their ObjectSpec
#: factories.  ``commutative`` is Counter driven by effect-only bumps
#: (the semantic-locking workload); it shares Counter's spec class.
POPULATION_KINDS = {
    "register": lambda name, initial: IntRegister(name, initial or 0),
    "counter": lambda name, initial: Counter(name, initial or 0),
    "commutative": lambda name, initial: Counter(name, initial or 0),
    "bank": lambda name, initial: BankAccount(name, initial or 0),
    "set": lambda name, initial: SetObject(name),
    "kvmap": lambda name, initial: KVMap(name),
    "queue": lambda name, initial: FifoQueue(name),
}


def random_access(
    rng: random.Random,
    names: Sequence[str],
    kinds: Sequence,
    weights: Sequence[float],
    read_fraction: float,
    access_time: float,
) -> AccessOp:
    """One seeded access over a weighted object population.

    ``kinds[i]`` is the ADT class of ``names[i]``, or the string
    ``"commutative"`` for bump-driven counters.  RNG consumption per
    call is exactly: one weighted index draw, then one uniform
    read/write roll, then whatever payload draws the chosen operation
    maker performs -- the historical sequence of
    ``repro.sim.workload._random_access``.
    """
    index = weighted_index(rng, weights)
    name = names[index]
    kind = kinds[index]
    if kind == "commutative":
        if rng.random() < read_fraction:
            operation = Counter.value()
        else:
            operation = Counter.bump(rng.randrange(1, 4))
        return AccessOp(name, operation, duration=access_time)
    makers = KIND_OPERATIONS[kind]
    if rng.random() < read_fraction:
        operation = makers["read"](rng)
    else:
        operation = makers["write"](rng)
    return AccessOp(name, operation, duration=access_time)
