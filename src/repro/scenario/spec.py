"""Scenario specifications: frozen dataclasses, TOML loading, validation.

A :class:`ScenarioSpec` declares *what* a workload looks like --
object populations (per-ADT, with zipfian hotspot skew), weighted
transaction classes (each a nested fan-out topology with a read/write
mix per tree level, think times, and failure injection), and an
arrival process (closed loop or open-loop Poisson).  It says nothing
about *how* the workload runs: the compiler lowers one spec onto any
backend (:mod:`repro.scenario.backends`).

Every constructor validates eagerly and raises :class:`ScenarioError`
(a ``ValueError``) with a field-path message -- bad TOML surfaces as a
typed error, never a traceback from deep inside the compiler.
Specs are frozen: a loaded scenario can be shared between threads and
reused across runs; vary a knob with :func:`dataclasses.replace`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Dict, Optional, Tuple

from repro.scenario.programs import POPULATION_KINDS

__all__ = [
    "Arrival",
    "Level",
    "Population",
    "ScenarioError",
    "ScenarioSpec",
    "TxnClass",
    "load_scenario",
    "load_scenario_text",
    "spec_from_dict",
]


class ScenarioError(ValueError):
    """A scenario spec failed validation (bad TOML, bad field, ...)."""


def _require(condition: bool, where: str, message: str) -> None:
    if not condition:
        raise ScenarioError("%s: %s" % (where, message))


def _check_number(
    value: Any, where: str, minimum: float = None, maximum: float = None
) -> float:
    _require(
        isinstance(value, (int, float)) and not isinstance(value, bool),
        where,
        "expected a number, got %r" % (value,),
    )
    if minimum is not None:
        _require(value >= minimum, where, "must be >= %s" % minimum)
    if maximum is not None:
        _require(value <= maximum, where, "must be <= %s" % maximum)
    return value


def _check_int(value: Any, where: str, minimum: int = None) -> int:
    _require(
        isinstance(value, int) and not isinstance(value, bool),
        where,
        "expected an integer, got %r" % (value,),
    )
    if minimum is not None:
        _require(value >= minimum, where, "must be >= %s" % minimum)
    return value


@dataclass(frozen=True)
class Population:
    """A group of same-ADT objects, e.g. ``acct0 .. acct31``.

    ``zipf_skew`` skews access *within* the population: rank 0
    (``<name>0``) is the hottest object.  ``initial`` seeds the ADT's
    starting value where that is meaningful (counters, bank balances).
    """

    name: str
    kind: str = "register"
    count: int = 16
    initial: int = 0
    zipf_skew: float = 0.0

    def __post_init__(self) -> None:
        where = "population %r" % (self.name,)
        _require(
            isinstance(self.name, str) and self.name.isidentifier(),
            where,
            "name must be an identifier, got %r" % (self.name,),
        )
        _require(
            self.kind in POPULATION_KINDS,
            where,
            "unknown kind %r (choose from %s)"
            % (self.kind, ", ".join(sorted(POPULATION_KINDS))),
        )
        _check_int(self.count, where + ".count", minimum=1)
        _check_int(self.initial, where + ".initial")
        _check_number(self.zipf_skew, where + ".zipf_skew", minimum=0.0)

    def object_names(self) -> Tuple[str, ...]:
        return tuple(
            "%s%d" % (self.name, index) for index in range(self.count)
        )


@dataclass(frozen=True)
class Level:
    """One level of a transaction class's nested tree.

    A node at this level performs ``accesses`` data accesses and (when
    a deeper level exists) spawns ``fanout`` child subtransactions at
    the next level, ``parallel`` or sequentially.  ``read_fraction``
    and ``access_time`` set the level's read/write mix and per-access
    duration -- a long-running analytic class is simply a level with
    ``read_fraction = 1.0`` and a large ``access_time``; an OLTP write
    burst is a level with a low read fraction and many short accesses.
    ``population`` retargets this level's accesses at a different
    population than the class default.  ``fail_prob`` aborts the
    subtransaction after its work with that probability; ``retries``
    is the parent's re-run budget.
    """

    fanout: int = 0
    parallel: bool = False
    accesses: int = 0
    read_fraction: float = 0.5
    access_time: float = 1.0
    population: Optional[str] = None
    fail_prob: float = 0.0
    retries: int = 0

    def __post_init__(self) -> None:
        where = "level"
        _check_int(self.fanout, where + ".fanout", minimum=0)
        _require(
            isinstance(self.parallel, bool),
            where + ".parallel",
            "expected a boolean, got %r" % (self.parallel,),
        )
        _check_int(self.accesses, where + ".accesses", minimum=0)
        _check_number(
            self.read_fraction,
            where + ".read_fraction",
            minimum=0.0,
            maximum=1.0,
        )
        _check_number(self.access_time, where + ".access_time", minimum=0.0)
        if self.population is not None:
            _require(
                isinstance(self.population, str),
                where + ".population",
                "expected a string, got %r" % (self.population,),
            )
        _check_number(
            self.fail_prob, where + ".fail_prob", minimum=0.0, maximum=1.0
        )
        _check_int(self.retries, where + ".retries", minimum=0)


@dataclass(frozen=True)
class TxnClass:
    """A weighted transaction class (an OLTP shape, an analytic scan, ...).

    ``levels[0]`` is the top level; nesting depth is ``len(levels)``.
    ``think_time`` is the client pause after each transaction of this
    class (closed-loop backends).
    """

    name: str
    weight: float = 1.0
    population: Optional[str] = None
    levels: Tuple[Level, ...] = (Level(accesses=2),)
    think_time: float = 0.0

    def __post_init__(self) -> None:
        where = "class %r" % (self.name,)
        _require(
            isinstance(self.name, str) and self.name != "",
            where,
            "name must be a non-empty string",
        )
        _check_number(self.weight, where + ".weight", minimum=0.0)
        _require(
            isinstance(self.levels, tuple) and len(self.levels) >= 1,
            where,
            "needs at least one level",
        )
        for level in self.levels:
            _require(
                isinstance(level, Level),
                where,
                "levels must be Level instances",
            )
        _require(
            any(level.accesses > 0 for level in self.levels),
            where,
            "no level performs any accesses",
        )
        for index, level in enumerate(self.levels):
            last = index == len(self.levels) - 1
            if last:
                _require(
                    level.fanout == 0,
                    where,
                    "deepest level %d must have fanout 0" % index,
                )
            else:
                _require(
                    level.fanout >= 1,
                    where,
                    "level %d has deeper levels but fanout 0" % index,
                )
        _check_number(self.think_time, where + ".think_time", minimum=0.0)

    @property
    def depth(self) -> int:
        return len(self.levels)


@dataclass(frozen=True)
class Arrival:
    """How transactions arrive.

    ``closed``: ``clients`` concurrent slots, each running one
    transaction at a time (``mpl`` in the simulator, worker threads on
    the live backends).  ``poisson``: open-loop arrivals at ``rate``
    per time unit; ``clients`` still caps in-flight concurrency on the
    live backends (connection pool slots).
    """

    process: str = "closed"
    clients: int = 8
    rate: float = 100.0

    def __post_init__(self) -> None:
        where = "arrival"
        _require(
            self.process in ("closed", "poisson"),
            where + ".process",
            "must be 'closed' or 'poisson', got %r" % (self.process,),
        )
        _check_int(self.clients, where + ".clients", minimum=1)
        _check_number(self.rate, where + ".rate", minimum=0.0)
        if self.process == "poisson":
            _require(self.rate > 0.0, where + ".rate", "must be > 0")


@dataclass(frozen=True)
class ScenarioSpec:
    """One complete declarative scenario."""

    name: str
    description: str = ""
    transactions: int = 100
    arrival: Arrival = field(default_factory=Arrival)
    populations: Tuple[Population, ...] = ()
    classes: Tuple[TxnClass, ...] = ()
    #: Optional shard/site affinities: ``((population_name, index), ...)``,
    #: sorted; loaded from a ``[placement]`` TOML table.  Consumed by
    #: the sharded backend (worker affinity) and the dist topology
    #: builder (site affinity); other backends ignore it.
    placement: Tuple[Tuple[str, int], ...] = ()

    def __post_init__(self) -> None:
        where = "scenario %r" % (self.name,)
        _require(
            isinstance(self.name, str) and self.name != "",
            "scenario",
            "name must be a non-empty string",
        )
        _require(
            isinstance(self.description, str),
            where + ".description",
            "expected a string",
        )
        _check_int(self.transactions, where + ".transactions", minimum=1)
        _require(
            isinstance(self.arrival, Arrival),
            where,
            "arrival must be an Arrival",
        )
        _require(
            len(self.populations) >= 1, where, "needs >= 1 population"
        )
        _require(len(self.classes) >= 1, where, "needs >= 1 class")
        seen = set()
        for population in self.populations:
            _require(
                isinstance(population, Population),
                where,
                "populations must be Population instances",
            )
            _require(
                population.name not in seen,
                where,
                "duplicate population %r" % population.name,
            )
            seen.add(population.name)
        _require(
            sum(cls.weight for cls in self.classes) > 0.0,
            where,
            "class weights sum to zero",
        )
        names = set()
        for cls in self.classes:
            _require(
                isinstance(cls, TxnClass),
                where,
                "classes must be TxnClass instances",
            )
            _require(
                cls.name not in names,
                where,
                "duplicate class %r" % cls.name,
            )
            names.add(cls.name)
            targets = [cls.population] + [
                level.population for level in cls.levels
            ]
            for target in targets:
                _require(
                    target is None or target in seen,
                    where,
                    "class %r targets unknown population %r"
                    % (cls.name, target),
                )
        _require(
            isinstance(self.placement, tuple),
            where + ".placement",
            "expected a tuple of (population, affinity) pairs",
        )
        placed = set()
        for entry in self.placement:
            _require(
                isinstance(entry, tuple) and len(entry) == 2,
                where + ".placement",
                "expected (population, affinity) pairs, got %r" % (entry,),
            )
            target, affinity = entry
            _require(
                isinstance(target, str) and target in seen,
                where + ".placement",
                "unknown population %r" % (target,),
            )
            _require(
                target not in placed,
                where + ".placement",
                "duplicate population %r" % (target,),
            )
            placed.add(target)
            _check_int(
                affinity,
                "%s.placement[%s]" % (where, target),
                minimum=0,
            )

    def placement_map(self) -> Dict[str, int]:
        """Per-object affinities (populations expanded to objects).

        An affinity is an abstract home index: the sharded backend
        folds it onto its worker count (``affinity % workers``), the
        dist topology builder onto its site count.  Objects of
        unplaced populations are absent -- consumers fall back to
        their default (CRC32 / round-robin) for those.
        """
        affinities = dict(self.placement)
        mapping: Dict[str, int] = {}
        for population in self.populations:
            affinity = affinities.get(population.name)
            if affinity is None:
                continue
            for object_name in population.object_names():
                mapping[object_name] = affinity
        return mapping

    def population(self, name: Optional[str]) -> Population:
        """Resolve a population reference (``None`` -> the first one)."""
        if name is None:
            return self.populations[0]
        for population in self.populations:
            if population.name == name:
                return population
        raise ScenarioError("unknown population %r" % (name,))


# ----------------------------------------------------------------------
# Dict / TOML loading
# ----------------------------------------------------------------------
def _build(cls, data: Any, where: str):
    """Construct dataclass *cls* from a TOML table, strictly."""
    _require(
        isinstance(data, dict),
        where,
        "expected a table, got %r" % type(data).__name__,
    )
    allowed = {f.name for f in fields(cls)}
    unknown = set(data) - allowed
    _require(
        not unknown,
        where,
        "unknown key(s) %s (allowed: %s)"
        % (", ".join(sorted(unknown)), ", ".join(sorted(allowed))),
    )
    try:
        return cls(**data)
    except TypeError as exc:
        raise ScenarioError("%s: %s" % (where, exc)) from None


def spec_from_dict(data: Any) -> ScenarioSpec:
    """Build and validate a :class:`ScenarioSpec` from plain data.

    The shape mirrors the TOML layout: scalar scenario keys at the
    top, an ``arrival`` table, ``population`` and ``class`` arrays of
    tables, with ``level`` arrays inside each class.  Raises
    :class:`ScenarioError` on any problem.
    """
    _require(
        isinstance(data, dict),
        "scenario",
        "expected a table at the top level, got %r"
        % type(data).__name__,
    )
    data = dict(data)
    arrival = _build(Arrival, data.pop("arrival", {}), "arrival")
    placement_data = data.pop("placement", {})
    _require(
        isinstance(placement_data, dict),
        "placement",
        "expected a table of population = affinity entries",
    )
    placement = tuple(sorted(placement_data.items()))
    populations = data.pop("population", [])
    _require(
        isinstance(populations, list),
        "population",
        "expected an array of tables",
    )
    populations = tuple(
        _build(Population, entry, "population[%d]" % index)
        for index, entry in enumerate(populations)
    )
    classes_data = data.pop("class", [])
    _require(
        isinstance(classes_data, list),
        "class",
        "expected an array of tables",
    )
    classes = []
    for index, entry in enumerate(classes_data):
        where = "class[%d]" % index
        _require(
            isinstance(entry, dict),
            where,
            "expected a table, got %r" % type(entry).__name__,
        )
        entry = dict(entry)
        levels_data = entry.pop("level", None)
        if levels_data is not None:
            _require(
                isinstance(levels_data, list) and levels_data,
                where + ".level",
                "expected a non-empty array of tables",
            )
            entry["levels"] = tuple(
                _build(Level, level, "%s.level[%d]" % (where, depth))
                for depth, level in enumerate(levels_data)
            )
        classes.append(_build(TxnClass, entry, where))
    data["arrival"] = arrival
    data["populations"] = populations
    data["classes"] = tuple(classes)
    if placement:
        data["placement"] = placement
    return _build(ScenarioSpec, data, "scenario")


def load_scenario_text(text: str) -> ScenarioSpec:
    """Parse scenario TOML source into a validated spec."""
    try:
        import tomllib
    except ImportError as exc:  # pragma: no cover - py < 3.11
        raise ScenarioError(
            "TOML scenario loading needs Python >= 3.11 (tomllib); "
            "build specs with spec_from_dict instead"
        ) from exc
    try:
        data = tomllib.loads(text)
    except tomllib.TOMLDecodeError as exc:
        raise ScenarioError("invalid TOML: %s" % exc) from None
    return spec_from_dict(data)


def load_scenario(path: str) -> ScenarioSpec:
    """Load a scenario spec from a TOML file."""
    with open(path, "rb") as handle:
        raw = handle.read()
    try:
        text = raw.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise ScenarioError("%s: not UTF-8 (%s)" % (path, exc)) from None
    try:
        return load_scenario_text(text)
    except ScenarioError as exc:
        raise ScenarioError("%s: %s" % (path, exc)) from None


def _as_dict(spec: ScenarioSpec) -> Dict[str, Any]:
    """The canonical plain-data form (used by digests and reports).

    ``placement`` appears only when non-empty, so pre-placement specs
    keep their digests (placement does not change the logical op
    stream anyway -- only where objects live).
    """
    data = _as_dict_base(spec)
    if spec.placement:
        data["placement"] = {
            name: affinity for name, affinity in spec.placement
        }
    return data


def _as_dict_base(spec: ScenarioSpec) -> Dict[str, Any]:
    return {
        "name": spec.name,
        "transactions": spec.transactions,
        "arrival": {
            "process": spec.arrival.process,
            "clients": spec.arrival.clients,
            "rate": spec.arrival.rate,
        },
        "population": [
            {
                "name": population.name,
                "kind": population.kind,
                "count": population.count,
                "initial": population.initial,
                "zipf_skew": population.zipf_skew,
            }
            for population in spec.populations
        ],
        "class": [
            {
                "name": cls.name,
                "weight": cls.weight,
                "population": cls.population,
                "think_time": cls.think_time,
                "level": [
                    {
                        "fanout": level.fanout,
                        "parallel": level.parallel,
                        "accesses": level.accesses,
                        "read_fraction": level.read_fraction,
                        "access_time": level.access_time,
                        "population": level.population,
                        "fail_prob": level.fail_prob,
                        "retries": level.retries,
                    }
                    for level in cls.levels
                ],
            }
            for cls in spec.classes
        ],
    }
