"""Scenario drivers: one compiled workload, four execution backends.

Every backend implements the same small protocol::

    driver = get_driver("sim")     # sim | threadsafe | sharded | dist | serve
    result = driver.run(compiled, scheme="moss-rw", seed=3, ...)

and returns a :class:`ScenarioResult` -- committed counts, throughput,
latency percentiles, the backend's own extras, and the digest of the
logical operation stream it drove.  The deterministic backends (sim,
threadsafe, dist) compile from spec + seed alone, so the same spec +
seed reports the same digest on each of them; the cross-backend tests
and benchmark E24 assert that equality.

* ``sim``        -- the DES runner (:func:`repro.sim.run_simulation`):
  simulated time, deterministic end to end, honours the arrival
  process (closed mpl or open-loop Poisson).
* ``threadsafe`` -- real OS threads over
  :class:`~repro.engine.threadsafe.ThreadSafeEngine`: ``clients``
  workers execute the transaction list with blocking waits and
  wound-wait retries; the *work* is deterministic (and verified
  against the plan), wall-clock timings are not.
* ``sharded``    -- the multiprocess engine (:mod:`repro.shard`): the
  threadsafe drive loop over ``workers`` worker *processes* with a
  real cross-shard 2PC coordinator; honours ``[placement]`` sections.
* ``dist``       -- the distributed runner: the same programs over a
  uniform multi-site topology with hierarchical 2PC costs.
* ``serve``      -- a live ``repro.serve`` server: the full nested
  tree is driven over TCP (``begin``/``child``/``read``/``write``),
  honouring think times and per-class traffic shape.

The threadsafe and serve drivers share one plan walker
(:func:`_run_plan`) parameterised over a transaction *port*, so
failure injection and retry budgets behave identically on both.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.core.sampling import RngStreams
from repro.errors import (
    InvalidTransactionState,
    LockDenied,
    TransactionAborted,
)
from repro.obs.metrics import percentile
from repro.scenario.compiler import CompiledScenario
from repro.scenario.programs import AccessOp, Block
from repro.scenario.spec import ScenarioError

__all__ = [
    "Driver",
    "ScenarioResult",
    "driver_names",
    "get_driver",
]


@dataclass
class ScenarioResult:
    """What one scenario run reports, backend-independent."""

    scenario: str
    backend: str
    scheme: str
    seed: int
    transactions: int
    committed: int = 0
    aborted: int = 0
    retries: int = 0
    ops: int = 0
    #: Simulated time units (sim/dist) or wall seconds (threadsafe/serve).
    makespan: float = 0.0
    latencies: List[float] = field(default_factory=list)
    digest: str = ""
    extras: Dict[str, Any] = field(default_factory=dict)

    @property
    def throughput(self) -> float:
        if self.makespan <= 0.0:
            return 0.0
        return self.committed / self.makespan

    def latency(self, fraction: float) -> float:
        return percentile(self.latencies, fraction)

    def row(self) -> Dict[str, Any]:
        """A flat dict for league tables and JSON reports."""
        return {
            "scenario": self.scenario,
            "backend": self.backend,
            "scheme": self.scheme,
            "seed": self.seed,
            "transactions": self.transactions,
            "committed": self.committed,
            "aborted": self.aborted,
            "retries": self.retries,
            "ops": self.ops,
            "throughput": round(self.throughput, 3),
            "p50_latency": round(self.latency(0.50), 3),
            "p95_latency": round(self.latency(0.95), 3),
            "makespan": round(self.makespan, 3),
            "digest": self.digest[:16],
        }

    def render(self) -> str:
        lines = [
            "scenario %s on %s (%s, seed %d): %d/%d committed, "
            "%d aborted, %d retries"
            % (
                self.scenario,
                self.backend,
                self.scheme,
                self.seed,
                self.committed,
                self.transactions,
                self.aborted,
                self.retries,
            ),
            "throughput : %.3f txn/unit over makespan %.3f"
            % (self.throughput, self.makespan),
            "latency    : p50=%.3f p95=%.3f p99=%.3f"
            % (
                self.latency(0.50),
                self.latency(0.95),
                self.latency(0.99),
            ),
            "digest     : %s" % self.digest,
        ]
        for key in sorted(self.extras):
            lines.append("%-11s: %s" % (key, self.extras[key]))
        return "\n".join(lines)


class Driver:
    """Base scenario driver; subclasses set ``name`` and ``_run``."""

    name = "abstract"

    def run(
        self,
        compiled: CompiledScenario,
        scheme: str = "moss-rw",
        **options: Any,
    ) -> ScenarioResult:
        result = ScenarioResult(
            scenario=compiled.spec.name,
            backend=self.name,
            scheme=str(scheme),
            seed=compiled.seed,
            transactions=len(compiled.programs),
            digest=compiled.digest(),
        )
        self._run(compiled, scheme, result, options)
        return result

    def _run(self, compiled, scheme, result, options) -> None:
        raise NotImplementedError


# ----------------------------------------------------------------------
# Simulation backends (sim, dist)
# ----------------------------------------------------------------------
class SimDriver(Driver):
    """The discrete-event simulator: deterministic simulated time."""

    name = "sim"

    def _run(self, compiled, scheme, result, options) -> None:
        from repro.sim import SimulationConfig, run_simulation

        spec = compiled.spec
        config = SimulationConfig(
            mpl=spec.arrival.clients,
            policy=scheme,
            seed=compiled.seed,
            arrival_rate=(
                spec.arrival.rate
                if spec.arrival.process == "poisson"
                else None
            ),
        )
        metrics = run_simulation(
            compiled.programs,
            compiled.store(),
            config,
            observer=options.get("observer"),
            auditor=options.get("auditor"),
        )
        result.committed = metrics.committed
        result.aborted = result.transactions - metrics.committed
        result.retries = metrics.program_restarts
        result.ops = metrics.accesses_done
        result.makespan = metrics.makespan
        result.latencies = list(metrics.latencies)
        result.extras.update(
            {
                "deadlock_aborts": metrics.deadlock_aborts,
                "injected_aborts": metrics.injected_aborts,
                "denials": metrics.lock_denials,
            }
        )


class DistDriver(Driver):
    """The distributed runner: multi-site topology + 2PC costs."""

    name = "dist"

    def _run(self, compiled, scheme, result, options) -> None:
        from repro.dist import (
            DistributedConfig,
            run_distributed_simulation,
            uniform_topology,
        )

        spec = compiled.spec
        store = compiled.store()
        topology = uniform_topology(
            [obj.name for obj in store],
            sites=int(options.get("sites", 4)),
            affinities=spec.placement_map() or None,
        )
        if "latency" in options:
            topology.one_way_latency = float(options["latency"])
        config = DistributedConfig(
            mpl=spec.arrival.clients,
            policy=scheme,
            seed=compiled.seed,
            arrival_rate=(
                spec.arrival.rate
                if spec.arrival.process == "poisson"
                else None
            ),
        )
        metrics = run_distributed_simulation(
            compiled.programs, store, topology, config,
            observer=options.get("observer"),
        )
        result.committed = metrics.committed
        result.aborted = result.transactions - metrics.committed
        result.retries = metrics.program_restarts
        result.ops = metrics.accesses_done
        result.makespan = metrics.makespan
        result.latencies = list(metrics.latencies)
        result.extras.update(
            {
                "sites": int(options.get("sites", 4)),
                "messages": metrics.messages,
                "remote_fraction": round(metrics.remote_fraction, 3),
                "commit_rounds": metrics.commit_rounds,
            }
        )


# ----------------------------------------------------------------------
# The shared plan walker (threadsafe + serve)
# ----------------------------------------------------------------------
def _run_plan(
    port,
    block: Block,
    fail_rng,
    on_access: Optional[Callable[[Block, AccessOp], None]] = None,
) -> int:
    """Execute *block*'s steps against a transaction *port*.

    A port is anything with ``begin_child() -> port``,
    ``perform(object_name, operation)``, ``commit()`` and ``abort()``
    -- a :class:`~repro.engine.threadsafe.ThreadSafeTransaction`
    directly, or the serve driver's wire adapter.  Child blocks run as
    subtransactions with the block's failure injection and retry
    budget (draws from *fail_rng*); parallel blocks run sequentially
    (sibling concurrency is the DES backends' dimension -- the live
    backends get their concurrency from clients instead).  Returns the
    number of accesses performed.
    """
    ops = 0
    for step in block.steps:
        if isinstance(step, AccessOp):
            port.perform(step.object_name, step.operation)
            ops += 1
            if on_access is not None:
                on_access(block, step)
        else:
            tries_left = step.retries
            while True:
                child = port.begin_child()
                ops += _run_plan(child, step, fail_rng, on_access)
                if (
                    step.fail_prob
                    and fail_rng.random() < step.fail_prob
                ):
                    child.abort()
                    if tries_left > 0:
                        tries_left -= 1
                        continue
                else:
                    child.commit()
                break
    return ops


class _RetryExhausted(Exception):
    """A transaction burned its whole retry budget without committing."""


class ThreadSafeDriver(Driver):
    """Worker threads over the blocking facade (real concurrency).

    ``arrival.clients`` threads split the transaction list round-robin
    and run it to completion; a wounded or denied transaction retries
    from scratch (fresh top level) up to ``max_retries`` times with a
    small backoff.  The executed operation stream is checked against
    the compiled plan -- every planned access runs, nothing unplanned
    does -- which is what makes the reported digest meaningful on a
    backend whose interleavings are scheduled by the OS.
    """

    name = "threadsafe"

    def _run(self, compiled, scheme, result, options) -> None:
        from repro.engine.threadsafe import ThreadSafeEngine

        facade = ThreadSafeEngine(
            compiled.store(),
            policy=scheme,
            stripes=options.get("stripes"),
        )
        self._drive(compiled, facade, result, options)

    def _drive(self, compiled, facade, result, options) -> None:
        spec = compiled.spec
        max_retries = int(options.get("max_retries", 100))
        op_timeout = float(options.get("op_timeout", 30.0))
        pace = bool(options.get("pace", False))
        workers = min(spec.arrival.clients, len(compiled.programs)) or 1
        streams = RngStreams(compiled.seed)
        lock = threading.Lock()
        latencies: List[float] = []
        executed: Dict[int, int] = {}
        state = {"committed": 0, "aborted": 0, "retries": 0, "ops": 0}
        errors: List[BaseException] = []

        def run_txn(index: int) -> None:
            program = compiled.programs[index]
            # Failure injection draws from a per-transaction stream so
            # the outcome sequence is independent of which worker or
            # attempt executes the tree.
            started = time.monotonic()
            ops = 0
            for attempt in range(max_retries + 1):
                fail_rng = streams.stream("fail:%d" % index)
                top = facade.begin_top()
                port = _FacadePort(top, op_timeout)
                try:
                    ops = _run_plan(port, program.body, fail_rng)
                    top.commit()
                except (TransactionAborted, LockDenied):
                    if top.is_active:
                        try:
                            top.abort()
                        except TransactionAborted:
                            pass
                    with lock:
                        state["retries"] += 1
                    # Seeded jitter keeps two wounded workers from
                    # re-colliding in lockstep.
                    time.sleep(
                        0.001 * (1 + fail_rng.random())
                        * min(attempt + 1, 16)
                    )
                    continue
                with lock:
                    state["committed"] += 1
                    state["ops"] += ops
                    executed[index] = ops
                    latencies.append(time.monotonic() - started)
                if spec.classes and pace:
                    time.sleep(compiled.think_times[index])
                return
            with lock:
                state["aborted"] += 1
            raise _RetryExhausted(program.label)

        def worker(worker_id: int) -> None:
            for index in range(
                worker_id, len(compiled.programs), workers
            ):
                try:
                    run_txn(index)
                except _RetryExhausted:
                    continue  # counted as aborted; next transaction
                except BaseException as exc:  # surfaced to the caller
                    with lock:
                        errors.append(exc)
                    return

        threads = [
            threading.Thread(
                target=worker,
                args=(worker_id,),
                name="scenario-%d" % worker_id,
            )
            for worker_id in range(workers)
        ]
        started = time.monotonic()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]
        result.makespan = time.monotonic() - started
        result.committed = state["committed"]
        result.aborted = state["aborted"]
        result.retries = state["retries"]
        result.ops = state["ops"]
        result.latencies = latencies
        # Executed-matches-plan: every committed transaction performed
        # exactly its planned accesses (failed subtrees re-run their
        # own steps, which the plan's access_count already bounds from
        # below).
        planned_short = [
            compiled.programs[i].label
            for i, count in executed.items()
            if count < compiled.programs[i].access_count()
        ]
        if planned_short:
            raise AssertionError(
                "executed fewer accesses than planned: %s"
                % planned_short[:3]
            )
        result.extras["workers"] = workers
        result.extras["engine"] = dict(facade.engine.stats)


class ShardedDriver(ThreadSafeDriver):
    """The multiprocess sharded engine behind the same plan walker.

    Identical drive loop to ``threadsafe`` (same compiled plan, same
    failure injection, same executed-matches-plan check, hence the
    same digest), but the facade is a
    :class:`~repro.shard.ShardedEngine`: ``workers`` option processes
    (default 2), object placement honoured when the spec carries a
    ``[placement]`` section, wound-wait resolved at the coordinator.
    """

    name = "sharded"

    def _run(self, compiled, scheme, result, options) -> None:
        from repro.shard import ShardedEngine

        spec = compiled.spec
        placement = spec.placement_map()
        workers = int(options.get("workers", 2))
        facade = ShardedEngine(
            compiled.store(),
            policy=scheme,
            workers=workers,
            placement=placement or None,
        )
        with facade:
            self._drive(compiled, facade, result, options)
            result.extras["shards"] = facade.shards
            result.extras["placement"] = len(placement)


class _FacadePort:
    """Adapts a :class:`ThreadSafeTransaction` to the plan walker.

    A wound lands while the victim's thread is between calls, so its
    next call on a deep child trips ``_require_active`` and raises
    ``InvalidTransactionState`` -- which reads as handle misuse.  Like
    the serve session's ``_translate_dead``, re-raise that case as
    :class:`~repro.errors.TransactionAborted` so the driver's retry
    loop treats it as the wound it is.
    """

    def __init__(self, txn, op_timeout: float):
        self._txn = txn
        self._op_timeout = op_timeout

    def _translate_dead(self, exc):
        from repro.engine.transaction import TransactionStatus

        if self._txn.status is TransactionStatus.ABORTED:
            raise TransactionAborted(
                self._txn.name, reason="wounded between calls"
            ) from None
        raise exc

    def begin_child(self) -> "_FacadePort":
        try:
            child = self._txn.begin_child()
        except InvalidTransactionState as exc:
            self._translate_dead(exc)
        return _FacadePort(child, self._op_timeout)

    def perform(self, object_name, operation):
        try:
            return self._txn.perform(
                object_name, operation, timeout=self._op_timeout
            )
        except InvalidTransactionState as exc:
            self._translate_dead(exc)

    def commit(self):
        try:
            self._txn.commit()
        except InvalidTransactionState as exc:
            self._translate_dead(exc)

    def abort(self):
        try:
            self._txn.abort()
        except InvalidTransactionState as exc:
            self._translate_dead(exc)


# ----------------------------------------------------------------------
# The live service backend
# ----------------------------------------------------------------------
class _WirePort:
    """Adapts one wire transaction (SyncClient + name) to the walker."""

    def __init__(self, client, txn):
        self._client = client
        self._txn = txn

    def begin_child(self) -> "_WirePort":
        return _WirePort(self._client, self._client.child(self._txn))

    def perform(self, object_name, operation):
        if operation.is_read:
            return self._client.read(
                self._txn,
                object_name,
                kind=operation.kind,
                args=list(operation.args),
            )
        return self._client.write(
            self._txn,
            object_name,
            kind=operation.kind,
            args=list(operation.args),
        )

    def commit(self):
        self._client.commit(self._txn)

    def abort(self):
        self._client.abort(self._txn)


class ServeDriver(Driver):
    """Drive a live ``repro.serve`` server with the full nested trees.

    Requires ``host``/``port`` options (the server must already serve
    the scenario's objects -- start it with ``repro serve --scenario``).
    ``clients`` worker threads each own one connection; transactions
    are assigned round-robin; think times are honoured.  The reported
    scheme is whatever the server runs -- the wire protocol does not
    expose it, so pass ``scheme`` for labelling only.
    """

    name = "serve"

    def _run(self, compiled, scheme, result, options) -> None:
        from repro.serve.client import ServeError, SyncClient, backoff_ms

        host = options.get("host", "127.0.0.1")
        port = options.get("port")
        if port is None:
            raise ScenarioError(
                "the serve backend needs a port= option "
                "(a running `repro serve` instance)"
            )
        spec = compiled.spec
        max_retries = int(options.get("max_retries", 100))
        pace = bool(options.get("pace", True))
        workers = min(spec.arrival.clients, len(compiled.programs)) or 1
        streams = RngStreams(compiled.seed)
        lock = threading.Lock()
        latencies: List[float] = []
        state = {"committed": 0, "aborted": 0, "retries": 0, "ops": 0}
        # Failure accounting by wire code: admission sheds are load
        # shedding (the server never saw the transaction), txn_aborted
        # is an engine-side abort (wound, MVTO conflict) -- the league
        # table reports them separately.
        shed = {"count": 0, "txn_aborted": 0, "denied": 0}
        errors: List[BaseException] = []

        # The scenario's objects must exist server-side; fail with a
        # typed error (not a hung run) when they do not.
        with SyncClient(host, int(port)) as probe:
            served = set(probe.hello().get("objects") or ())
        missing = [
            name
            for population in spec.populations
            for name in population.object_names()
            if name not in served
        ]
        if missing:
            raise ScenarioError(
                "server does not serve scenario object(s) %s -- start "
                "it with `repro serve --scenario`"
                % ", ".join(missing[:5])
            )

        def run_txn(client, index: int) -> None:
            program = compiled.programs[index]
            started = time.monotonic()
            for attempt in range(max_retries + 1):
                fail_rng = streams.stream("fail:%d" % index)
                top_name = None
                try:
                    top_name = client.begin()
                    port_ = _WirePort(client, top_name)
                    ops = _run_plan(port_, program.body, fail_rng)
                    client.commit(top_name)
                except ServeError as exc:
                    if exc.code == "overloaded":
                        with lock:
                            shed["count"] += 1
                    elif exc.code == "txn_aborted":
                        with lock:
                            shed["txn_aborted"] += 1
                    elif exc.code in ("lock_denied", "retry_later"):
                        with lock:
                            shed["denied"] += 1
                    else:
                        raise
                    if top_name is not None:
                        try:
                            client.abort(top_name)
                        except (ServeError, ConnectionError, OSError):
                            pass
                    with lock:
                        state["retries"] += 1
                    time.sleep(
                        backoff_ms(
                            exc.retry_after_ms, attempt + 1, fail_rng
                        )
                        / 1000.0
                    )
                    continue
                with lock:
                    state["committed"] += 1
                    state["ops"] += ops
                    latencies.append(time.monotonic() - started)
                if pace:
                    time.sleep(compiled.think_times[index])
                return
            with lock:
                state["aborted"] += 1
            raise _RetryExhausted(program.label)

        def worker(worker_id: int) -> None:
            try:
                client = SyncClient(host, int(port))
            except OSError as exc:
                with lock:
                    errors.append(exc)
                return
            try:
                for index in range(
                    worker_id, len(compiled.programs), workers
                ):
                    try:
                        run_txn(client, index)
                    except _RetryExhausted:
                        continue  # counted as aborted; keep going
                    except BaseException as exc:
                        with lock:
                            errors.append(exc)
                        return
            finally:
                client.close()

        threads = [
            threading.Thread(
                target=worker,
                args=(worker_id,),
                name="scenario-serve-%d" % worker_id,
            )
            for worker_id in range(workers)
        ]
        started = time.monotonic()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]
        result.makespan = time.monotonic() - started
        result.committed = state["committed"]
        result.aborted = state["aborted"]
        result.retries = state["retries"]
        result.ops = state["ops"]
        result.latencies = latencies
        result.extras["workers"] = workers
        result.extras["shed"] = shed["count"]
        result.extras["txn_aborted"] = shed["txn_aborted"]
        result.extras["denied"] = shed["denied"]


_DRIVERS = {
    driver.name: driver
    for driver in (
        SimDriver(),
        ThreadSafeDriver(),
        ShardedDriver(),
        DistDriver(),
        ServeDriver(),
    )
}


def driver_names() -> List[str]:
    return sorted(_DRIVERS)


def get_driver(name: str) -> Driver:
    try:
        return _DRIVERS[name]
    except KeyError:
        raise ScenarioError(
            "unknown backend %r (choose from %s)"
            % (name, ", ".join(driver_names()))
        ) from None
