"""Executions, schedules and projections.

A *schedule* is the operation subsequence of an execution; because we reason
operationally (as the paper does), schedules -- plain sequences of actions --
are the central object throughout the library.  This module provides the
small algebra used everywhere: projection ``alpha | A`` onto a component,
and the :class:`Execution` record produced by the explorers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Sequence, Tuple

from repro.ioa.automaton import Action, Automaton

Schedule = Tuple[Action, ...]


@dataclass(frozen=True)
class Execution:
    """A finite execution: alternating states and operations.

    ``states[0]`` is the start state; ``states[i + 1]`` is the state after
    ``actions[i]``.  States are the opaque snapshots of the automaton that
    produced the execution.
    """

    actions: Schedule
    states: Tuple[Any, ...] = field(default=(), repr=False)

    def __len__(self) -> int:
        return len(self.actions)

    @property
    def schedule(self) -> Schedule:
        """The operation subsequence of this execution."""
        return self.actions


def schedule_of(actions: Sequence[Action]) -> Schedule:
    """Normalise *actions* into the canonical immutable schedule form."""
    return tuple(actions)


def project(alpha: Sequence[Action], automaton: Automaton) -> Schedule:
    """Return ``alpha | A``: the subsequence of operations of *automaton*.

    Lemma-level fact used constantly in the paper: if ``alpha`` is a schedule
    of a system with component ``A``, then ``alpha | A`` is a schedule of
    ``A``.
    """
    return tuple(action for action in alpha if automaton.has_action(action))


def project_name(
    alpha: Sequence[Action],
    belongs: Callable[[Action], bool],
) -> Schedule:
    """Project *alpha* onto the operations selected by *belongs*.

    Generalises :func:`project` for signature predicates that are not tied
    to an instantiated automaton (e.g. "all operations of transaction T").
    """
    return tuple(action for action in alpha if belongs(action))


def is_subsequence(beta: Sequence[Action], alpha: Sequence[Action]) -> bool:
    """Return True if *beta* is a (not necessarily contiguous) subsequence."""
    position = 0
    for action in alpha:
        if position < len(beta) and beta[position] == action:
            position += 1
    return position == len(beta)


def remove_events(
    alpha: Sequence[Action], removed: Sequence[Action]
) -> Schedule:
    """Return ``alpha - removed``: drop one occurrence of each event.

    The paper writes ``beta(alpha - beta)`` for sequence difference; events
    may repeat, so removal is multiset-style, earliest occurrence first.
    """
    remaining: List[Action] = list(removed)
    kept: List[Action] = []
    for action in alpha:
        if action in remaining:
            remaining.remove(action)
        else:
            kept.append(action)
    return tuple(kept)


def same_events(alpha: Sequence[Action], beta: Sequence[Action]) -> bool:
    """True if *alpha* and *beta* hold the same events (as multisets)."""
    if len(alpha) != len(beta):
        return False
    pool: List[Action] = list(beta)
    for action in alpha:
        if action in pool:
            pool.remove(action)
        else:
            return False
    return not pool
