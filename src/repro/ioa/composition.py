"""Composition of I/O automata.

A set of I/O automata may be composed when their output operation sets are
pairwise disjoint, so every output of the system is triggered by exactly one
component.  During a step, every component that has the operation in its
signature performs it; the others stay put.

Output disjointness is checked dynamically: signatures here are predicates
(the operation alphabets of nested-transaction systems are infinite), so the
check happens per-operation, at application and enumeration time.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Sequence, Tuple

from repro.errors import CompositionError, NotEnabledError
from repro.ioa.automaton import Action, Automaton


class Composition(Automaton):
    """The parallel composition of a sequence of component automata.

    The composition is itself an :class:`~repro.ioa.automaton.Automaton`: an
    operation is an output if it is an output of some component, an input if
    it is an input of some component and an output of none.
    """

    def __init__(self, name: str, components: Sequence[Automaton]):
        super().__init__(name)
        names = [component.name for component in components]
        if len(set(names)) != len(names):
            raise CompositionError("duplicate component names: %r" % (names,))
        self.components: Tuple[Automaton, ...] = tuple(components)
        self._by_name = {component.name: component for component in components}

    def component(self, name: str) -> Automaton:
        """Return the component automaton called *name*."""
        return self._by_name[name]

    # ------------------------------------------------------------------
    # Signature
    # ------------------------------------------------------------------
    def _output_owners(self, action: Action) -> List[Automaton]:
        return [c for c in self.components if c.is_output(action)]

    def is_output(self, action: Action) -> bool:
        return any(c.is_output(action) for c in self.components)

    def is_input(self, action: Action) -> bool:
        if self.is_output(action):
            return False
        return any(c.is_input(action) for c in self.components)

    # ------------------------------------------------------------------
    # Transitions
    # ------------------------------------------------------------------
    def enabled_outputs(self) -> Iterator[Action]:
        for component in self.components:
            for action in component.enabled_outputs():
                yield action

    def output_enabled(self, action: Action) -> bool:
        owners = self._output_owners(action)
        if not owners:
            return False
        if len(owners) > 1:
            raise CompositionError(
                "operation %r is an output of several components: %r"
                % (action, [owner.name for owner in owners])
            )
        return owners[0].output_enabled(action)

    def _apply(self, action: Action) -> None:
        participants = [c for c in self.components if c.has_action(action)]
        if not participants:
            raise NotEnabledError(
                "%s: no component has action %r" % (self.name, action)
            )
        for component in participants:
            component.apply(action)

    def apply(self, action: Action) -> None:
        # Validate single ownership before mutating anything.
        if self.is_output(action):
            owners = self._output_owners(action)
            if len(owners) > 1:
                raise CompositionError(
                    "operation %r is an output of several components: %r"
                    % (action, [owner.name for owner in owners])
                )
            if not owners[0].output_enabled(action):
                raise NotEnabledError(
                    "%s: output %r not enabled at %s"
                    % (self.name, action, owners[0].name)
                )
            self._apply(action)
            return
        if self.is_input(action):
            self._apply(action)
            return
        raise NotEnabledError(
            "%s: action %r not in signature" % (self.name, action)
        )

    # ------------------------------------------------------------------
    # State snapshots
    # ------------------------------------------------------------------
    def snapshot(self) -> Any:
        return tuple(component.snapshot() for component in self.components)

    def restore(self, state: Any) -> None:
        for component, piece in zip(self.components, state):
            component.restore(piece)
