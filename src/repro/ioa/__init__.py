"""I/O automaton substrate (Section 2 of the paper).

This package implements the computational model the paper builds on:
input/output automata that interact by synchronising on shared operations,
their composition, executions and schedules, and explorers that enumerate
or sample the schedule space of a composed (closed) system.

Key exports:

* :class:`~repro.ioa.automaton.Automaton` -- base class for components.
* :class:`~repro.ioa.composition.Composition` -- parallel composition with
  pairwise-disjoint outputs.
* :mod:`~repro.ioa.execution` -- schedules and projections.
* :mod:`~repro.ioa.explorer` -- exhaustive and randomised exploration.
"""

from repro.ioa.automaton import Automaton
from repro.ioa.composition import Composition
from repro.ioa.execution import (
    Execution,
    project,
    project_name,
    schedule_of,
)
from repro.ioa.explorer import (
    ExplorationResult,
    explore_exhaustive,
    random_schedule,
    random_schedules,
)

__all__ = [
    "Automaton",
    "Composition",
    "Execution",
    "ExplorationResult",
    "explore_exhaustive",
    "project",
    "project_name",
    "random_schedule",
    "random_schedules",
    "schedule_of",
]
