"""Exploration of the schedule space of a closed composed system.

The nested-transaction systems of :mod:`repro.core` are *closed*: the
environment (the root transaction T0) is itself a component, so every
operation of the composition is an output of exactly one component.
Exploring the system therefore reduces to repeatedly choosing among the
enabled output operations.

Two explorers are provided:

* :func:`explore_exhaustive` -- bounded DFS enumerating every schedule up to
  a depth limit (used to *prove by enumeration* properties of small system
  types, e.g. the exclusive-locking degeneration E8).
* :func:`random_schedule` / :func:`random_schedules` -- seeded random walks
  (used by the statistical validation harness, E1-E7).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Iterator, List, Optional, Tuple

from repro.ioa.automaton import Action, Automaton, sorted_actions
from repro.ioa.execution import Schedule


@dataclass
class ExplorationResult:
    """Summary of an exhaustive exploration."""

    schedules: List[Schedule] = field(default_factory=list)
    maximal_schedules: List[Schedule] = field(default_factory=list)
    truncated: bool = False
    states_visited: int = 0

    def __len__(self) -> int:
        return len(self.schedules)


def explore_exhaustive(
    automaton: Automaton,
    max_depth: int,
    max_schedules: Optional[int] = None,
    prune: Optional[Callable[[Schedule], bool]] = None,
    collect_all: bool = True,
) -> ExplorationResult:
    """Enumerate schedules of *automaton* by depth-first search.

    Parameters
    ----------
    automaton:
        The (usually composed) closed system to explore.  Its state is
        restored on return.
    max_depth:
        Maximum schedule length.  Schedules cut off at this bound are
        recorded and ``truncated`` is set.
    max_schedules:
        Optional cap on the number of schedules enumerated.
    prune:
        Optional predicate on the schedule so far; when it returns True the
        branch is abandoned (the pruned prefix is still recorded as a
        schedule when *collect_all* is set).
    collect_all:
        When True every prefix is recorded in ``schedules``; otherwise only
        maximal schedules (no enabled outputs, or depth bound hit) are kept.

    Returns a :class:`ExplorationResult`.  The empty schedule is always a
    schedule of the system and is included when *collect_all* is set.
    """
    result = ExplorationResult()
    saved = automaton.snapshot()

    def budget_left() -> bool:
        if max_schedules is None:
            return True
        count = len(result.schedules) + len(result.maximal_schedules)
        return count < max_schedules

    def visit(prefix: Tuple[Action, ...]) -> None:
        result.states_visited += 1
        if collect_all:
            result.schedules.append(prefix)
        if not budget_left():
            result.truncated = True
            return
        if prune is not None and prefix and prune(prefix):
            return
        if len(prefix) >= max_depth:
            result.truncated = True
            result.maximal_schedules.append(prefix)
            return
        enabled = sorted_actions(set(automaton.enabled_outputs()))
        if not enabled:
            result.maximal_schedules.append(prefix)
            return
        here = automaton.snapshot()
        for action in enabled:
            if not budget_left():
                result.truncated = True
                break
            automaton.apply(action)
            visit(prefix + (action,))
            automaton.restore(here)

    try:
        visit(())
    finally:
        automaton.restore(saved)
    return result


def random_schedule(
    automaton: Automaton,
    max_steps: int,
    rng: random.Random,
    weight: Optional[Callable[[Action], float]] = None,
) -> Schedule:
    """Run one seeded random walk and return the resulting schedule.

    At each step one enabled output is chosen uniformly (or by *weight*);
    the walk stops when nothing is enabled or *max_steps* is reached.  The
    automaton's state is restored on return.
    """
    saved = automaton.snapshot()
    trace: List[Action] = []
    try:
        for _ in range(max_steps):
            enabled = sorted_actions(set(automaton.enabled_outputs()))
            if not enabled:
                break
            if weight is None:
                action = rng.choice(enabled)
            else:
                weights = [
                    max(weight(candidate), 0.0)
                    for candidate in enabled
                ]
                total = sum(weights)
                if total <= 0.0:
                    action = rng.choice(enabled)
                else:
                    action = rng.choices(enabled, weights=weights, k=1)[0]
            automaton.apply(action)
            trace.append(action)
    finally:
        automaton.restore(saved)
    return tuple(trace)


def random_schedules(
    automaton: Automaton,
    count: int,
    max_steps: int,
    seed: int = 0,
    weight: Optional[Callable[[Action], float]] = None,
) -> Iterator[Schedule]:
    """Yield *count* independent seeded random schedules."""
    rng = random.Random(seed)
    for _ in range(count):
        yield random_schedule(automaton, max_steps, rng, weight=weight)
