"""The I/O automaton base class.

An I/O automaton (Section 2 of the paper) has a set of states with
designated start states, a set of *operations* each classified as input or
output, and a transition relation.  The model's **Input Condition** requires
every input operation to be enabled in every state: an automaton may never
refuse an input.

This implementation keeps the state *inside* the automaton object (mutable,
for speed) and exposes :meth:`Automaton.snapshot` / :meth:`Automaton.restore`
so explorers can backtrack.  Operations are arbitrary hashable values -- in
:mod:`repro.core` they are the frozen event dataclasses of
:mod:`repro.core.events`.

Nondeterminism is expressed in two places:

* several output operations may be enabled at once
  (:meth:`Automaton.enabled_outputs` enumerates them), and
* an operation may itself be parameterised (e.g. a scheduler may emit
  ``CREATE(T)`` for any eligible ``T``); such families are expanded into
  individual operations by ``enabled_outputs``.
"""

from __future__ import annotations

import copy
from typing import Any, Hashable, Iterable, Iterator, List, Sequence

from repro.errors import NotEnabledError

Action = Hashable


class Automaton:
    """Base class for I/O automaton components.

    Subclasses must implement :meth:`is_input`, :meth:`is_output`,
    :meth:`enabled_outputs` and :meth:`_apply`, and should list the names of
    their mutable state attributes in :attr:`state_attrs` so that the default
    snapshot/restore machinery can deep-copy them.
    """

    #: Names of instance attributes that constitute the automaton state.
    state_attrs: Sequence[str] = ()

    def __init__(self, name: str):
        self.name = name

    # ------------------------------------------------------------------
    # Signature
    # ------------------------------------------------------------------
    def is_input(self, action: Action) -> bool:
        """Return True if *action* is an input operation of this automaton."""
        raise NotImplementedError

    def is_output(self, action: Action) -> bool:
        """Return True if *action* is an output operation of this automaton."""
        raise NotImplementedError

    def has_action(self, action: Action) -> bool:
        """Return True if *action* is in this automaton's signature."""
        return self.is_input(action) or self.is_output(action)

    # ------------------------------------------------------------------
    # Transitions
    # ------------------------------------------------------------------
    def enabled_outputs(self) -> Iterator[Action]:
        """Yield every output operation enabled in the current state."""
        raise NotImplementedError

    def output_enabled(self, action: Action) -> bool:
        """Return True if *action* is an output enabled in the current state.

        The default implementation scans :meth:`enabled_outputs`; subclasses
        with large enabled sets may override it with a direct precondition
        check.
        """
        return any(action == candidate for candidate in self.enabled_outputs())

    def _apply(self, action: Action) -> None:
        """Perform the state change for *action* (already validated)."""
        raise NotImplementedError

    def apply(self, action: Action) -> None:
        """Execute one step of the automaton.

        Inputs are always accepted (the Input Condition).  Outputs are only
        accepted when enabled; applying a disabled output raises
        :class:`~repro.errors.NotEnabledError`.
        """
        if self.is_input(action):
            self._apply(action)
            return
        if self.is_output(action):
            if not self.output_enabled(action):
                raise NotEnabledError(
                    "%s: output %r not enabled" % (self.name, action)
                )
            self._apply(action)
            return
        raise NotEnabledError(
            "%s: action %r not in signature" % (self.name, action)
        )

    # ------------------------------------------------------------------
    # State snapshots (for explorers)
    # ------------------------------------------------------------------
    def snapshot(self) -> Any:
        """Return an opaque, independent copy of the current state."""
        return copy.deepcopy(
            {attr: getattr(self, attr) for attr in self.state_attrs}
        )

    def restore(self, state: Any) -> None:
        """Restore a state previously returned by :meth:`snapshot`."""
        for attr, value in copy.deepcopy(state).items():
            setattr(self, attr, value)

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def run(self, actions: Iterable[Action]) -> "Automaton":
        """Apply *actions* in order; return self for chaining."""
        for action in actions:
            self.apply(action)
        return self

    def accepts(self, actions: Iterable[Action]) -> bool:
        """Return True if *actions* is a schedule of this automaton.

        The automaton state is restored afterwards, so this is a pure test.
        """
        saved = self.snapshot()
        try:
            for action in actions:
                self.apply(action)
            return True
        except NotEnabledError:
            return False
        finally:
            self.restore(saved)

    def enabled_after(self, actions: Sequence[Action], action: Action) -> bool:
        """Return True if *action* is enabled after running *actions*.

        Implements the paper's "pi is enabled after a schedule alpha":
        inputs are enabled after every schedule; outputs are tested against
        the state reached.  The current state is preserved.
        """
        saved = self.snapshot()
        try:
            for step in actions:
                self.apply(step)
            if self.is_input(action):
                return True
            return self.output_enabled(action)
        except NotEnabledError:
            return False
        finally:
            self.restore(saved)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<%s %r>" % (type(self).__name__, self.name)


def sorted_actions(actions: Iterable[Action]) -> List[Action]:
    """Return *actions* in a deterministic order (by repr).

    Explorers use this so exhaustive enumeration and seeded random walks are
    reproducible across runs regardless of set/dict iteration order.
    """
    return sorted(actions, key=repr)
