"""Lock-contention profiling: where does blocked time go?

Aggregates, per shared object, how often accesses were denied, how long
transactions waited, and *who* waited on *whom* (top-level waiter/holder
pairs) -- the questions a production operator asks when throughput
drops.  Fed by the :class:`~repro.obs.observer.Observer` from the
engine's denial path and the blocking layers' wait measurements.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

from repro.core.names import TransactionName, pretty_name


def _top(name: TransactionName) -> TransactionName:
    return name[:1]


@dataclass
class ObjectContention:
    """Aggregate contention facts for one object."""

    object_name: str
    denials: int = 0
    waits: int = 0
    total_wait: float = 0.0
    max_wait: float = 0.0
    #: (waiter top-level, holder top-level) -> denial count
    pairs: Dict[Tuple[TransactionName, TransactionName], int] = field(
        default_factory=dict
    )

    @property
    def mean_wait(self) -> float:
        if self.waits == 0:
            return 0.0
        return self.total_wait / self.waits

    def hottest_pairs(
        self, limit: int = 3
    ) -> List[Tuple[Tuple[TransactionName, TransactionName], int]]:
        return sorted(
            self.pairs.items(), key=lambda item: (-item[1], item[0])
        )[:limit]


class ContentionProfiler:
    """Per-object wait-time aggregation with a top-N hot-object view."""

    def __init__(self) -> None:
        self.objects: Dict[str, ObjectContention] = {}

    def _entry(self, object_name: str) -> ObjectContention:
        found = self.objects.get(object_name)
        if found is None:
            found = self.objects[object_name] = ObjectContention(
                object_name
            )
        return found

    def record_denial(
        self,
        object_name: str,
        waiter: TransactionName,
        blockers: Iterable[TransactionName],
    ) -> None:
        """One denied access: count it and its waiter/holder pairs."""
        entry = self._entry(object_name)
        entry.denials += 1
        waiter_top = _top(waiter)
        for blocker in blockers:
            pair = (waiter_top, _top(blocker))
            entry.pairs[pair] = entry.pairs.get(pair, 0) + 1

    def record_wait(
        self,
        object_name: str,
        waiter: TransactionName,
        waited: float,
    ) -> None:
        """One completed wait of *waited* time units on *object_name*."""
        entry = self._entry(object_name)
        entry.waits += 1
        entry.total_wait += waited
        if waited > entry.max_wait:
            entry.max_wait = waited

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def top(self, limit: int = 10) -> List[ObjectContention]:
        """The *limit* hottest objects by total wait time, then denials."""
        return sorted(
            self.objects.values(),
            key=lambda entry: (
                -entry.total_wait,
                -entry.denials,
                entry.object_name,
            ),
        )[:limit]

    def snapshot(self) -> List[Dict[str, object]]:
        """JSON-ready dump, hottest first."""
        return [
            {
                "object": entry.object_name,
                "denials": entry.denials,
                "waits": entry.waits,
                "total_wait": round(entry.total_wait, 6),
                "mean_wait": round(entry.mean_wait, 6),
                "max_wait": round(entry.max_wait, 6),
                "pairs": [
                    {
                        "waiter": pretty_name(waiter),
                        "holder": pretty_name(holder),
                        "count": count,
                    }
                    for (waiter, holder), count in entry.hottest_pairs()
                ],
            }
            for entry in self.top(limit=len(self.objects))
        ]

    def render(self, limit: int = 10) -> str:
        """The hot-object table as aligned plain text."""
        rows = self.top(limit)
        if not rows:
            return "no lock contention recorded"
        lines = [
            "%-16s %8s %8s %12s %12s %12s  %s"
            % (
                "object", "denials", "waits", "total_wait",
                "mean_wait", "max_wait", "hottest pairs",
            )
        ]
        for entry in rows:
            pairs = ", ".join(
                "%s<-%s x%d"
                % (pretty_name(waiter), pretty_name(holder), count)
                for (waiter, holder), count in entry.hottest_pairs()
            )
            lines.append(
                "%-16s %8d %8d %12.4f %12.4f %12.4f  %s"
                % (
                    entry.object_name,
                    entry.denials,
                    entry.waits,
                    entry.total_wait,
                    entry.mean_wait,
                    entry.max_wait,
                    pairs or "-",
                )
            )
        return "\n".join(lines)
