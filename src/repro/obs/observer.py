"""The injectable observation hook every execution layer reports to.

An :class:`Observer` bundles the three collectors of :mod:`repro.obs`
-- span tracer, metrics registry, lock-contention profiler -- behind the
narrow vocabulary of engine events: transaction begin/commit/abort,
access granted, lock denied, lock wait finished, lock-table transition,
wound-wait victim, deadlock.  The engine, the thread-safe facade, the
simulation runners, and the fuzzer all take an optional observer
(default ``None``) and guard each call site with a single attribute
lookup, so uninstrumented runs pay essentially nothing.

The observer owns the clock.  Wall-clock layers leave the default
(:func:`time.perf_counter`); the discrete-event runners re-point it at
the simulated clock via :meth:`use_clock`, and every span and wait is
then measured in simulated time units instead of seconds.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, Iterable, Optional, Union

from repro.core.names import TransactionName
from repro.obs.contention import ContentionProfiler
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NullTracer, SpanTracer


class AuditObserver:
    """A minimal observer that only feeds an online auditor.

    ``Engine.attach_auditor`` installs this when no full
    :class:`Observer` is attached yet: the hot path then pays the
    auditor's own bookkeeping per event and nothing else -- no span
    tracer, no metrics counters, no clock reads.  It speaks the whole
    observer vocabulary so every engine call site stays a plain method
    call; everything except lifecycle and access events is dropped.
    """

    def __init__(self, auditor=None):
        self.auditor = auditor

    def attach_auditor(self, auditor) -> None:
        self.auditor = auditor

    def now(self) -> float:
        return 0.0

    def use_clock(self, clock: Callable[[], float]) -> None:
        pass

    def txn_begin(self, name: TransactionName) -> None:
        auditor = self.auditor
        if auditor is not None:
            auditor.txn_begin(name)

    def txn_commit(self, name: TransactionName) -> None:
        auditor = self.auditor
        if auditor is not None:
            auditor.txn_commit(name)

    def txn_abort(self, name: TransactionName, cause: str = "explicit") -> None:
        auditor = self.auditor
        if auditor is not None:
            auditor.txn_abort(name, cause)

    def access(
        self,
        txn: TransactionName,
        object_name: str,
        kind: str,
        is_read: bool,
    ) -> None:
        auditor = self.auditor
        if auditor is not None:
            auditor.access(txn, object_name, kind, is_read)

    def mark_abort_cause(self, name: TransactionName, cause: str) -> None:
        pass

    def lock_denied(self, txn, object_name, blockers) -> None:
        pass

    def lock_wait(self, txn, object_name, started, ended) -> None:
        pass

    def lock_transition(self, kind, name, objects) -> None:
        pass

    def wound(self, victim, by) -> None:
        pass

    def deadlock(self, victim=None) -> None:
        pass

    def count(self, name: str, amount: int = 1, **labels: Any) -> None:
        pass

    def observe(self, name: str, value: float, **labels: Any) -> None:
        pass

    def finish(self) -> None:
        pass


class Observer:
    """Receives structured events; fans out to tracer/metrics/profiler.

    Parameters
    ----------
    trace:
        When True (default), collect spans in a :class:`SpanTracer`;
        when False, a :class:`NullTracer` drops them and only metrics
        and contention aggregation remain.
    clock:
        Zero-argument callable returning the current time.  Replaceable
        later with :meth:`use_clock` (the simulator does).
    """

    def __init__(
        self,
        trace: bool = True,
        clock: Callable[[], float] = time.perf_counter,
    ):
        self.tracer: Union[SpanTracer, NullTracer] = (
            SpanTracer() if trace else NullTracer()
        )
        self.metrics = MetricsRegistry()
        self.contention = ContentionProfiler()
        #: Optional online serializability auditor (repro.audit);
        #: lifecycle and access events are forwarded when attached.
        self.auditor = None
        self._clock = clock
        self._started: Dict[TransactionName, float] = {}
        self._abort_causes: Dict[TransactionName, str] = {}

    def attach_auditor(self, auditor) -> None:
        """Forward lifecycle/access events to *auditor* from now on.

        The auditor sees exactly the vocabulary it needs --
        ``txn_begin`` / ``txn_commit`` / ``txn_abort`` / ``access`` --
        in the order this observer receives it.  Attach before driving
        transactions: trees already in flight would fold incompletely.
        """
        self.auditor = auditor

    # ------------------------------------------------------------------
    # Time
    # ------------------------------------------------------------------
    def now(self) -> float:
        return self._clock()

    def use_clock(self, clock: Callable[[], float]) -> None:
        """Re-point the observer at a different clock (e.g. sim time)."""
        self._clock = clock

    # ------------------------------------------------------------------
    # Transaction lifecycle
    # ------------------------------------------------------------------
    def txn_begin(self, name: TransactionName) -> None:
        now = self.now()
        self._started[name] = now
        scope = "top" if len(name) == 1 else "child"
        self.metrics.counter("txn.begin", scope=scope).inc()
        self.metrics.gauge("txn.active").add(1)
        self.tracer.begin_txn(name, now)
        auditor = self.auditor
        if auditor is not None:
            auditor.txn_begin(name)

    def txn_commit(self, name: TransactionName) -> None:
        now = self.now()
        scope = "top" if len(name) == 1 else "child"
        self.metrics.counter("txn.commit", scope=scope).inc()
        self.metrics.gauge("txn.active").add(-1)
        started = self._started.pop(name, None)
        if started is not None:
            self.metrics.histogram(
                "txn.commit_latency", scope=scope
            ).observe(now - started)
        self._abort_causes.pop(name, None)
        self.tracer.end_txn(name, now, "commit")
        auditor = self.auditor
        if auditor is not None:
            auditor.txn_commit(name)

    def txn_abort(self, name: TransactionName, cause: str = "explicit") -> None:
        now = self.now()
        scope = "top" if len(name) == 1 else "child"
        cause = self._abort_causes.pop(name, cause)
        self.metrics.counter("txn.abort", scope=scope, cause=cause).inc()
        self.metrics.gauge("txn.active").add(-1)
        self._started.pop(name, None)
        self.tracer.end_txn(name, now, "abort", cause=cause)
        auditor = self.auditor
        if auditor is not None:
            auditor.txn_abort(name, cause)

    def mark_abort_cause(self, name: TransactionName, cause: str) -> None:
        """Pre-tag the cause of an abort about to be driven by a runner.

        The engine's abort transition does not know *why* it was asked
        to abort; layers that do (wound-wait, deadlock detection, fault
        injection) tag the victim first, and :meth:`txn_abort` picks the
        tag up.  The first tag wins: a wound-wait tag placed by the
        conflict path is not overwritten by the generic victim-abort
        path that follows it.
        """
        self._abort_causes.setdefault(name, cause)

    # ------------------------------------------------------------------
    # Accesses and locks
    # ------------------------------------------------------------------
    def access(
        self,
        txn: TransactionName,
        object_name: str,
        kind: str,
        is_read: bool,
    ) -> None:
        """One granted (and immediately committed) access leaf."""
        mode = "read" if is_read else "write"
        self.metrics.counter("access", mode=mode).inc()
        auditor = self.auditor
        if auditor is not None:
            auditor.access(txn, object_name, kind, is_read)
        if self.tracer.enabled:
            self.tracer.instant(
                "%s %s" % ("r" if is_read else "w", object_name),
                "access",
                self.now(),
                txn=txn,
                object=object_name,
                op=kind,
            )

    def lock_denied(
        self,
        txn: TransactionName,
        object_name: str,
        blockers: Iterable[TransactionName],
    ) -> None:
        blockers = tuple(blockers)
        self.metrics.counter("lock.denials").inc()
        self.contention.record_denial(object_name, txn, blockers)

    def lock_wait(
        self,
        txn: TransactionName,
        object_name: str,
        started: float,
        ended: float,
    ) -> None:
        """One finished wait for *object_name* (granted or given up)."""
        waited = max(0.0, ended - started)
        self.metrics.counter("lock.waits").inc()
        self.metrics.histogram("lock.wait_time").observe(waited)
        self.contention.record_wait(object_name, txn, waited)
        if self.tracer.enabled:
            self.tracer.add_span(
                "wait %s" % object_name,
                "wait",
                started,
                ended,
                txn=txn,
                object=object_name,
            )

    def lock_transition(
        self,
        kind: str,
        name: TransactionName,
        objects: Iterable[str],
    ) -> None:
        """A lock-table transition from the lock manager.

        ``commit`` transitions move locks upward to the parent -- Moss
        lock *inheritance*, counted per touched object; ``abort``
        transitions release them.
        """
        touched = len(tuple(objects))
        if kind == "commit" and len(name) > 1:
            self.metrics.counter("lock.inherited").inc(touched)
        elif kind == "abort":
            self.metrics.counter("lock.released_abort").inc(touched)

    # ------------------------------------------------------------------
    # Conflict resolution
    # ------------------------------------------------------------------
    def wound(
        self, victim: TransactionName, by: TransactionName
    ) -> None:
        """Wound-wait chose *victim* (younger) to die for *by* (older)."""
        self.metrics.counter("woundwait.victims").inc()
        self.mark_abort_cause(victim[:1], "wound-wait")
        if self.tracer.enabled:
            self.tracer.instant(
                "wound", "conflict", self.now(), txn=victim[:1]
            )

    def deadlock(self, victim: Optional[TransactionName] = None) -> None:
        self.metrics.counter("deadlocks").inc()
        if victim is not None:
            self.mark_abort_cause(victim[:1], "deadlock")

    # ------------------------------------------------------------------
    # Generic instruments (distribution costs, driver-specific counts)
    # ------------------------------------------------------------------
    def count(self, name: str, amount: int = 1, **labels: Any) -> None:
        self.metrics.counter(name, **labels).inc(amount)

    def observe(self, name: str, value: float, **labels: Any) -> None:
        self.metrics.histogram(name, **labels).observe(value)

    # ------------------------------------------------------------------
    # Finishing
    # ------------------------------------------------------------------
    def finish(self) -> None:
        """Close any still-open spans (call once, after the run)."""
        self.tracer.finish(self.now())
