"""Dependency-free metric primitives: counters, gauges, histograms.

The registry is the numeric half of the observability layer
(:mod:`repro.obs`): every instrumented component increments counters
(lock denials, wound-wait victims, aborts by cause), sets gauges (active
transactions), and feeds histograms (commit latency, lock-wait time)
through one :class:`MetricsRegistry`.

Two sample-aggregation primitives are provided:

* :class:`Histogram` -- fixed bucket boundaries, O(buckets) memory, for
  unbounded streams (the registry default);
* :class:`Summary` -- exact retained samples with nearest-rank
  percentiles, for bounded sample sets (the simulation runner's
  latency lists are built on it, so sim tables and obs reports share
  one :func:`percentile` implementation).

Percentile math is nearest-rank everywhere: :func:`percentile` is the
single canonical implementation; :meth:`Histogram.quantile` applies the
same rank formula to cumulative bucket counts.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple


def percentile(values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of *values*.

    Pinned edge cases:

    * ``fraction`` outside ``[0, 1]`` raises :class:`ValueError`;
    * an empty *values* returns ``0.0`` (there is nothing to report);
    * a single sample is returned for every fraction;
    * ``fraction == 0.0`` returns the minimum, ``1.0`` the maximum.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(
            "percentile fraction must be in [0, 1], got %r" % (fraction,)
        )
    if not values:
        return 0.0
    ordered = sorted(values)
    last = len(ordered) - 1
    rank = min(last, max(0, int(round(fraction * last))))
    return ordered[rank]


def exponential_buckets(
    start: float, factor: float, count: int
) -> Tuple[float, ...]:
    """``count`` geometrically spaced bucket upper bounds from *start*."""
    if start <= 0 or factor <= 1 or count < 1:
        raise ValueError("need start > 0, factor > 1, count >= 1")
    bounds = []
    edge = start
    for _ in range(count):
        bounds.append(edge)
        edge *= factor
    return tuple(bounds)


#: Default histogram boundaries: wide enough for both wall-clock seconds
#: (sub-millisecond lock waits) and simulated time units (latencies in
#: the tens).
DEFAULT_BUCKETS = exponential_buckets(0.0001, 4.0, 16)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time value (set/add; remembers its maximum)."""

    __slots__ = ("value", "high_water")

    def __init__(self) -> None:
        self.value = 0.0
        self.high_water = 0.0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.high_water:
            self.high_water = value

    def add(self, delta: float) -> None:
        self.set(self.value + delta)


class Histogram:
    """Fixed-boundary histogram: O(len(bounds)) memory, any stream length.

    ``bounds`` are inclusive upper bucket edges; one overflow bucket
    catches everything above the last edge.  :meth:`quantile` applies
    the nearest-rank formula to the cumulative counts and reports the
    bucket's upper edge (or the observed maximum for the overflow
    bucket), so estimates are conservative and monotone in ``q``.
    """

    __slots__ = ("bounds", "bucket_counts", "count", "total", "min", "max")

    def __init__(self, bounds: Optional[Iterable[float]] = None):
        self.bounds: Tuple[float, ...] = tuple(
            sorted(bounds if bounds is not None else DEFAULT_BUCKETS)
        )
        self.bucket_counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        index = self._bucket_index(value)
        self.bucket_counts[index] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def _bucket_index(self, value: float) -> int:
        lo, hi = 0, len(self.bounds)
        while lo < hi:
            mid = (lo + hi) // 2
            if value <= self.bounds[mid]:
                hi = mid
            else:
                lo = mid + 1
        return lo

    @property
    def mean(self) -> float:
        if self.count == 0:
            return 0.0
        return self.total / self.count

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile estimate from the bucket counts."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1], got %r" % (q,))
        if self.count == 0:
            return 0.0
        last = self.count - 1
        rank = min(last, max(0, int(round(q * last))))
        seen = 0
        for index, bucket in enumerate(self.bucket_counts):
            seen += bucket
            if rank < seen:
                if index < len(self.bounds):
                    return min(self.bounds[index], self.max)
                return self.max
        return self.max  # pragma: no cover - defensive

    def snapshot(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "sum": round(self.total, 6),
            "mean": round(self.mean, 6),
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }


class Summary:
    """Exact retained samples with canonical nearest-rank percentiles.

    For bounded sample sets (one latency per committed program, one wait
    per park) where exactness matters more than memory.  ``values`` is
    the live list -- callers may append to it directly, which is what
    keeps :class:`repro.sim.metrics.RunMetrics` backward compatible.
    """

    __slots__ = ("values",)

    def __init__(self, values: Optional[Iterable[float]] = None):
        self.values: List[float] = list(values) if values else []

    def add(self, value: float) -> None:
        self.values.append(value)

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def mean(self) -> float:
        if not self.values:
            return 0.0
        return sum(self.values) / len(self.values)

    def percentile(self, fraction: float) -> float:
        return percentile(self.values, fraction)

    def to_histogram(
        self, bounds: Optional[Iterable[float]] = None
    ) -> Histogram:
        """Bucket the retained samples (for obs-style reporting)."""
        histogram = Histogram(bounds)
        for value in self.values:
            histogram.observe(value)
        return histogram


def _key(name: str, labels: Dict[str, Any]) -> Tuple:
    return (name, tuple(sorted(labels.items())))


def _render_key(key: Tuple) -> str:
    name, labels = key
    if not labels:
        return name
    inner = ",".join("%s=%s" % (k, v) for k, v in labels)
    return "%s{%s}" % (name, inner)


class MetricsRegistry:
    """All counters, gauges, and histograms of one observed run.

    Instruments get-or-create by ``(name, labels)``; labels are plain
    keyword arguments (``registry.counter("txn.abort", cause="wound")``).
    Snapshots and the text rendering sort keys, so reports are
    deterministic given deterministic instrumentation.
    """

    def __init__(self) -> None:
        self._counters: Dict[Tuple, Counter] = {}
        self._gauges: Dict[Tuple, Gauge] = {}
        self._histograms: Dict[Tuple, Histogram] = {}

    def counter(self, name: str, **labels: Any) -> Counter:
        key = _key(name, labels)
        found = self._counters.get(key)
        if found is None:
            found = self._counters[key] = Counter()
        return found

    def gauge(self, name: str, **labels: Any) -> Gauge:
        key = _key(name, labels)
        found = self._gauges.get(key)
        if found is None:
            found = self._gauges[key] = Gauge()
        return found

    def histogram(
        self,
        name: str,
        bounds: Optional[Iterable[float]] = None,
        **labels: Any,
    ) -> Histogram:
        key = _key(name, labels)
        found = self._histograms.get(key)
        if found is None:
            found = self._histograms[key] = Histogram(bounds)
        return found

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-ready dump of every metric."""
        return {
            "counters": {
                _render_key(key): counter.value
                for key, counter in sorted(self._counters.items())
            },
            "gauges": {
                _render_key(key): {
                    "value": gauge.value,
                    "high_water": gauge.high_water,
                }
                for key, gauge in sorted(self._gauges.items())
            },
            "histograms": {
                _render_key(key): histogram.snapshot()
                for key, histogram in sorted(self._histograms.items())
            },
        }

    def render(self) -> str:
        """Plain-text metric listing, one metric per line."""
        lines: List[str] = []
        for key, counter in sorted(self._counters.items()):
            lines.append("%-40s %d" % (_render_key(key), counter.value))
        for key, gauge in sorted(self._gauges.items()):
            lines.append(
                "%-40s %g (high %g)"
                % (_render_key(key), gauge.value, gauge.high_water)
            )
        for key, histogram in sorted(self._histograms.items()):
            snap = histogram.snapshot()
            lines.append(
                "%-40s count=%d mean=%.4g p50=%.4g p95=%.4g max=%.4g"
                % (
                    _render_key(key),
                    snap["count"],
                    snap["mean"],
                    snap["p50"],
                    snap["p95"],
                    snap["max"],
                )
            )
        return "\n".join(lines)
