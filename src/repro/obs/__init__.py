"""repro.obs -- unified tracing, metrics, and lock-contention profiling.

The observability layer for every execution surface of the repo: the
cooperative engine, the thread-safe facade, the discrete-event and
distributed runners, and the concurrency fuzzer all accept an optional
:class:`Observer` whose span tree mirrors the transaction tree and whose
metrics registry records where the time (and the aborts) went.

Quick use::

    from repro.obs import Observer, write_chrome_trace, render_report

    obs = Observer()
    engine = Engine(specs, observer=obs)
    ...drive transactions...
    obs.finish()
    write_chrome_trace("trace.json", obs)   # chrome://tracing / Perfetto
    print(render_report(obs))

See ``docs/OBSERVABILITY.md`` for the span model, the metric catalogue,
and the exporter formats.
"""

from repro.obs.contention import ContentionProfiler, ObjectContention
from repro.obs.exporters import (
    iter_jsonl,
    render_report,
    to_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Summary,
    exponential_buckets,
    percentile,
)
from repro.obs.observer import AuditObserver, Observer
from repro.obs.tracer import Instant, NullTracer, Span, SpanTracer

__all__ = [
    "ContentionProfiler",
    "Counter",
    "Gauge",
    "Histogram",
    "Instant",
    "MetricsRegistry",
    "NullTracer",
    "ObjectContention",
    "AuditObserver",
    "Observer",
    "Span",
    "SpanTracer",
    "Summary",
    "exponential_buckets",
    "iter_jsonl",
    "percentile",
    "render_report",
    "to_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
]
