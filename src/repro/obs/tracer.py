"""Structured span tracing whose span tree mirrors the transaction tree.

A *span* covers one transaction's lifetime (opened at CREATE, closed at
COMMIT or ABORT) or one sub-activity inside it (a lock wait, an access).
Spans carry the transaction name, so the parent/child structure of the
recorded spans is exactly the transaction tree -- the paper's first-class
artifact, made visible.

The tracer is deliberately dumb about time: every record call takes
explicit timestamps supplied by the :class:`~repro.obs.observer.Observer`,
which owns the clock (wall time for threaded runs, simulated time for
the DES).  Collection is buffered in memory behind one mutex, so worker
threads can record concurrently; :class:`NullTracer` is the disabled
twin whose methods do nothing, keeping instrumented hot paths at a
single attribute lookup plus a no-op call when tracing is off.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.names import TransactionName, pretty_name


@dataclass
class Span:
    """One completed (or still open) traced activity."""

    name: str
    category: str  # "txn" | "wait" | "access" | ...
    start: float
    end: Optional[float] = None
    track: str = "main"
    txn: Optional[TransactionName] = None
    parent: Optional[TransactionName] = None
    args: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        if self.end is None:
            return 0.0
        return max(0.0, self.end - self.start)


@dataclass(frozen=True)
class Instant:
    """A zero-duration traced event (e.g. one instantaneous access)."""

    name: str
    category: str
    timestamp: float
    track: str = "main"
    txn: Optional[TransactionName] = None
    args: Tuple[Tuple[str, Any], ...] = ()


def _track_name() -> str:
    return threading.current_thread().name


class SpanTracer:
    """Thread-safe buffered span collection."""

    #: instrumented call sites may skip argument building when False
    enabled = True

    def __init__(self) -> None:
        self._mutex = threading.Lock()
        self.spans: List[Span] = []
        self.instants: List[Instant] = []
        self._open: Dict[TransactionName, Span] = {}

    # ------------------------------------------------------------------
    # Transaction spans (open/close keyed by transaction name)
    # ------------------------------------------------------------------
    def begin_txn(self, name: TransactionName, start: float) -> None:
        """Open the span of transaction *name* at *start*."""
        span = Span(
            name=pretty_name(name),
            category="txn",
            start=start,
            track=_track_name(),
            txn=name,
            parent=name[:-1] if name else None,
        )
        with self._mutex:
            self._open[name] = span

    def end_txn(
        self,
        name: TransactionName,
        end: float,
        outcome: str,
        **args: Any,
    ) -> None:
        """Close transaction *name*'s span with its outcome."""
        with self._mutex:
            span = self._open.pop(name, None)
            if span is None:
                # End without a recorded begin (observer attached
                # mid-run): synthesise a zero-length span.
                span = Span(
                    name=pretty_name(name),
                    category="txn",
                    start=end,
                    track=_track_name(),
                    txn=name,
                    parent=name[:-1] if name else None,
                )
            span.end = end
            span.args["outcome"] = outcome
            span.args.update(args)
            self.spans.append(span)

    # ------------------------------------------------------------------
    # Completed sub-spans and instants
    # ------------------------------------------------------------------
    def add_span(
        self,
        name: str,
        category: str,
        start: float,
        end: float,
        txn: Optional[TransactionName] = None,
        **args: Any,
    ) -> None:
        """Record an already-finished sub-activity span."""
        span = Span(
            name=name,
            category=category,
            start=start,
            end=max(start, end),
            track=_track_name(),
            txn=txn,
            parent=txn,
            args=dict(args),
        )
        with self._mutex:
            self.spans.append(span)

    def instant(
        self,
        name: str,
        category: str,
        timestamp: float,
        txn: Optional[TransactionName] = None,
        **args: Any,
    ) -> None:
        """Record a zero-duration event."""
        event = Instant(
            name=name,
            category=category,
            timestamp=timestamp,
            track=_track_name(),
            txn=txn,
            args=tuple(sorted(args.items())),
        )
        with self._mutex:
            self.instants.append(event)

    # ------------------------------------------------------------------
    # Finishing
    # ------------------------------------------------------------------
    def finish(self, now: float) -> None:
        """Close any spans still open (transactions never finished)."""
        with self._mutex:
            for name, span in sorted(self._open.items()):
                span.end = max(span.start, now)
                span.args["outcome"] = "unfinished"
                self.spans.append(span)
            self._open.clear()

    def completed(self) -> List[Span]:
        """A snapshot copy of the finished spans (sorted by start)."""
        with self._mutex:
            return sorted(
                list(self.spans), key=lambda s: (s.start, s.name)
            )

    def tracks(self) -> List[str]:
        with self._mutex:
            names = {span.track for span in self.spans}
            names.update(event.track for event in self.instants)
        return sorted(names)


class NullTracer:
    """The tracer that records nothing (tracing disabled)."""

    enabled = False
    #: empty, so exporters can treat both tracers uniformly
    spans: Tuple[Span, ...] = ()
    instants: Tuple[Instant, ...] = ()

    def begin_txn(self, name, start) -> None:
        pass

    def end_txn(self, name, end, outcome, **args) -> None:
        pass

    def add_span(self, name, category, start, end, txn=None, **args) -> None:
        pass

    def instant(self, name, category, timestamp, txn=None, **args) -> None:
        pass

    def finish(self, now) -> None:
        pass

    def completed(self):
        return []

    def tracks(self):
        return []
