"""Exporters: Chrome trace-event JSON, JSONL event stream, text report.

Three ways out of an :class:`~repro.obs.observer.Observer`:

* :func:`to_chrome_trace` / :func:`write_chrome_trace` -- the Trace
  Event Format understood by ``chrome://tracing`` and Perfetto: one
  process, one track per recorded worker thread, a complete ("X") event
  per transaction span (nested children sit inside their parents on the
  same track) and per lock-wait sub-span, an instant ("i") event per
  access.
* :func:`iter_jsonl` / :func:`write_jsonl` -- a line-per-event stream
  (spans, instants, then one metrics record and one contention record),
  convenient for ad-hoc ``jq``-style processing.
* :func:`render_report` -- the plain-text summary: metric catalogue,
  latency/wait histograms, hot-object contention table.

Timestamps are exported in microseconds (the trace-event convention);
the observer's clock unit -- wall seconds or simulated time units -- is
scaled by 1e6 and shifted so the trace starts at zero.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterator, List

from repro.core.names import pretty_name
from repro.obs.observer import Observer

_SCALE = 1_000_000.0


def _origin(observer: Observer) -> float:
    spans = observer.tracer.completed()
    starts = [span.start for span in spans]
    starts.extend(
        event.timestamp for event in observer.tracer.instants
    )
    return min(starts) if starts else 0.0


def to_chrome_trace(observer: Observer) -> Dict[str, Any]:
    """The run as a Chrome trace-event dictionary (JSON-ready)."""
    spans = observer.tracer.completed()
    tracks = observer.tracer.tracks()
    tids = {track: index + 1 for index, track in enumerate(tracks)}
    origin = _origin(observer)
    events: List[Dict[str, Any]] = []
    for track, tid in sorted(tids.items(), key=lambda item: item[1]):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "args": {"name": track},
            }
        )
    for span in spans:
        args = dict(span.args)
        if span.txn is not None:
            args["txn"] = pretty_name(span.txn)
        events.append(
            {
                "name": span.name,
                "cat": span.category,
                "ph": "X",
                "pid": 1,
                "tid": tids.get(span.track, 0),
                "ts": round((span.start - origin) * _SCALE, 3),
                "dur": round(span.duration * _SCALE, 3),
                "args": args,
            }
        )
    for event in observer.tracer.instants:
        args = dict(event.args)
        if event.txn is not None:
            args["txn"] = pretty_name(event.txn)
        events.append(
            {
                "name": event.name,
                "cat": event.category,
                "ph": "i",
                "s": "t",
                "pid": 1,
                "tid": tids.get(event.track, 0),
                "ts": round((event.timestamp - origin) * _SCALE, 3),
                "args": args,
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: str, observer: Observer) -> None:
    """Write the Perfetto-loadable trace file to *path*."""
    with open(path, "w") as handle:
        json.dump(to_chrome_trace(observer), handle, indent=None)
        handle.write("\n")


def iter_jsonl(observer: Observer) -> Iterator[str]:
    """Yield the run as JSON lines: spans, instants, metrics, contention."""
    for span in observer.tracer.completed():
        record = {
            "type": "span",
            "name": span.name,
            "cat": span.category,
            "track": span.track,
            "start": span.start,
            "end": span.end,
            "txn": pretty_name(span.txn) if span.txn is not None else None,
            "args": span.args,
        }
        yield json.dumps(record, sort_keys=True, default=str)
    for event in observer.tracer.instants:
        record = {
            "type": "instant",
            "name": event.name,
            "cat": event.category,
            "track": event.track,
            "ts": event.timestamp,
            "txn": (
                pretty_name(event.txn) if event.txn is not None else None
            ),
            "args": dict(event.args),
        }
        yield json.dumps(record, sort_keys=True, default=str)
    yield json.dumps(
        {"type": "metrics", "metrics": observer.metrics.snapshot()},
        sort_keys=True,
    )
    yield json.dumps(
        {"type": "contention", "objects": observer.contention.snapshot()},
        sort_keys=True,
    )


def write_jsonl(path: str, observer: Observer) -> None:
    with open(path, "w") as handle:
        for line in iter_jsonl(observer):
            handle.write(line)
            handle.write("\n")


def render_report(observer: Observer, top: int = 10) -> str:
    """The plain-text run summary."""
    spans = observer.tracer.completed()
    by_category: Dict[str, int] = {}
    for span in spans:
        by_category[span.category] = by_category.get(span.category, 0) + 1
    lines = ["== spans =="]
    if spans or observer.tracer.instants:
        for category, count in sorted(by_category.items()):
            lines.append("%-40s %d" % ("span." + category, count))
        lines.append(
            "%-40s %d" % ("instants", len(observer.tracer.instants))
        )
        lines.append(
            "%-40s %d" % ("tracks", len(observer.tracer.tracks()))
        )
    else:
        lines.append("tracing disabled (metrics only)")
    lines.append("")
    lines.append("== metrics ==")
    rendered = observer.metrics.render()
    lines.append(rendered if rendered else "no metrics recorded")
    lines.append("")
    lines.append("== lock contention (top %d) ==" % top)
    lines.append(observer.contention.render(top))
    return "\n".join(lines)
