"""Ready-made observed workloads for the ``trace`` and ``top`` commands.

Each function drives one execution layer with an
:class:`~repro.obs.observer.Observer` attached and returns a small
result summary; the CLI then exports the observer's trace and report.
Workloads are seeded and deterministic (the threaded one is
deterministic in its *work*, though wall-clock span timings naturally
vary run to run).
"""

from __future__ import annotations

import random
import threading
from typing import Dict, Optional

from repro.obs.observer import Observer


def run_quickstart(observer: Observer, seed: int = 0) -> Dict[str, int]:
    """The quickstart scenario: nested transfers with abortable legs."""
    from repro.adt import BankAccount, IntRegister
    from repro.engine import Engine

    engine = Engine(
        [
            BankAccount("acct", 100),
            BankAccount("savings", 50),
            IntRegister("audit_log"),
        ],
        observer=observer,
    )
    rng = random.Random(seed)
    transfers = 0
    failures = 0
    for round_index in range(6):
        with engine.begin_top() as transfer:
            amount = rng.randrange(10, 80)
            leg = transfer.begin_child()
            if leg.perform("acct", BankAccount.withdraw(amount)):
                leg.commit()
                credit = transfer.begin_child()
                credit.perform("savings", BankAccount.deposit(amount))
                credit.commit()
                transfer.perform("audit_log", IntRegister.add(1))
                transfers += 1
            else:
                leg.abort()
                failures += 1
        with engine.begin_top() as audit:
            audit.perform("acct", BankAccount.balance())
            audit.perform("savings", BankAccount.balance())
            audit.perform("audit_log", IntRegister.read())
    observer.finish()
    return {"transfers": transfers, "insufficient": failures}


def run_banking(
    observer: Observer, seed: int = 0, transfers: int = 40
) -> Dict[str, int]:
    """The banking example's transfer batch (fallback-debit pattern)."""
    from repro.adt import BankAccount
    from repro.engine import Engine
    from repro.errors import LockDenied

    accounts = ["acct%d" % index for index in range(10)]
    engine = Engine(
        [BankAccount(name, 100) for name in accounts],
        observer=observer,
    )
    rng = random.Random(seed)
    ok = 0
    aborted = 0
    for _ in range(transfers):
        source, fallback, target = rng.sample(accounts, 3)
        amount = rng.randrange(10, 120)
        with engine.begin_top() as transfer:
            debited = None
            for candidate in (source, fallback):
                leg = transfer.begin_child()
                try:
                    if leg.perform(
                        candidate, BankAccount.withdraw(amount)
                    ):
                        leg.commit()
                        debited = candidate
                        break
                    leg.abort()
                except LockDenied:
                    leg.abort()
            if debited is None:
                transfer.abort()
                aborted += 1
                continue
            credit = transfer.begin_child()
            credit.perform(target, BankAccount.deposit(amount))
            credit.commit()
            ok += 1
    observer.finish()
    return {"transfers": ok, "aborted": aborted}


def run_threads(
    observer: Observer,
    seed: int = 0,
    workers: int = 4,
    increments: int = 25,
) -> Dict[str, int]:
    """Worker threads contending on shared counters (one track each)."""
    from repro.adt import Counter
    from repro.engine.threadsafe import ThreadSafeEngine
    from repro.errors import LockDenied, TransactionAborted

    from repro.core.sampling import threshold_index

    facade = ThreadSafeEngine(
        [Counter("hot"), Counter("warm"), Counter("cold")],
        observer=observer,
    )
    wounded = [0] * workers
    # Zipf-ish skew: most increments hit the hot counter.  The cut
    # points reproduce the historical inline ladder
    # (roll < 0.7 -> hot, < 0.9 -> warm, else cold) exactly.
    names = ("hot", "warm", "cold")
    cuts = (0.7, 0.9)

    def body(worker_id: int) -> None:
        rng = random.Random(seed * 1000 + worker_id)
        for _ in range(increments):
            name = names[threshold_index(rng, cuts)]
            top = facade.begin_top()
            try:
                top.perform(name, Counter.increment(1))
                top.commit()
            except (TransactionAborted, LockDenied):
                wounded[worker_id] += 1
                if top.is_active:
                    top.abort()

    threads = [
        threading.Thread(
            target=body, args=(worker_id,), name="worker-%d" % worker_id
        )
        for worker_id in range(workers)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    total = facade.object_value("hot") + facade.object_value(
        "warm"
    ) + facade.object_value("cold")
    observer.finish()
    return {"committed_increments": total, "wounded": sum(wounded)}


def run_contended_sim(
    observer: Observer,
    seed: int = 0,
    programs: int = 24,
    objects: int = 6,
    mpl: int = 8,
    policy: str = "moss-rw",
    zipf_skew: float = 0.9,
    read_fraction: float = 0.2,
):
    """A deliberately contended simulation run (for ``repro top``)."""
    from repro.sim import (
        SimulationConfig,
        WorkloadConfig,
        make_store,
        make_workload,
        run_simulation,
    )

    config = WorkloadConfig(
        programs=programs,
        objects=objects,
        read_fraction=read_fraction,
        zipf_skew=zipf_skew,
        depth=2,
        fanout=2,
        accesses_per_block=2,
    )
    workload = make_workload(seed, config)
    store = make_store(config)
    metrics = run_simulation(
        workload,
        store,
        SimulationConfig(mpl=mpl, policy=policy, seed=seed),
        observer=observer,
    )
    observer.finish()
    return metrics


def run_scenario_workload(
    observer: Observer,
    seed: int = 0,
    name: str = "bank",
    transactions: int = 30,
) -> Dict[str, int]:
    """A library scenario on the DES simulator, observed.

    Backs the ``scenario:<name>`` entries in :data:`WORKLOADS` so
    ``repro trace --workload scenario:bank`` traces declarative
    scenarios through the same pipeline as the hand-written demos.
    """
    from repro.scenario import compile_scenario, get_driver
    from repro.scenario.library import load_library_scenario

    spec = load_library_scenario(name)
    compiled = compile_scenario(
        spec, seed, transactions=min(transactions, spec.transactions)
    )
    result = get_driver("sim").run(
        compiled, scheme="moss-rw", observer=observer
    )
    observer.finish()
    return {
        "committed": result.committed,
        "aborted": result.aborted,
        "accesses": result.ops,
    }


def _scenario_runner(name: str):
    def runner(observer: Observer, seed: int = 0) -> Dict[str, int]:
        return run_scenario_workload(observer, seed=seed, name=name)

    return runner


def _scenario_workloads() -> Dict[str, object]:
    from repro.scenario.library import library_names

    return {
        "scenario:%s" % name: _scenario_runner(name)
        for name in library_names()
    }


WORKLOADS = {
    "quickstart": run_quickstart,
    "banking": run_banking,
    "threads": run_threads,
}
WORKLOADS.update(_scenario_workloads())


def run_workload(
    name: str, observer: Observer, seed: int = 0
) -> Optional[Dict[str, int]]:
    try:
        runner = WORKLOADS[name]
    except KeyError:
        raise ValueError(
            "unknown workload %r (choose from %s)"
            % (name, ", ".join(sorted(WORKLOADS)))
        ) from None
    return runner(observer, seed=seed)
