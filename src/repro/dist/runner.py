"""The distributed simulation runner.

Extends the local runner (:mod:`repro.sim.runner`) with site awareness:

* an access to a remote object pays the round trip from the program's
  home site to the object's site before its local service time
  (2 messages);
* a top-level commit runs two-phase commit across the sites its tree
  touched: PREPARE out, VOTE back, DECISION out -- three one-way
  latencies to the farthest participant, ``3 * (participants)`` remote
  messages (the home site votes locally for free);
* aborts send one DECISION message per remote participant.

The locking logic itself is exactly the proven engine; distribution only
adds *time* and *messages*, faithful to the paper's footnote 9 (the
distributed machinery is orthogonal to data-management correctness).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Set, Tuple

from repro.core.object_spec import ObjectSpec
from repro.dist.topology import Topology
from repro.sim.metrics import RunMetrics
from repro.sim.runner import SimulationConfig, _ProgramRun, _Runner
from repro.sim.workload import AccessOp, Program


@dataclass(frozen=True)
class MessageFaults:
    """Seeded network fault injection for the distributed runner.

    Every inter-site message is independently dropped with
    *drop_rate*; a dropped message is retransmitted after
    *retry_timeout* simulated time units (costing one extra message and
    the timeout in latency -- re-drops retransmit again).  *delay_jitter*
    adds a uniform ``[0, delay_jitter]`` per-message delay.  All draws
    come from one RNG seeded with *seed*, so a faulty run is exactly as
    reproducible as a clean one.  Used standalone and by the
    concurrency fuzzer's fault plans (:mod:`repro.fuzz.faults`).
    """

    drop_rate: float = 0.0
    delay_jitter: float = 0.0
    retry_timeout: float = 4.0
    seed: int = 0

    def __post_init__(self) -> None:
        # drop_rate == 1.0 would retransmit forever.
        if not 0.0 <= self.drop_rate < 1.0:
            raise ValueError(
                "drop_rate must be in [0, 1), got %r" % self.drop_rate
            )
        if self.delay_jitter < 0.0 or self.retry_timeout < 0.0:
            raise ValueError("delays must be non-negative")

    def make_rng(self) -> random.Random:
        return random.Random(self.seed * 2_654_435_761 + 1)


@dataclass
class DistributedConfig(SimulationConfig):
    """Simulation parameters plus the commit protocol's message count."""

    #: one-way message legs in the commit protocol (prepare, vote,
    #: decision = 3; set 2 for presumed-commit style accounting)
    commit_protocol_legs: int = 3
    #: optional seeded message delay/drop injection
    faults: Optional[MessageFaults] = None


@dataclass
class DistributedMetrics(RunMetrics):
    """Run metrics extended with distribution costs."""

    messages: int = 0
    remote_accesses: int = 0
    local_accesses: int = 0
    commit_rounds: int = 0
    dropped_messages: int = 0

    @property
    def remote_fraction(self) -> float:
        total = self.remote_accesses + self.local_accesses
        if total == 0:
            return 0.0
        return self.remote_accesses / total

    def row(self) -> Dict[str, object]:
        data = super().row()
        data.update(
            {
                "messages": self.messages,
                "remote_fraction": round(self.remote_fraction, 3),
                "commit_rounds": self.commit_rounds,
                "dropped_messages": self.dropped_messages,
            }
        )
        return data


class _DistributedRunner(_Runner):
    """Site-aware variant of the closed-system runner."""

    def __init__(
        self,
        programs: Sequence[Program],
        store: Sequence[ObjectSpec],
        topology: Topology,
        config: DistributedConfig,
        observer=None,
    ):
        super().__init__(programs, store, config, observer=observer)
        self.topology = topology
        self.metrics = DistributedMetrics(policy=config.policy)
        self._fault_rng = (
            config.faults.make_rng()
            if config.faults is not None
            else None
        )
        #: sites touched by each program's current attempt
        self._participants: Dict[int, Set[int]] = {}

    # ------------------------------------------------------------------
    # Seeded message delay/drop injection
    # ------------------------------------------------------------------
    def _send(
        self, base_delay: float, messages: int
    ) -> Tuple[float, int]:
        """Account for *messages* one-way sends taking *base_delay*.

        With no fault injection this is the identity.  Otherwise each
        message may be dropped (retransmitted after the retry timeout,
        possibly repeatedly) and jittered; returns the effective
        ``(delay, messages)`` including retransmissions.
        """
        if self._fault_rng is None or messages == 0:
            return base_delay, messages
        faults = self.config.faults
        total_messages = 0
        extra_delay = 0.0
        for _ in range(messages):
            while True:
                total_messages += 1
                if faults.delay_jitter > 0.0:
                    extra_delay += self._fault_rng.uniform(
                        0.0, faults.delay_jitter
                    )
                if self._fault_rng.random() >= faults.drop_rate:
                    break
                self.metrics.dropped_messages += 1
                if self.obs is not None:
                    self.obs.count("dist.messages_dropped")
                extra_delay += faults.retry_timeout
        return base_delay + extra_delay, total_messages

    # ------------------------------------------------------------------
    # Accesses pay network round trips
    # ------------------------------------------------------------------
    def _home_site(self, run: _ProgramRun) -> int:
        return self.topology.home_of(run.index)

    def _run_step(self, run, epoch, txn, step, done):
        if isinstance(step, AccessOp):
            home = self._home_site(run)
            target = self.topology.site_of(step.object_name)
            delay = self.topology.round_trip(home, target)
            if target != home:
                delay, sent = self._send(delay, 2)
                self.metrics.messages += sent
                self.metrics.remote_accesses += 1
                if self.obs is not None:
                    self.obs.count(
                        "dist.messages", sent, kind="access"
                    )
                    self.obs.count("dist.access", kind="remote")
            else:
                self.metrics.local_accesses += 1
                if self.obs is not None:
                    self.obs.count("dist.access", kind="local")
            self._participants.setdefault(run.index, set()).add(target)
            if delay > 0:
                self.sim.after(
                    delay,
                    lambda: self._attempt_access(
                        run, epoch, txn, step, done,
                        requested_at=self.sim.now,
                    ),
                )
                return
            self._attempt_access(
                run, epoch, txn, step, done, requested_at=self.sim.now
            )
            return
        super()._run_step(run, epoch, txn, step, done)

    # ------------------------------------------------------------------
    # Commits run two-phase commit across participants
    # ------------------------------------------------------------------
    def _finish_top(self, run, epoch):
        if self._stale(run, epoch):
            return
        home = self._home_site(run)
        participants = self._participants.get(run.index, set())
        remote = {site for site in participants if site != home}
        if not remote:
            super()._finish_top(run, epoch)
            return
        farthest = max(
            self.topology.latency(home, site) for site in remote
        )
        legs = self.config.commit_protocol_legs
        delay, sent = self._send(
            legs * farthest, legs * len(remote)
        )
        self.metrics.messages += sent
        self.metrics.commit_rounds += 1
        if self.obs is not None:
            # Two-phase commit costs: message legs and decision delay.
            self.obs.count("dist.messages", sent, kind="2pc")
            self.obs.count("dist.commit_rounds")
            self.obs.observe("dist.commit_delay", delay)
        self._participants.pop(run.index, None)
        self.sim.after(
            delay,
            lambda: super(_DistributedRunner, self)._finish_top(
                run, epoch
            ),
        )

    def _restart_program(self, run):
        home = self._home_site(run)
        participants = self._participants.pop(run.index, set())
        remote = {site for site in participants if site != home}
        # One abort-decision message per remote participant.
        _, sent = self._send(0.0, len(remote))
        self.metrics.messages += sent
        if self.obs is not None and sent:
            self.obs.count("dist.messages", sent, kind="abort")
        super()._restart_program(run)


def run_distributed_simulation(
    programs: Sequence[Program],
    store: Sequence[ObjectSpec],
    topology: Topology,
    config: Optional[DistributedConfig] = None,
    observer=None,
) -> DistributedMetrics:
    """Execute *programs* on a distributed deployment; return metrics.

    *observer* additionally receives the distribution costs:
    ``dist.messages`` (by kind: access/2pc/abort), ``dist.commit_rounds``
    and the 2PC decision-delay histogram.
    """
    runner = _DistributedRunner(
        programs,
        store,
        topology,
        config or DistributedConfig(),
        observer=observer,
    )
    runner.start()
    return runner.metrics
