"""Distributed nested transactions: the Argus/Moss-thesis setting.

The paper's introduction motivates nesting from *distributed* systems:
"the basic services are often provided by Remote Procedure Calls ...
since providing a service will often require using other services, the
transactions that implement services ought to be nested."  Moss' thesis
[Mo] devotes considerable effort to a distributed implementation; the
paper's footnote 9 declares those concerns "orthogonal to the correctness
of the data management algorithms".

This package supplies the missing distributed *performance* dimension
while keeping the (proven-correct) locking logic untouched:

* a :class:`~repro.dist.topology.Topology` partitions objects across
  sites and prices inter-site messages;
* :func:`~repro.dist.runner.run_distributed_simulation` executes nested
  workloads where every remote access pays a round trip and every
  top-level commit runs a hierarchical two-phase commit across its
  participant sites (crash-free, as the paper's model has no crashes --
  2PC here is a latency/message-cost model, not a fault-tolerance one);
* message and round-trip counts come out in the metrics (benchmark E16).
"""

from repro.dist.topology import Topology, uniform_topology
from repro.dist.runner import (
    DistributedConfig,
    DistributedMetrics,
    MessageFaults,
    run_distributed_simulation,
)

__all__ = [
    "DistributedConfig",
    "DistributedMetrics",
    "MessageFaults",
    "Topology",
    "run_distributed_simulation",
    "uniform_topology",
]
