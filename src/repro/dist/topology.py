"""Site topologies: object placement and message latency."""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError


@dataclass
class Topology:
    """A set of sites, object placement, and inter-site latency.

    ``placement`` maps object names to site indices; ``latency`` is the
    one-way message latency between two distinct sites (intra-site
    messages are free).  ``home_of`` assigns each top-level transaction a
    home site (round-robin by default).
    """

    sites: int
    placement: Dict[str, int]
    one_way_latency: float = 1.0
    per_pair: Optional[Dict[Tuple[int, int], float]] = None

    def __post_init__(self):
        if self.sites < 1:
            raise ReproError("a topology needs at least one site")
        for object_name, site in self.placement.items():
            if not 0 <= site < self.sites:
                raise ReproError(
                    "object %r placed on unknown site %d"
                    % (object_name, site)
                )

    def site_of(self, object_name: str) -> int:
        """The site hosting *object_name*."""
        try:
            return self.placement[object_name]
        except KeyError:
            raise ReproError(
                "object %r is not placed on any site" % object_name
            ) from None

    def home_of(self, top_index: int) -> int:
        """The home site of the *top_index*-th top-level transaction."""
        return top_index % self.sites

    def latency(self, a: int, b: int) -> float:
        """One-way message latency between sites *a* and *b*."""
        if a == b:
            return 0.0
        if self.per_pair is not None:
            key = (min(a, b), max(a, b))
            if key in self.per_pair:
                return self.per_pair[key]
        return self.one_way_latency

    def round_trip(self, a: int, b: int) -> float:
        """Request/reply cost between sites *a* and *b*."""
        return 2.0 * self.latency(a, b)


def uniform_topology(
    object_names: Sequence[str],
    sites: int,
    one_way_latency: float = 1.0,
    seed: Optional[int] = None,
    affinities: Optional[Dict[str, int]] = None,
) -> Topology:
    """Spread objects over *sites* (round-robin, or shuffled by *seed*).

    *affinities* (e.g. a scenario spec's ``placement_map()``) pins the
    named objects to ``affinity % sites``; the rest still spread
    round-robin over all sites.
    """
    names: List[str] = list(object_names)
    if seed is not None:
        random.Random(seed).shuffle(names)
    affinities = affinities or {}
    placement = {}
    index = 0
    for name in names:
        affinity = affinities.get(name)
        if affinity is not None:
            placement[name] = affinity % sites
        else:
            placement[name] = index % sites
            index += 1
    return Topology(
        sites=sites,
        placement=placement,
        one_way_latency=one_way_latency,
    )
