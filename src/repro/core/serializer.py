"""The constructive proof of Lemma 33 as an algorithm.

Given a concurrent schedule ``alpha`` of a R/W Locking system and a
transaction T that is not an orphan in ``alpha``, Lemma 33 asserts that a
*serial* schedule exists that is write-equivalent to ``visible(alpha, T)``.
The paper proves it by induction on the length of ``alpha``, with a case
analysis on the last event.  This module turns that induction into an
incremental algorithm: the :class:`Serializer` consumes the concurrent
schedule one event at a time and maintains, for every created non-orphan
transaction U (accesses included), a candidate serial schedule ``B[U]``
write-equivalent to ``visible(alpha, U)``.

Case analysis implemented (paper's numbering):

1/2. pi is an output of a transaction or of M(X)
     (REQUEST_CREATE / REQUEST_COMMIT): append pi to B[U] for every U to
     which ``transaction(pi)`` is visible.
3.   pi = CREATE(T'): start B[T'] as ``B[parent(T')] + [pi]``.
4.   pi = COMMIT(T') with T'' = parent(T'): for U a descendant of T',
     append; for other descendants of T'', splice in the committed child's
     novel events: ``B[U] <- gamma + (B[T'] - gamma) + [pi] + (B[U] -
     gamma)`` where ``gamma = B[T'']``.
5.   pi = ABORT(T'): descendants of T' become orphans and are dropped; for
     remaining descendants of T'': ``B[U] <- gamma + [pi] + (B[U] -
     gamma)`` -- the aborted subtree's work simply never appears, matching
     the serial scheduler's "aborted transactions were never created".
6/7. reports: append like case 1.

INFORM operations are not serial operations and never touch any B[U].

The serializer is *constructive only*: it does not verify that its outputs
are serial schedules.  :mod:`repro.core.correctness` replays every produced
schedule against an actual serial system, so the theorem is checked
end-to-end rather than assumed.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.core.events import (
    Abort,
    Commit,
    Create,
    Event,
    InformAbortAt,
    InformCommitAt,
    transaction_of,
)
from repro.core.names import (
    ROOT,
    SystemType,
    TransactionName,
    is_descendant,
    parent,
    pretty_name,
)
from repro.core.visibility import is_orphan, visible_to
from repro.errors import SerializationFailure
from repro.ioa.execution import remove_events


class Serializer:
    """Incremental Lemma 33 construction over a growing concurrent schedule."""

    def __init__(self, system_type: SystemType):
        self.system_type = system_type
        self.alpha: List[Event] = []
        self._serial: Dict[TransactionName, Tuple[Event, ...]] = {}
        self._orphans: set = set()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def tracked(self) -> Tuple[TransactionName, ...]:
        """The transactions with a maintained serial schedule, sorted."""
        return tuple(sorted(self._serial))

    def is_orphan(self, name: TransactionName) -> bool:
        """Return True if *name* is an orphan in the schedule seen so far."""
        return any(
            name[: len(doomed)] == doomed for doomed in self._orphans
        )

    def serial_schedule_for(
        self, name: TransactionName
    ) -> Tuple[Event, ...]:
        """Return the maintained serial schedule for *name*.

        Defined for created, non-orphan transactions (and for the root
        before creation, where it is empty).
        """
        if self.is_orphan(name):
            raise SerializationFailure(
                "%s is an orphan" % pretty_name(name)
            )
        if name in self._serial:
            return self._serial[name]
        if name == ROOT:
            return ()
        raise SerializationFailure(
            "%s was never created; no serial schedule is maintained"
            % pretty_name(name)
        )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def extend(self, event: Event) -> None:
        """Consume one more event of the concurrent schedule."""
        if isinstance(event, (InformCommitAt, InformAbortAt)):
            self.alpha.append(event)
            return
        if isinstance(event, Create):
            self._extend_create(event)
        elif isinstance(event, Commit):
            self._extend_commit(event)
        elif isinstance(event, Abort):
            self._extend_abort(event)
        else:
            self._extend_append(event)
        self.alpha.append(event)

    def extend_all(self, events: Sequence[Event]) -> "Serializer":
        for event in events:
            self.extend(event)
        return self

    # -- case 3 ---------------------------------------------------------
    def _extend_create(self, event: Create) -> None:
        name = event.transaction
        if self.is_orphan(name):
            return
        if name == ROOT:
            base: Tuple[Event, ...] = ()
        else:
            base = self._serial.get(parent(name), ())
        self._serial[name] = base + (event,)

    # -- cases 1, 2, 6, 7 ------------------------------------------------
    def _extend_append(self, event: Event) -> None:
        owner = transaction_of(event)
        if owner is None:
            return
        alpha_after = self.alpha + [event]
        for name in self._candidates(owner):
            if visible_to(alpha_after, owner, name):
                self._serial[name] = self._serial[name] + (event,)

    # -- case 4 ----------------------------------------------------------
    def _extend_commit(self, event: Commit) -> None:
        child = event.transaction
        mother = parent(child)
        if mother is None:
            raise SerializationFailure("COMMIT of the root")
        gamma = self._serial.get(mother)
        beta_child = self._serial.get(child)
        for name in self._candidates(mother):
            if not is_descendant(name, mother):
                # COMMIT(T') just happened, so T'' cannot have committed
                # yet; T'' is visible only to its descendants.
                continue
            if is_descendant(name, child):
                self._serial[name] = self._serial[name] + (event,)
                continue
            if gamma is None or beta_child is None:
                raise SerializationFailure(
                    "COMMIT(%s) before its subtree was tracked"
                    % pretty_name(child)
                )
            beta_one = remove_events(beta_child, gamma)
            beta_two = remove_events(self._serial[name], gamma)
            self._serial[name] = (
                gamma + beta_one + (event,) + beta_two
            )

    # -- case 5 ----------------------------------------------------------
    def _extend_abort(self, event: Abort) -> None:
        child = event.transaction
        mother = parent(child)
        if mother is None:
            raise SerializationFailure("ABORT of the root")
        # Descendants of the aborted transaction become orphans.
        self._orphans.add(child)
        for name in list(self._serial):
            if is_descendant(name, child):
                del self._serial[name]
        gamma = self._serial.get(mother, ())
        for name in self._candidates(mother):
            if not is_descendant(name, mother):
                continue
            beta_one = remove_events(self._serial[name], gamma)
            self._serial[name] = gamma + (event,) + beta_one

    def _candidates(self, owner: TransactionName):
        """Tracked non-orphan transactions that might see *owner*'s events."""
        return [
            name
            for name in self._serial
            if not self.is_orphan(name)
        ]


def serialize_visible(
    system_type: SystemType,
    alpha: Sequence[Event],
    name: TransactionName,
) -> Tuple[Event, ...]:
    """Return a serial schedule write-equivalent to ``visible(alpha, T)``.

    One-shot wrapper over :class:`Serializer`.  Raises
    :class:`~repro.errors.SerializationFailure` when *name* is an orphan in
    *alpha* or was never created (Theorem 34 makes no claim for orphans).
    """
    if is_orphan(alpha, name):
        raise SerializationFailure(
            "%s is an orphan in the given schedule" % pretty_name(name)
        )
    serializer = Serializer(system_type)
    serializer.extend_all(alpha)
    return serializer.serial_schedule_for(name)
