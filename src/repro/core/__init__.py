"""The paper's primary contribution (Sections 3-6).

This package models nested-transaction systems exactly as the paper does:

* :mod:`~repro.core.names` -- transaction name trees ("system types").
* :mod:`~repro.core.events` -- the serial/concurrent operation alphabet.
* :mod:`~repro.core.wellformed` -- well-formedness of component schedules.
* :mod:`~repro.core.transaction` -- transaction automata.
* :mod:`~repro.core.object_spec` / :mod:`~repro.core.basic_object` -- basic
  objects over abstract data types (Section 4.3's canonical construction).
* :mod:`~repro.core.serial_scheduler` -- the serial scheduler (Section 3.3).
* :mod:`~repro.core.generic_scheduler` -- the generic scheduler (Section 5.2).
* :mod:`~repro.core.rw_object` -- Moss' R/W Locking objects M(X) (Section 5.1).
* :mod:`~repro.core.systems` -- serial and R/W Locking system compositions.
* :mod:`~repro.core.visibility` -- visibility, orphans, essence
  (Sections 3.4, 5.1).
* :mod:`~repro.core.equieffective` -- equieffectiveness, transparency,
  write-equality and write-equivalence (Sections 4, 6.1).
* :mod:`~repro.core.serializer` -- the constructive rearrangement of
  Lemma 33.
* :mod:`~repro.core.correctness` -- the serial-correctness checker
  (Theorem 34, Corollary 35).
"""

from repro.core.names import (
    ROOT,
    SystemType,
    SystemTypeBuilder,
    TransactionName,
    ancestors,
    is_ancestor,
    is_descendant,
    is_proper_descendant,
    lca,
    parent,
    pretty_name,
)
from repro.core.events import (
    Abort,
    Commit,
    Create,
    InformAbortAt,
    InformCommitAt,
    ReportAbort,
    ReportCommit,
    RequestCommit,
    RequestCreate,
    is_serial_operation,
    transaction_of,
)
from repro.core.object_spec import ObjectSpec, Operation
from repro.core.systems import SerialSystem, RWLockingSystem
from repro.core.correctness import (
    CorrectnessReport,
    check_schedule,
    check_serial_correctness,
)
from repro.core.serializer import serialize_visible

__all__ = [
    "Abort",
    "Commit",
    "CorrectnessReport",
    "Create",
    "InformAbortAt",
    "InformCommitAt",
    "ObjectSpec",
    "Operation",
    "ReportAbort",
    "ReportCommit",
    "RequestCommit",
    "RequestCreate",
    "ROOT",
    "RWLockingSystem",
    "SerialSystem",
    "SystemType",
    "SystemTypeBuilder",
    "TransactionName",
    "ancestors",
    "check_schedule",
    "check_serial_correctness",
    "is_ancestor",
    "is_descendant",
    "is_proper_descendant",
    "is_serial_operation",
    "lca",
    "parent",
    "pretty_name",
    "serialize_visible",
    "transaction_of",
]
