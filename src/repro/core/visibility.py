"""Visibility, orphans, liveness and essence (Sections 3.4, 3.5, 5.1).

These are the paper's vocabulary for talking about the fate of transactions
inside an arbitrary operation sequence:

* T is **committed to** an ancestor T' in alpha when COMMIT(U) occurs for
  every U that is an ancestor of T and a proper descendant of T'.
* T is **visible to** T' when T is committed to lca(T, T').
* ``visible(alpha, T)`` is the subsequence of serial events pi with
  ``transaction(pi)`` visible to T (INFORM operations never qualify).
* T is an **orphan** when some ancestor of T has an ABORT in alpha.
* T is **live** when alpha contains CREATE(T) but no return for T.

The object-local analogues for M(X) schedules use INFORM_COMMIT events in
ascending (leaf-to-root) order: *committed at X*, *visible at X*,
``visible_x(alpha, T)``, *orphan at X*.

``essence(beta)`` (Section 5.1) is ``write(beta)`` with a CREATE(U)
inserted immediately before each REQUEST_COMMIT(U, v).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set, Tuple

from repro.core.events import (
    Abort,
    Commit,
    Create,
    Event,
    InformAbortAt,
    InformCommitAt,
    RequestCommit,
    is_return_event,
    transaction_of,
)
from repro.core.names import (
    SystemType,
    TransactionName,
    ancestors,
    chain_between,
    lca,
)

Schedule = Tuple[Event, ...]


def committed_to(
    alpha: Sequence[Event],
    name: TransactionName,
    ancestor: TransactionName,
) -> bool:
    """Return True if *name* is committed to *ancestor* in *alpha*.

    Requires COMMIT(U) for every U that is an ancestor of *name* and a
    proper descendant of *ancestor*.  Trivially true when
    ``name == ancestor``.
    """
    needed = set(chain_between(name, ancestor))
    if not needed:
        return True
    for event in alpha:
        if isinstance(event, Commit) and event.transaction in needed:
            needed.discard(event.transaction)
            if not needed:
                return True
    return not needed


def visible_to(
    alpha: Sequence[Event],
    name: TransactionName,
    other: TransactionName,
) -> bool:
    """Return True if *name* is visible to *other* in *alpha*."""
    return committed_to(alpha, name, lca(name, other))


def visible(alpha: Sequence[Event], name: TransactionName) -> Schedule:
    """Return ``visible(alpha, T)``.

    The subsequence of events pi of *alpha* with ``transaction(pi)`` visible
    to T in *alpha*.  Visibility is evaluated against the whole sequence,
    exactly as the paper does.
    """
    verdicts = {}
    kept: List[Event] = []
    for event in alpha:
        owner = transaction_of(event)
        if owner is None:
            continue
        verdict = verdicts.get(owner)
        if verdict is None:
            verdict = visible_to(alpha, owner, name)
            verdicts[owner] = verdict
        if verdict:
            kept.append(event)
    return tuple(kept)


def is_orphan(alpha: Sequence[Event], name: TransactionName) -> bool:
    """Return True if ABORT(U) occurs in *alpha* for some ancestor U of T."""
    doomed = {
        event.transaction
        for event in alpha
        if isinstance(event, Abort)
    }
    if not doomed:
        return False
    return any(up in doomed for up in ancestors(name))


def is_live(alpha: Sequence[Event], name: TransactionName) -> bool:
    """Return True if CREATE(T) occurs in *alpha* with no return for T."""
    created = False
    for event in alpha:
        if isinstance(event, Create) and event.transaction == name:
            created = True
        elif is_return_event(event) and event.transaction == name:
            return False
    return created


def live_transactions(alpha: Sequence[Event]) -> Set[TransactionName]:
    """Return every transaction live in *alpha*."""
    created: Set[TransactionName] = set()
    returned: Set[TransactionName] = set()
    for event in alpha:
        if isinstance(event, Create):
            created.add(event.transaction)
        elif is_return_event(event):
            returned.add(event.transaction)
    return created - returned


# ----------------------------------------------------------------------
# Object-local (M(X)) notions
# ----------------------------------------------------------------------
def committed_at(
    alpha: Sequence[Event],
    object_name: str,
    name: TransactionName,
    ancestor: TransactionName,
) -> bool:
    """Return True if *name* is committed at X to *ancestor* in *alpha*.

    Requires a subsequence of INFORM_COMMIT_AT(X)OF(U) events for the whole
    chain, arranged in ascending order (the INFORM for parent(U) preceded
    by the one for U).
    """
    chain = list(chain_between(name, ancestor))
    if not chain:
        return True
    position = 0
    for event in alpha:
        if position >= len(chain):
            break
        if (
            isinstance(event, InformCommitAt)
            and event.object_name == object_name
            and event.transaction == chain[position]
        ):
            position += 1
    return position >= len(chain)


def visible_at(
    alpha: Sequence[Event],
    object_name: str,
    name: TransactionName,
    other: TransactionName,
) -> bool:
    """Return True if *name* is visible at X to *other* in *alpha*."""
    return committed_at(alpha, object_name, name, lca(name, other))


def visible_x(
    alpha: Sequence[Event],
    system_type: SystemType,
    object_name: str,
    name: TransactionName,
) -> Schedule:
    """Return ``visible_X(alpha, T)``.

    The subsequence of M(X) access operations (CREATE / REQUEST_COMMIT)
    whose access transactions are visible at X to T -- a well-formed
    sequence of operations of basic object X.
    """
    verdicts = {}
    kept: List[Event] = []
    for event in alpha:
        if not isinstance(event, (Create, RequestCommit)):
            continue
        access = event.transaction
        if not system_type.is_access(access):
            continue
        if system_type.object_of(access) != object_name:
            continue
        verdict = verdicts.get(access)
        if verdict is None:
            verdict = visible_at(alpha, object_name, access, name)
            verdicts[access] = verdict
        if verdict:
            kept.append(event)
    return tuple(kept)


def is_orphan_at(
    alpha: Sequence[Event],
    object_name: str,
    name: TransactionName,
) -> bool:
    """Return True if INFORM_ABORT_AT(X)OF(U) occurs for an ancestor U."""
    doomed = {
        event.transaction
        for event in alpha
        if isinstance(event, InformAbortAt)
        and event.object_name == object_name
    }
    if not doomed:
        return False
    return any(up in doomed for up in ancestors(name))


# ----------------------------------------------------------------------
# write() and essence()
# ----------------------------------------------------------------------
def write_subsequence(
    alpha: Sequence[Event],
    system_type: SystemType,
    object_name: Optional[str] = None,
) -> Schedule:
    """Return ``write(alpha)``: REQUEST_COMMIT events of write accesses.

    When *object_name* is given, only write accesses to that object are
    kept; otherwise write accesses to any object.
    """
    kept: List[Event] = []
    for event in alpha:
        if not isinstance(event, RequestCommit):
            continue
        name = event.transaction
        if not system_type.is_access(name):
            continue
        if object_name is not None and (
            system_type.object_of(name) != object_name
        ):
            continue
        if not system_type.is_read_access(name):
            kept.append(event)
    return tuple(kept)


def essence(
    beta: Sequence[Event],
    system_type: SystemType,
    object_name: Optional[str] = None,
) -> Schedule:
    """Return ``essence(beta)``.

    ``write(beta)`` with a CREATE(U) event placed immediately before each
    REQUEST_COMMIT(U, u) event.  The result consists of a subset of the
    events of a well-formed *beta* and is well-formed.
    """
    result: List[Event] = []
    for event in write_subsequence(beta, system_type, object_name):
        result.append(Create(event.transaction))
        result.append(event)
    return tuple(result)
