"""Transaction name trees: the paper's "system types" (Section 3).

The pattern of transaction nesting is a set of transaction names organised
into a tree by ``parent()``, rooted at the mythical transaction ``T0`` that
models the external environment.  Leaves are *accesses*, partitioned by the
object they touch; internal nodes create and manage subtransactions but do
not access data (following Argus, as the paper notes).

Names are tuples of integers: ``()`` is ``T0``, ``(0,)`` its first child,
``(0, 2)`` that child's third child, and so on.  Tuples make the tree
functions (:func:`parent`, :func:`lca`, :func:`is_ancestor`) trivial prefix
arithmetic, are hashable, and sort into a stable order.

A :class:`SystemType` instance is a *finite* concrete tree (the paper's
trees are infinite templates of which any execution touches finitely many
nodes) plus the classification data: which leaves access which objects with
which operations, and the object specifications themselves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.object_spec import ObjectSpec, Operation
from repro.errors import SystemTypeError

TransactionName = Tuple[int, ...]

#: The root transaction T0, representing the external environment.
ROOT: TransactionName = ()


def parent(name: TransactionName) -> Optional[TransactionName]:
    """Return the parent of *name*, or None for the root."""
    if not name:
        return None
    return name[:-1]


def is_ancestor(a: TransactionName, b: TransactionName) -> bool:
    """Return True if *a* is an ancestor of *b* (every name is its own)."""
    return b[: len(a)] == a


def is_descendant(a: TransactionName, b: TransactionName) -> bool:
    """Return True if *a* is a descendant of *b* (every name is its own)."""
    return is_ancestor(b, a)


def is_proper_ancestor(a: TransactionName, b: TransactionName) -> bool:
    """Return True if *a* is an ancestor of *b* and ``a != b``."""
    return a != b and is_ancestor(a, b)


def is_proper_descendant(a: TransactionName, b: TransactionName) -> bool:
    """Return True if *a* is a descendant of *b* and ``a != b``."""
    return a != b and is_descendant(a, b)


def ancestors(name: TransactionName) -> Iterator[TransactionName]:
    """Yield *name* and every ancestor up to and including the root."""
    for length in range(len(name), -1, -1):
        yield name[:length]


def proper_ancestors(name: TransactionName) -> Iterator[TransactionName]:
    """Yield every proper ancestor of *name*, from parent up to the root."""
    for length in range(len(name) - 1, -1, -1):
        yield name[:length]


def lca(a: TransactionName, b: TransactionName) -> TransactionName:
    """Return the least common ancestor of *a* and *b*."""
    prefix: List[int] = []
    for x, y in zip(a, b):
        if x != y:
            break
        prefix.append(x)
    return tuple(prefix)


def are_siblings(a: TransactionName, b: TransactionName) -> bool:
    """Return True if *a* and *b* are distinct children of the same parent."""
    return a != b and len(a) == len(b) and a[:-1] == b[:-1] and bool(a)


def chain_between(
    lower: TransactionName, upper: TransactionName
) -> Iterator[TransactionName]:
    """Yield every ancestor of *lower* that is a proper descendant of *upper*.

    This is the chain the paper quantifies over in "T is committed to T'":
    ``COMMIT(U)`` must occur for every such U.  Yielded in ascending order
    (from *lower* towards *upper*).
    """
    if not is_ancestor(upper, lower):
        raise SystemTypeError(
            "%r is not an ancestor of %r" % (upper, lower)
        )
    for length in range(len(lower), len(upper), -1):
        yield lower[:length]


class NameNode:
    """One interned transaction name with precomputed tree data.

    ``chain[d]`` is the ancestor of :attr:`name` at depth ``d`` (so
    ``chain[0]`` is the root and ``chain[depth]`` is the name itself),
    and :attr:`ancestry` is the same chain as a frozenset, making
    "is X an ancestor of this name" a single set-membership test.
    Nodes are built once per name by a :class:`NameTable` and never
    mutated afterwards.
    """

    __slots__ = ("name", "parent", "depth", "chain", "ancestry")

    def __init__(
        self,
        name: TransactionName,
        parent: Optional["NameNode"],
        chain: Tuple[TransactionName, ...],
        ancestry: FrozenSet[TransactionName],
    ):
        self.name = name
        self.parent = parent
        self.depth = len(name)
        self.chain = chain
        self.ancestry = ancestry

    def __repr__(self) -> str:
        return "NameNode(%s)" % pretty_name(self.name)


class NameTable:
    """Interned name nodes: O(1) ancestry tests over transaction names.

    The tuple functions above recompute prefix arithmetic on every
    call: ``is_ancestor`` slices and compares, ``lca`` zips from the
    root.  The engine's lock fast path asks the same ancestry
    questions about the same few names millions of times, so the
    table interns each name once as a :class:`NameNode` carrying its
    ancestor *set*; ``is_ancestor`` then costs one dict lookup plus
    one set-membership test, independent of how many holders a lock
    table has accumulated.

    The tuple API is unchanged -- every method takes and returns plain
    name tuples and agrees exactly with the module-level reference
    implementations (property-tested in ``tests/core``).

    ``max_size`` bounds the intern pool for long-running processes
    that mint top-level names forever: once full, lookups of new
    names build transient (uncached) nodes, trading speed for
    bounded memory, never correctness.
    """

    def __init__(self, max_size: Optional[int] = None):
        root = NameNode(ROOT, None, (ROOT,), frozenset((ROOT,)))
        self._nodes: Dict[TransactionName, NameNode] = {ROOT: root}
        self.max_size = max_size

    def __len__(self) -> int:
        return len(self._nodes)

    def clear(self) -> None:
        """Drop every interned node except the root."""
        root = self._nodes[ROOT]
        self._nodes = {ROOT: root}

    def node(self, name: TransactionName) -> NameNode:
        """Return the interned node for *name*, building it if needed."""
        node = self._nodes.get(name)
        if node is None:
            node = self._build(name)
        return node

    def _build(self, name: TransactionName) -> NameNode:
        # Walk down from the deepest already-interned prefix so a whole
        # chain costs one pass; each new node extends its parent's chain
        # and ancestry by one element.
        depth = len(name)
        known = depth - 1
        while known > 0 and name[:known] not in self._nodes:
            known -= 1
        node = self._nodes[name[:known]]
        for d in range(known + 1, depth + 1):
            prefix = name[:d]
            node = NameNode(
                prefix,
                node,
                node.chain + (prefix,),
                node.ancestry | {prefix},
            )
            if (
                self.max_size is None
                or len(self._nodes) < self.max_size
            ):
                self._nodes[prefix] = node
        return node

    # ------------------------------------------------------------------
    # Tree queries (tuple in, tuple out; agree with the module functions)
    # ------------------------------------------------------------------
    def parent(self, name: TransactionName) -> Optional[TransactionName]:
        if not name:
            return None
        node = self._nodes.get(name)
        if node is not None:
            return node.parent.name
        return name[:-1]

    def depth(self, name: TransactionName) -> int:
        return len(name)

    def is_ancestor(self, a: TransactionName, b: TransactionName) -> bool:
        """True if *a* is an ancestor of *b* (every name is its own)."""
        node = self._nodes.get(b)
        if node is not None:
            return a in node.ancestry
        if a == b:
            return True
        if len(a) >= len(b):
            return False
        # b itself may be a never-interned leaf (the engine's access
        # names are fresh every time); its parent is the reused part.
        return a in self.node(b[:-1]).ancestry

    def is_descendant(self, a: TransactionName, b: TransactionName) -> bool:
        """True if *a* is a descendant of *b* (every name is its own)."""
        return self.is_ancestor(b, a)

    def lca(self, a: TransactionName, b: TransactionName) -> TransactionName:
        """Least common ancestor, by binary search over interned chains."""
        chain_a = self.node(a).chain
        chain_b = self.node(b).chain
        lo, hi = 0, min(len(chain_a), len(chain_b)) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            left, right = chain_a[mid], chain_b[mid]
            # Interned prefixes are shared tuple objects, so the
            # identity test usually short-circuits the comparison.
            if left is right or left == right:
                lo = mid
            else:
                hi = mid - 1
        return chain_a[lo]

    def chain_between(
        self, lower: TransactionName, upper: TransactionName
    ) -> Iterator[TransactionName]:
        """Ancestors of *lower* properly below *upper*, ascending."""
        if not self.is_ancestor(upper, lower):
            raise SystemTypeError(
                "%r is not an ancestor of %r" % (upper, lower)
            )
        chain = self.node(lower).chain
        for d in range(len(lower), len(upper), -1):
            yield chain[d]


#: Process-wide intern pool.  Sharing one table across engines is
#: deliberate: different engines reuse the same small names ((0,),
#: (0, 1), ...), so the pool stays warm; the cap bounds memory for
#: services that mint fresh top-level names forever.
_DEFAULT_TABLE = NameTable(max_size=1 << 20)


def default_table() -> NameTable:
    """The process-wide :class:`NameTable` used by the engine hot path."""
    return _DEFAULT_TABLE


def intern_name(name: TransactionName) -> TransactionName:
    """Intern *name* (and its ancestor chain) in the default table."""
    return _DEFAULT_TABLE.node(name).name


def pretty_name(name: TransactionName) -> str:
    """Render a transaction name as the paper writes it, e.g. ``T0.1.2``."""
    if not name:
        return "T0"
    return "T0." + ".".join(str(index) for index in name)


@dataclass(frozen=True)
class AccessSpec:
    """Classification of an access leaf: which object, which operation."""

    object_name: str
    operation: Operation

    @property
    def is_read(self) -> bool:
        return self.operation.is_read


class SystemType:
    """A finite concrete system type.

    Holds the transaction tree (children of each internal node), the object
    specifications, and the access classification.  Instances are immutable
    once built; use :class:`SystemTypeBuilder` to construct them.
    """

    def __init__(
        self,
        children: Mapping[TransactionName, Sequence[TransactionName]],
        accesses: Mapping[TransactionName, AccessSpec],
        objects: Mapping[str, ObjectSpec],
    ):
        self._children: Dict[TransactionName, Tuple[TransactionName, ...]] = {
            name: tuple(kids) for name, kids in children.items()
        }
        self._accesses = dict(accesses)
        self._objects = dict(objects)
        self._validate()
        self._accesses_by_object: Dict[str, Tuple[TransactionName, ...]] = {}
        for object_name in self._objects:
            members = tuple(
                sorted(
                    name
                    for name, spec in self._accesses.items()
                    if spec.object_name == object_name
                )
            )
            self._accesses_by_object[object_name] = members

    def _validate(self) -> None:
        for name, spec in self._accesses.items():
            if name in self._children and self._children[name]:
                raise SystemTypeError(
                    "access %s cannot have children" % pretty_name(name)
                )
            if spec.object_name not in self._objects:
                raise SystemTypeError(
                    "access %s names unknown object %r"
                    % (pretty_name(name), spec.object_name)
                )
        for name, kids in self._children.items():
            for kid in kids:
                if parent(kid) != name:
                    raise SystemTypeError(
                        "%s listed as child of %s"
                        % (pretty_name(kid), pretty_name(name))
                    )
        for name in self.transactions():
            if name == ROOT:
                continue
            mother = parent(name)
            if (
                mother not in self._children
                or name not in self._children[mother]
            ):
                raise SystemTypeError(
                    "%s is not reachable from the root" % pretty_name(name)
                )

    # ------------------------------------------------------------------
    # Tree structure
    # ------------------------------------------------------------------
    def children(self, name: TransactionName) -> Tuple[TransactionName, ...]:
        """Return the children of *name* (empty tuple for leaves)."""
        return self._children.get(name, ())

    def transactions(self) -> Iterator[TransactionName]:
        """Yield every transaction name, root first, in preorder."""
        stack: List[TransactionName] = [ROOT]
        while stack:
            name = stack.pop()
            yield name
            stack.extend(reversed(self.children(name)))

    def internal_transactions(self) -> Iterator[TransactionName]:
        """Yield every non-access transaction name (including the root)."""
        for name in self.transactions():
            if not self.is_access(name):
                yield name

    def contains(self, name: TransactionName) -> bool:
        """Return True if *name* belongs to this system type."""
        if name == ROOT:
            return True
        mother = parent(name)
        return mother is not None and name in self.children(mother)

    def size(self) -> int:
        """Total number of transaction names in the tree."""
        return sum(1 for _ in self.transactions())

    # ------------------------------------------------------------------
    # Accesses and objects
    # ------------------------------------------------------------------
    def is_access(self, name: TransactionName) -> bool:
        """Return True if *name* is an access (a classified leaf)."""
        return name in self._accesses

    def access_spec(self, name: TransactionName) -> AccessSpec:
        """Return the access classification of *name*."""
        try:
            return self._accesses[name]
        except KeyError:
            raise SystemTypeError(
                "%s is not an access" % pretty_name(name)
            ) from None

    def object_of(self, name: TransactionName) -> str:
        """Return the object name the access *name* touches."""
        return self.access_spec(name).object_name

    def operation_of(self, name: TransactionName) -> Operation:
        """Return the abstract operation the access *name* performs."""
        return self.access_spec(name).operation

    def is_read_access(self, name: TransactionName) -> bool:
        """Return True if *name* is classified as a read access."""
        return self.access_spec(name).is_read

    def object_names(self) -> Tuple[str, ...]:
        """Return the object names, sorted."""
        return tuple(sorted(self._objects))

    def object_spec(self, object_name: str) -> ObjectSpec:
        """Return the :class:`ObjectSpec` for *object_name*."""
        return self._objects[object_name]

    def accesses_of(self, object_name: str) -> Tuple[TransactionName, ...]:
        """Return every access to *object_name* (the partition element)."""
        return self._accesses_by_object[object_name]

    def all_accesses(self) -> Iterator[TransactionName]:
        """Yield every access name."""
        return iter(sorted(self._accesses))


@dataclass
class SystemTypeBuilder:
    """Incremental construction of a :class:`SystemType`.

    Example::

        builder = SystemTypeBuilder()
        builder.add_object(IntRegister("x"))
        t1 = builder.add_child(ROOT)
        builder.add_access(t1, "x", IntRegister.write(5))
        builder.add_access(t1, "x", IntRegister.read())
        system_type = builder.build()
    """

    _children: Dict[TransactionName, List[TransactionName]] = field(
        default_factory=lambda: {ROOT: []}
    )
    _accesses: Dict[TransactionName, AccessSpec] = field(default_factory=dict)
    _objects: Dict[str, ObjectSpec] = field(default_factory=dict)

    def add_object(self, spec: ObjectSpec) -> "SystemTypeBuilder":
        """Register an object specification; returns self for chaining."""
        if spec.name in self._objects:
            raise SystemTypeError("duplicate object %r" % spec.name)
        self._objects[spec.name] = spec
        return self

    def add_child(self, parent_name: TransactionName) -> TransactionName:
        """Add a fresh internal child under *parent_name*; return its name."""
        name = self._new_child(parent_name)
        self._children[name] = []
        return name

    def add_access(
        self,
        parent_name: TransactionName,
        object_name: str,
        operation: Operation,
    ) -> TransactionName:
        """Add a fresh access leaf under *parent_name* and return its name."""
        if object_name not in self._objects:
            raise SystemTypeError("unknown object %r" % object_name)
        name = self._new_child(parent_name)
        self._accesses[name] = AccessSpec(object_name, operation)
        return name

    def _new_child(self, parent_name: TransactionName) -> TransactionName:
        if parent_name in self._accesses:
            raise SystemTypeError(
                "cannot add children under access %s"
                % pretty_name(parent_name)
            )
        if parent_name not in self._children:
            raise SystemTypeError(
                "unknown parent %s" % pretty_name(parent_name)
            )
        siblings = self._children[parent_name]
        name = parent_name + (len(siblings),)
        siblings.append(name)
        return name

    def build(self) -> SystemType:
        """Freeze the builder into an immutable :class:`SystemType`."""
        return SystemType(self._children, self._accesses, self._objects)
