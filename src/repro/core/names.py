"""Transaction name trees: the paper's "system types" (Section 3).

The pattern of transaction nesting is a set of transaction names organised
into a tree by ``parent()``, rooted at the mythical transaction ``T0`` that
models the external environment.  Leaves are *accesses*, partitioned by the
object they touch; internal nodes create and manage subtransactions but do
not access data (following Argus, as the paper notes).

Names are tuples of integers: ``()`` is ``T0``, ``(0,)`` its first child,
``(0, 2)`` that child's third child, and so on.  Tuples make the tree
functions (:func:`parent`, :func:`lca`, :func:`is_ancestor`) trivial prefix
arithmetic, are hashable, and sort into a stable order.

A :class:`SystemType` instance is a *finite* concrete tree (the paper's
trees are infinite templates of which any execution touches finitely many
nodes) plus the classification data: which leaves access which objects with
which operations, and the object specifications themselves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.core.object_spec import ObjectSpec, Operation
from repro.errors import SystemTypeError

TransactionName = Tuple[int, ...]

#: The root transaction T0, representing the external environment.
ROOT: TransactionName = ()


def parent(name: TransactionName) -> Optional[TransactionName]:
    """Return the parent of *name*, or None for the root."""
    if not name:
        return None
    return name[:-1]


def is_ancestor(a: TransactionName, b: TransactionName) -> bool:
    """Return True if *a* is an ancestor of *b* (every name is its own)."""
    return b[: len(a)] == a


def is_descendant(a: TransactionName, b: TransactionName) -> bool:
    """Return True if *a* is a descendant of *b* (every name is its own)."""
    return is_ancestor(b, a)


def is_proper_ancestor(a: TransactionName, b: TransactionName) -> bool:
    """Return True if *a* is an ancestor of *b* and ``a != b``."""
    return a != b and is_ancestor(a, b)


def is_proper_descendant(a: TransactionName, b: TransactionName) -> bool:
    """Return True if *a* is a descendant of *b* and ``a != b``."""
    return a != b and is_descendant(a, b)


def ancestors(name: TransactionName) -> Iterator[TransactionName]:
    """Yield *name* and every ancestor up to and including the root."""
    for length in range(len(name), -1, -1):
        yield name[:length]


def proper_ancestors(name: TransactionName) -> Iterator[TransactionName]:
    """Yield every proper ancestor of *name*, from parent up to the root."""
    for length in range(len(name) - 1, -1, -1):
        yield name[:length]


def lca(a: TransactionName, b: TransactionName) -> TransactionName:
    """Return the least common ancestor of *a* and *b*."""
    prefix: List[int] = []
    for x, y in zip(a, b):
        if x != y:
            break
        prefix.append(x)
    return tuple(prefix)


def are_siblings(a: TransactionName, b: TransactionName) -> bool:
    """Return True if *a* and *b* are distinct children of the same parent."""
    return a != b and len(a) == len(b) and a[:-1] == b[:-1] and bool(a)


def chain_between(
    lower: TransactionName, upper: TransactionName
) -> Iterator[TransactionName]:
    """Yield every ancestor of *lower* that is a proper descendant of *upper*.

    This is the chain the paper quantifies over in "T is committed to T'":
    ``COMMIT(U)`` must occur for every such U.  Yielded in ascending order
    (from *lower* towards *upper*).
    """
    if not is_ancestor(upper, lower):
        raise SystemTypeError(
            "%r is not an ancestor of %r" % (upper, lower)
        )
    for length in range(len(lower), len(upper), -1):
        yield lower[:length]


def pretty_name(name: TransactionName) -> str:
    """Render a transaction name as the paper writes it, e.g. ``T0.1.2``."""
    if not name:
        return "T0"
    return "T0." + ".".join(str(index) for index in name)


@dataclass(frozen=True)
class AccessSpec:
    """Classification of an access leaf: which object, which operation."""

    object_name: str
    operation: Operation

    @property
    def is_read(self) -> bool:
        return self.operation.is_read


class SystemType:
    """A finite concrete system type.

    Holds the transaction tree (children of each internal node), the object
    specifications, and the access classification.  Instances are immutable
    once built; use :class:`SystemTypeBuilder` to construct them.
    """

    def __init__(
        self,
        children: Mapping[TransactionName, Sequence[TransactionName]],
        accesses: Mapping[TransactionName, AccessSpec],
        objects: Mapping[str, ObjectSpec],
    ):
        self._children: Dict[TransactionName, Tuple[TransactionName, ...]] = {
            name: tuple(kids) for name, kids in children.items()
        }
        self._accesses = dict(accesses)
        self._objects = dict(objects)
        self._validate()
        self._accesses_by_object: Dict[str, Tuple[TransactionName, ...]] = {}
        for object_name in self._objects:
            members = tuple(
                sorted(
                    name
                    for name, spec in self._accesses.items()
                    if spec.object_name == object_name
                )
            )
            self._accesses_by_object[object_name] = members

    def _validate(self) -> None:
        for name, spec in self._accesses.items():
            if name in self._children and self._children[name]:
                raise SystemTypeError(
                    "access %s cannot have children" % pretty_name(name)
                )
            if spec.object_name not in self._objects:
                raise SystemTypeError(
                    "access %s names unknown object %r"
                    % (pretty_name(name), spec.object_name)
                )
        for name, kids in self._children.items():
            for kid in kids:
                if parent(kid) != name:
                    raise SystemTypeError(
                        "%s listed as child of %s"
                        % (pretty_name(kid), pretty_name(name))
                    )
        for name in self.transactions():
            if name == ROOT:
                continue
            mother = parent(name)
            if (
                mother not in self._children
                or name not in self._children[mother]
            ):
                raise SystemTypeError(
                    "%s is not reachable from the root" % pretty_name(name)
                )

    # ------------------------------------------------------------------
    # Tree structure
    # ------------------------------------------------------------------
    def children(self, name: TransactionName) -> Tuple[TransactionName, ...]:
        """Return the children of *name* (empty tuple for leaves)."""
        return self._children.get(name, ())

    def transactions(self) -> Iterator[TransactionName]:
        """Yield every transaction name, root first, in preorder."""
        stack: List[TransactionName] = [ROOT]
        while stack:
            name = stack.pop()
            yield name
            stack.extend(reversed(self.children(name)))

    def internal_transactions(self) -> Iterator[TransactionName]:
        """Yield every non-access transaction name (including the root)."""
        for name in self.transactions():
            if not self.is_access(name):
                yield name

    def contains(self, name: TransactionName) -> bool:
        """Return True if *name* belongs to this system type."""
        if name == ROOT:
            return True
        mother = parent(name)
        return mother is not None and name in self.children(mother)

    def size(self) -> int:
        """Total number of transaction names in the tree."""
        return sum(1 for _ in self.transactions())

    # ------------------------------------------------------------------
    # Accesses and objects
    # ------------------------------------------------------------------
    def is_access(self, name: TransactionName) -> bool:
        """Return True if *name* is an access (a classified leaf)."""
        return name in self._accesses

    def access_spec(self, name: TransactionName) -> AccessSpec:
        """Return the access classification of *name*."""
        try:
            return self._accesses[name]
        except KeyError:
            raise SystemTypeError(
                "%s is not an access" % pretty_name(name)
            ) from None

    def object_of(self, name: TransactionName) -> str:
        """Return the object name the access *name* touches."""
        return self.access_spec(name).object_name

    def operation_of(self, name: TransactionName) -> Operation:
        """Return the abstract operation the access *name* performs."""
        return self.access_spec(name).operation

    def is_read_access(self, name: TransactionName) -> bool:
        """Return True if *name* is classified as a read access."""
        return self.access_spec(name).is_read

    def object_names(self) -> Tuple[str, ...]:
        """Return the object names, sorted."""
        return tuple(sorted(self._objects))

    def object_spec(self, object_name: str) -> ObjectSpec:
        """Return the :class:`ObjectSpec` for *object_name*."""
        return self._objects[object_name]

    def accesses_of(self, object_name: str) -> Tuple[TransactionName, ...]:
        """Return every access to *object_name* (the partition element)."""
        return self._accesses_by_object[object_name]

    def all_accesses(self) -> Iterator[TransactionName]:
        """Yield every access name."""
        return iter(sorted(self._accesses))


@dataclass
class SystemTypeBuilder:
    """Incremental construction of a :class:`SystemType`.

    Example::

        builder = SystemTypeBuilder()
        builder.add_object(IntRegister("x"))
        t1 = builder.add_child(ROOT)
        builder.add_access(t1, "x", IntRegister.write(5))
        builder.add_access(t1, "x", IntRegister.read())
        system_type = builder.build()
    """

    _children: Dict[TransactionName, List[TransactionName]] = field(
        default_factory=lambda: {ROOT: []}
    )
    _accesses: Dict[TransactionName, AccessSpec] = field(default_factory=dict)
    _objects: Dict[str, ObjectSpec] = field(default_factory=dict)

    def add_object(self, spec: ObjectSpec) -> "SystemTypeBuilder":
        """Register an object specification; returns self for chaining."""
        if spec.name in self._objects:
            raise SystemTypeError("duplicate object %r" % spec.name)
        self._objects[spec.name] = spec
        return self

    def add_child(self, parent_name: TransactionName) -> TransactionName:
        """Add a fresh internal child under *parent_name*; return its name."""
        name = self._new_child(parent_name)
        self._children[name] = []
        return name

    def add_access(
        self,
        parent_name: TransactionName,
        object_name: str,
        operation: Operation,
    ) -> TransactionName:
        """Add a fresh access leaf under *parent_name* and return its name."""
        if object_name not in self._objects:
            raise SystemTypeError("unknown object %r" % object_name)
        name = self._new_child(parent_name)
        self._accesses[name] = AccessSpec(object_name, operation)
        return name

    def _new_child(self, parent_name: TransactionName) -> TransactionName:
        if parent_name in self._accesses:
            raise SystemTypeError(
                "cannot add children under access %s"
                % pretty_name(parent_name)
            )
        if parent_name not in self._children:
            raise SystemTypeError(
                "unknown parent %s" % pretty_name(parent_name)
            )
        siblings = self._children[parent_name]
        name = parent_name + (len(siblings),)
        siblings.append(name)
        return name

    def build(self) -> SystemType:
        """Freeze the builder into an immutable :class:`SystemType`."""
        return SystemType(self._children, self._accesses, self._objects)
