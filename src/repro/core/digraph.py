"""Generic directed-graph cycle utilities shared by every checker.

Three consumers maintain a graph over top-level transactions and ask
the same questions of it: the classical offline precedence graph
(:mod:`repro.core.serializability`), the streaming serialization graph
of the online auditor (:mod:`repro.audit.graph`), and the offline
anomaly checker built on it (:mod:`repro.checking.anomalies`).  This
module is their one cycle/topology core, deliberately free of any
transaction vocabulary: nodes are opaque sortable hashables, adjacency
is a callable, and every traversal visits successors in sorted order so
results are deterministic across runs and platforms.
"""

from __future__ import annotations

from collections import deque
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    TypeVar,
)

Node = TypeVar("Node")

#: Adjacency: maps a node to its successors (any iterable; the
#: traversals sort it, so sets and dicts are fine).
Successors = Callable[[Node], Iterable[Node]]


def find_cycle(
    nodes: Iterable[Node], successors: Successors
) -> Optional[List[Node]]:
    """One cycle as a closed node list (``[a, b, a]``), or ``None``.

    Iterative colouring DFS from every node in sorted order, visiting
    successors in sorted order: the returned cycle is a deterministic
    function of the graph, and deep graphs cannot overflow the
    recursion limit.
    """
    state: Dict[Node, int] = {}
    for root in sorted(nodes):
        if state.get(root, 0) != 0:
            continue
        path: List[Node] = []
        # Each frame is (node, iterator over its sorted successors).
        stack = [(root, iter(sorted(successors(root))))]
        state[root] = 1
        path.append(root)
        while stack:
            node, targets = stack[-1]
            advanced = False
            for target in targets:
                mark = state.get(target, 0)
                if mark == 1:
                    return path[path.index(target):] + [target]
                if mark == 0:
                    state[target] = 1
                    path.append(target)
                    stack.append(
                        (target, iter(sorted(successors(target))))
                    )
                    advanced = True
                    break
            if not advanced:
                state[node] = 2
                path.pop()
                stack.pop()
    return None


def shortest_cycle_through(
    node: Node, successors: Successors
) -> Optional[List[Node]]:
    """The shortest cycle containing *node*, closed, or ``None``.

    BFS from *node* back to itself, expanding successors in sorted
    order, so among equally short cycles the lexicographically first
    one is returned.  This is what makes a freshly closed cycle a
    *minimal* witness: when the caller knows every new cycle passes
    through *node* (the vertex it just added), the BFS shortest path
    back to *node* has no shortcut through other vertices.
    """
    parents: Dict[Node, Node] = {}
    queue = deque([node])
    seen = {node}
    while queue:
        current = queue.popleft()
        for target in sorted(successors(current)):
            if target == node:
                cycle = [current]
                while current != node:
                    current = parents[current]
                    cycle.append(current)
                cycle.reverse()
                return cycle + [node]
            if target not in seen:
                seen.add(target)
                parents[target] = current
                queue.append(target)
    return None


def topological_order(
    nodes: Iterable[Node], successors: Successors
) -> List[Node]:
    """A deterministic topological order of an acyclic graph.

    Iterative DFS postorder, reversed; nodes and successors are visited
    in sorted order, matching :func:`find_cycle`'s traversal.  Raises
    :class:`ValueError` on a cycle -- callers that want the cycle
    itself run :func:`find_cycle` first.
    """
    order: List[Node] = []
    state: Dict[Node, int] = {}
    for root in sorted(nodes):
        if state.get(root, 0) != 0:
            continue
        stack = [(root, iter(sorted(successors(root))))]
        state[root] = 1
        while stack:
            node, targets = stack[-1]
            advanced = False
            for target in targets:
                mark = state.get(target, 0)
                if mark == 1:
                    raise ValueError(
                        "graph has a cycle through %r" % (target,)
                    )
                if mark == 0:
                    state[target] = 1
                    stack.append(
                        (target, iter(sorted(successors(target))))
                    )
                    advanced = True
                    break
            if not advanced:
                state[node] = 2
                order.append(node)
                stack.pop()
    order.reverse()
    return order
