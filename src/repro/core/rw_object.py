"""R/W Locking objects M(X): Moss' algorithm (Section 5.1), verbatim.

``M(X)`` is a resilient, lock-managing variant of basic object X.  Its
state holds:

* ``write_lockholders`` and ``read_lockholders`` -- sets of transactions;
  two locks *conflict* when held by different transactions and at least one
  is a write lock;
* ``create_requested`` and ``run`` -- access bookkeeping;
* ``map`` -- a function from write-lockholders to states of basic object X
  (the version store used to restore state after aborts).

Initially ``write_lockholders = {T0}`` and ``map(T0)`` is X's initial
state.

The transitions implement Moss' rules exactly:

* an access responds only when every holder of a conflicting lock is an
  ancestor of the access; the response is computed from
  ``map(least(write_lockholders))`` -- the version of the *least* (most
  deeply nested) write-lockholder;
* a responding write access acquires a write lock and stores the new state
  as its version; a read access acquires a read lock and stores nothing;
* INFORM_COMMIT passes locks (and the version, if any) to the parent;
* INFORM_ABORT discards all locks (and versions) held by descendants of the
  aborted transaction.

As the paper notes, when every access is designated a write access this
degenerates into exclusive locking (benchmark E8 verifies it).
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Set, Tuple

from repro.core.events import (
    Create,
    InformAbortAt,
    InformCommitAt,
    RequestCommit,
)
from repro.core.names import (
    ROOT,
    SystemType,
    TransactionName,
    is_ancestor,
    is_descendant,
    parent,
)
from repro.core.object_spec import ObjectSpec
from repro.errors import ModelError
from repro.ioa.automaton import Action, Automaton


def least_lockholder(holders: Set[TransactionName]) -> TransactionName:
    """Return the least member of a chain of lockholders.

    "Least" in the ancestor partial order: the most deeply nested holder.
    The write-lockholders form a chain whenever an access's precondition
    holds (Lemma 21); callers outside that situation get a
    :class:`~repro.errors.ModelError` if the set is not a chain.
    """
    deepest = max(holders, key=len)
    for holder in holders:
        if not is_ancestor(holder, deepest):
            raise ModelError(
                "lockholders %r are not a chain" % (sorted(holders),)
            )
    return deepest


class RWLockingObject(Automaton):
    """Moss' R/W Locking object M(X) for one shared object X."""

    state_attrs = (
        "write_lockholders",
        "read_lockholders",
        "create_requested",
        "run",
        "map",
    )

    def __init__(self, system_type: SystemType, object_name: str):
        super().__init__("M(%s)" % object_name)
        self.system_type = system_type
        self.object_name = object_name
        self.spec: ObjectSpec = system_type.object_spec(object_name)
        self.write_lockholders: Set[TransactionName] = {ROOT}
        self.read_lockholders: Set[TransactionName] = set()
        self.create_requested: Set[TransactionName] = set()
        self.run: Set[TransactionName] = set()
        self.map: Dict[TransactionName, Any] = {
            ROOT: self.spec.initial_value()
        }

    def _is_local_access(self, name: TransactionName) -> bool:
        return (
            self.system_type.is_access(name)
            and self.system_type.object_of(name) == self.object_name
        )

    # ------------------------------------------------------------------
    # Signature
    # ------------------------------------------------------------------
    def is_input(self, action: Action) -> bool:
        if isinstance(action, Create):
            return self._is_local_access(action.transaction)
        if isinstance(action, (InformCommitAt, InformAbortAt)):
            return (
                action.object_name == self.object_name
                and action.transaction != ROOT
            )
        return False

    def is_output(self, action: Action) -> bool:
        return isinstance(action, RequestCommit) and self._is_local_access(
            action.transaction
        )

    # ------------------------------------------------------------------
    # Moss' preconditions
    # ------------------------------------------------------------------
    def current_value(self) -> Any:
        """The "current state" of X: map(least(write_lockholders))."""
        return self.map[least_lockholder(self.write_lockholders)]

    def _response(self, name: TransactionName) -> Tuple[Any, Any]:
        operation = self.system_type.operation_of(name)
        return self.spec.apply(self.current_value(), operation)

    def _locks_permit(self, name: TransactionName) -> bool:
        """Every holder of a conflicting lock must be an ancestor of *name*."""
        if not all(
            is_ancestor(holder, name) for holder in self.write_lockholders
        ):
            return False
        if self.system_type.is_read_access(name):
            # A read conflicts only with write locks.
            return True
        return all(
            is_ancestor(holder, name) for holder in self.read_lockholders
        )

    def _request_commit_enabled(self, name: TransactionName) -> bool:
        if name not in self.create_requested or name in self.run:
            return False
        return self._locks_permit(name)

    # ------------------------------------------------------------------
    # Transitions
    # ------------------------------------------------------------------
    def enabled_outputs(self) -> Iterator[Action]:
        for name in sorted(self.create_requested - self.run):
            if self._locks_permit(name):
                result, _ = self._response(name)
                yield RequestCommit(name, result)

    def output_enabled(self, action: Action) -> bool:
        if not isinstance(action, RequestCommit):
            return False
        name = action.transaction
        if not self._request_commit_enabled(name):
            return False
        result, _ = self._response(name)
        return result == action.value

    def _apply(self, action: Action) -> None:
        if isinstance(action, Create):
            self.create_requested.add(action.transaction)
            return
        if isinstance(action, InformCommitAt):
            self._inform_commit(action.transaction)
            return
        if isinstance(action, InformAbortAt):
            self._inform_abort(action.transaction)
            return
        if isinstance(action, RequestCommit):
            name = action.transaction
            _, new_value = self._response(name)
            self.run.add(name)
            if self.system_type.is_read_access(name):
                self.read_lockholders.add(name)
            else:
                self.write_lockholders.add(name)
                self.map[name] = new_value
            return

    def _inform_commit(self, name: TransactionName) -> None:
        mother = parent(name)
        if name in self.write_lockholders:
            self.write_lockholders.discard(name)
            version = self.map.pop(name)
            self.write_lockholders.add(mother)
            self.map[mother] = version
        if name in self.read_lockholders:
            self.read_lockholders.discard(name)
            self.read_lockholders.add(mother)

    def _inform_abort(self, name: TransactionName) -> None:
        doomed_writes = {
            holder
            for holder in self.write_lockholders
            if is_descendant(holder, name)
        }
        doomed_reads = {
            holder
            for holder in self.read_lockholders
            if is_descendant(holder, name)
        }
        self.write_lockholders -= doomed_writes
        self.read_lockholders -= doomed_reads
        for holder in doomed_writes:
            self.map.pop(holder, None)
