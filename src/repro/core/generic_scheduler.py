"""The generic scheduler (Section 5.2), transcribed verbatim.

The generic scheduler is "very nondeterministic": it forwards creation
requests and responses with arbitrary delay, lets siblings run
concurrently, may unilaterally abort any requested transaction that has not
returned (even one that has been created and has done work), and informs
R/W Locking objects of commits and aborts.

Enumeration-only restrictions (sub-automaton; ``output_enabled`` keeps the
paper's full preconditions so replay accepts anything the paper allows):

* ``once_reports`` / ``once_informs`` suppress re-emitting duplicate report
  and INFORM operations;
* ``relevant_informs`` only proposes INFORM_*_AT(X)OF(T) when some access
  below T touches X (an INFORM for an unrelated object never changes M(X)
  state);
* ``abort_rate`` is a knob for the validation harness: when 0 no ABORT
  outputs are *proposed* (they stay enabled per the paper).
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Set, Tuple

from repro.core.events import (
    Abort,
    Commit,
    Create,
    InformAbortAt,
    InformCommitAt,
    ReportAbort,
    ReportCommit,
    RequestCommit,
    RequestCreate,
)
from repro.core.names import (
    ROOT,
    SystemType,
    TransactionName,
    is_descendant,
)
from repro.ioa.automaton import Action, Automaton


class GenericScheduler(Automaton):
    """The generic scheduler automaton for R/W Locking systems."""

    state_attrs = (
        "create_requested",
        "created",
        "commit_requested",
        "committed",
        "aborted",
        "returned",
        "reported",
        "informed",
    )

    def __init__(
        self,
        system_type: SystemType,
        once_reports: bool = True,
        once_informs: bool = True,
        relevant_informs: bool = True,
        propose_aborts: bool = True,
    ):
        super().__init__("generic-scheduler")
        self.system_type = system_type
        self.once_reports = once_reports
        self.once_informs = once_informs
        self.relevant_informs = relevant_informs
        self.propose_aborts = propose_aborts
        self.create_requested: Set[TransactionName] = {ROOT}
        self.created: Set[TransactionName] = set()
        self.commit_requested: Set[Tuple[TransactionName, Any]] = set()
        self.committed: Set[TransactionName] = set()
        self.aborted: Set[TransactionName] = set()
        self.returned: Set[TransactionName] = set()
        self.reported: Set[TransactionName] = set()
        self.informed: Set[Tuple[str, TransactionName]] = set()
        self._relevant_objects: Dict[TransactionName, Tuple[str, ...]] = {}

    # ------------------------------------------------------------------
    # Signature
    # ------------------------------------------------------------------
    def is_input(self, action: Action) -> bool:
        return isinstance(action, (RequestCreate, RequestCommit))

    def is_output(self, action: Action) -> bool:
        if isinstance(action, Create):
            return True
        if isinstance(
            action,
            (Commit, Abort, ReportCommit, ReportAbort, InformCommitAt,
             InformAbortAt),
        ):
            return action.transaction != ROOT
        return False

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _children_returned(self, name: TransactionName) -> bool:
        return all(
            child in self.returned
            for child in self.system_type.children(name)
            if child in self.create_requested
        )

    def _objects_below(self, name: TransactionName) -> Tuple[str, ...]:
        """Object names touched by accesses in *name*'s subtree (cached)."""
        cached = self._relevant_objects.get(name)
        if cached is None:
            touched = sorted(
                {
                    self.system_type.object_of(access)
                    for access in self.system_type.all_accesses()
                    if is_descendant(access, name)
                }
            )
            cached = tuple(touched)
            self._relevant_objects[name] = cached
        return cached

    def _inform_targets(self, name: TransactionName) -> Tuple[str, ...]:
        if self.relevant_informs:
            return self._objects_below(name)
        return self.system_type.object_names()

    # ------------------------------------------------------------------
    # Transitions
    # ------------------------------------------------------------------
    def enabled_outputs(self) -> Iterator[Action]:
        for name in sorted(self.create_requested - self.created):
            yield Create(name)
        for name, value in sorted(self.commit_requested, key=repr):
            if (
                name != ROOT
                and name not in self.returned
                and self._children_returned(name)
            ):
                yield Commit(name)
        if self.propose_aborts:
            for name in sorted(self.create_requested - self.returned):
                if name != ROOT:
                    yield Abort(name)
        for name, value in sorted(self.commit_requested, key=repr):
            if name in self.committed and not (
                self.once_reports and name in self.reported
            ):
                yield ReportCommit(name, value)
        for name in sorted(self.aborted):
            if not (self.once_reports and name in self.reported):
                yield ReportAbort(name)
        for name in sorted(self.committed):
            for object_name in self._inform_targets(name):
                if not (
                    self.once_informs
                    and (object_name, name) in self.informed
                ):
                    yield InformCommitAt(object_name, name)
        for name in sorted(self.aborted):
            for object_name in self._inform_targets(name):
                if not (
                    self.once_informs
                    and (object_name, name) in self.informed
                ):
                    yield InformAbortAt(object_name, name)

    def output_enabled(self, action: Action) -> bool:
        if isinstance(action, Create):
            return (
                action.transaction in self.create_requested
                and action.transaction not in self.created
            )
        if isinstance(action, Commit):
            name = action.transaction
            if name == ROOT or name in self.returned:
                return False
            has_request = any(
                pair[0] == name for pair in self.commit_requested
            )
            return has_request and self._children_returned(name)
        if isinstance(action, Abort):
            name = action.transaction
            return (
                name != ROOT
                and name in self.create_requested
                and name not in self.returned
            )
        if isinstance(action, ReportCommit):
            return (
                action.transaction in self.committed
                and (action.transaction, action.value)
                in self.commit_requested
            )
        if isinstance(action, ReportAbort):
            return action.transaction in self.aborted
        if isinstance(action, InformCommitAt):
            return (
                action.transaction != ROOT
                and action.transaction in self.committed
            )
        if isinstance(action, InformAbortAt):
            return (
                action.transaction != ROOT
                and action.transaction in self.aborted
            )
        return False

    def _apply(self, action: Action) -> None:
        if isinstance(action, RequestCreate):
            self.create_requested.add(action.transaction)
            return
        if isinstance(action, RequestCommit):
            self.commit_requested.add((action.transaction, action.value))
            return
        if isinstance(action, Create):
            self.created.add(action.transaction)
            return
        if isinstance(action, Commit):
            self.committed.add(action.transaction)
            self.returned.add(action.transaction)
            return
        if isinstance(action, Abort):
            self.aborted.add(action.transaction)
            self.returned.add(action.transaction)
            return
        if isinstance(action, (ReportCommit, ReportAbort)):
            self.reported.add(action.transaction)
            return
        if isinstance(action, (InformCommitAt, InformAbortAt)):
            self.informed.add((action.object_name, action.transaction))
            return
