"""Abstract data type object specifications (Section 4.3's construction).

The paper's example basic object keeps "an instance of an abstract data
type" and applies the access's function to it, yielding a return value and a
possibly altered instance.  :class:`ObjectSpec` captures exactly that: a
named ADT with a deterministic, **pure** transition function

    ``apply(value, operation) -> (result, new_value)``

plus a read/write classification of operations.  Everything downstream --
basic objects, R/W Locking objects, the executable engine -- interprets
object state only through a spec.

The paper's semantic conditions on read accesses (Section 4.3) become
checkable obligations here:

* every read operation must be *transparent*: ``apply`` must return the
  value unchanged (as far as :meth:`ObjectSpec.values_equal` can tell);
* CREATE transparency/mobility is guaranteed structurally by the basic
  object construction (pending-set bookkeeping never affects the ADT value).

Use :func:`check_read_transparency` to verify a spec against sample values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ReproError


@dataclass(frozen=True)
class Operation:
    """An abstract operation: a kind plus immutable arguments.

    ``Operation("write", (5,), is_read=False)`` is the paper's "function" an
    access applies to the ADT instance.  Transactions with different input
    parameters are different transactions (paper, footnote 6), so arguments
    live in the operation -- and therefore in the access name's
    classification -- not in any message.
    """

    kind: str
    args: Tuple[Hashable, ...] = ()
    is_read: bool = False

    def __str__(self) -> str:
        rendered = ", ".join(repr(argument) for argument in self.args)
        marker = "r" if self.is_read else "w"
        return "%s(%s)[%s]" % (self.kind, rendered, marker)


class ObjectSpec:
    """A deterministic serial specification of a shared object.

    Subclasses implement :meth:`initial_value` and :meth:`apply`.  ``apply``
    must be pure: it may not mutate *value* and must return a fresh (or
    shared immutable) new value.
    """

    def __init__(self, name: str):
        self.name = name

    def initial_value(self) -> Any:
        """Return the ADT's initial instance."""
        raise NotImplementedError

    def apply(self, value: Any, operation: Operation) -> Tuple[Any, Any]:
        """Apply *operation* to *value*; return ``(result, new_value)``."""
        raise NotImplementedError

    def values_equal(self, a: Any, b: Any) -> bool:
        """Equality of ADT instances "as far as later operations can detect".

        The default is plain ``==``; override for representations with
        non-canonical forms.
        """
        return a == b

    # ------------------------------------------------------------------
    # Semantic (commutativity-based) locking hooks -- the [We] direction
    # ------------------------------------------------------------------
    def conflicts(self, a: Operation, b: Operation) -> bool:
        """Whether two operations conflict for semantic locking.

        The default is Moss' read/write rule: two operations conflict
        unless both are reads.  ADTs may override with a finer relation
        (e.g. counter increments commute); operations declared
        non-conflicting must commute *both* in final state and in return
        values, in either order.
        """
        return not (a.is_read and b.is_read)

    def inverse(
        self, operation: Operation, result: Any
    ) -> Optional[Operation]:
        """The undo operation for *operation* (given its *result*).

        Required for any state-changing operation an ADT wants to run
        under semantic locking with undo recovery: applying the inverse
        right after the operation must restore the observable state.
        Return None for read operations (nothing to undo).  The default
        (None for everything) means the ADT only supports version-based
        recovery, i.e. Moss locking.
        """
        if operation.is_read:
            return None
        raise NotImplementedError(
            "%s does not define inverses; use Moss locking" % self.name
        )

    def example_operations(self) -> Sequence[Operation]:
        """Return representative operations (used by semantic self-checks)."""
        return ()

    def example_values(self) -> Sequence[Any]:
        """Return representative ADT values (used by semantic self-checks)."""
        return (self.initial_value(),)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<%s %r>" % (type(self).__name__, self.name)


class SemanticConditionViolation(ReproError):
    """An :class:`ObjectSpec` breaks a Section 4.3 semantic condition."""


def check_read_transparency(
    spec: ObjectSpec,
    operations: Iterable[Operation] = (),
    values: Iterable[Any] = (),
) -> None:
    """Verify semantic condition 3 for *spec* on the given samples.

    Every read operation applied to every sample value must leave the value
    "essentially" unchanged (:meth:`ObjectSpec.values_equal`).  Raises
    :class:`SemanticConditionViolation` on failure.
    """
    operation_pool: List[Operation] = list(operations) or list(
        spec.example_operations()
    )
    value_pool: List[Any] = list(values) or list(spec.example_values())
    for operation in operation_pool:
        if not operation.is_read:
            continue
        for value in value_pool:
            _, new_value = spec.apply(value, operation)
            if not spec.values_equal(value, new_value):
                raise SemanticConditionViolation(
                    "%r: read %s changed value %r -> %r"
                    % (spec.name, operation, value, new_value)
                )


def check_purity(
    spec: ObjectSpec,
    operations: Iterable[Operation] = (),
    values: Iterable[Any] = (),
) -> None:
    """Verify ``apply`` is deterministic on the given samples.

    Applies each operation twice to each value and demands identical
    results.  (True purity -- no mutation of the argument -- is enforced by
    convention and by the ADT implementations using immutable values.)
    """
    operation_pool = list(operations) or list(spec.example_operations())
    value_pool = list(values) or list(spec.example_values())
    for operation in operation_pool:
        for value in value_pool:
            first = spec.apply(value, operation)
            second = spec.apply(value, operation)
            if first[0] != second[0] or not spec.values_equal(
                first[1], second[1]
            ):
                raise SemanticConditionViolation(
                    "%r: %s is not deterministic on %r"
                    % (spec.name, operation, value)
                )
