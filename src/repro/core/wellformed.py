"""Well-formedness of component schedules (Sections 3.1, 3.2, 5.1).

The paper defines well-formedness recursively for three kinds of component:
non-access transactions, basic objects, and R/W Locking objects ``M(X)``.
A sequence of serial (resp. concurrent) operations is well-formed when its
projection at every transaction and every (R/W Locking) object is.

Each definition is implemented as an incremental checker with an
``extend(event)`` method, so systems and tests can validate prefixes in
O(1) amortised per event; whole-sequence helpers wrap them.
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence, Set

from repro.core.events import (
    Abort,
    Commit,
    Create,
    Event,
    InformAbortAt,
    InformCommitAt,
    ReportAbort,
    ReportCommit,
    RequestCommit,
    RequestCreate,
)
from repro.core.names import ROOT, TransactionName, parent, pretty_name
from repro.core.names import SystemType
from repro.errors import WellFormednessError


def transaction_signature_events(
    name: TransactionName, event: Event
) -> bool:
    """Return True if *event* is an operation of transaction automaton *name*.

    The automaton of a non-access transaction T has inputs CREATE(T) and the
    report operations for T's children, and outputs REQUEST_CREATE(T') for
    children T' and REQUEST_COMMIT(T, v).
    """
    if isinstance(event, Create):
        return event.transaction == name
    if isinstance(event, RequestCommit):
        return event.transaction == name
    if isinstance(event, (RequestCreate, ReportCommit, ReportAbort)):
        return parent(event.transaction) == name
    return False


def basic_object_signature_events(
    system_type: SystemType, object_name: str, event: Event
) -> bool:
    """Return True if *event* is an operation of basic object *object_name*."""
    if isinstance(event, (Create, RequestCommit)):
        name = event.transaction
        return (
            system_type.is_access(name)
            and system_type.object_of(name) == object_name
        )
    return False


def locking_object_signature_events(
    system_type: SystemType, object_name: str, event: Event
) -> bool:
    """Return True if *event* is an operation of M(*object_name*)."""
    if isinstance(event, (InformCommitAt, InformAbortAt)):
        return event.object_name == object_name and event.transaction != ROOT
    return basic_object_signature_events(system_type, object_name, event)


class TransactionWellFormedness:
    """Incremental well-formedness checker for a non-access transaction T.

    Mirrors the five clauses of Section 3.1's recursive definition.
    """

    def __init__(self, name: TransactionName):
        self.name = name
        self.created = False
        self.requested_commit = False
        self.requested_children: Set[TransactionName] = set()
        self.reported_commit: Dict[TransactionName, object] = {}
        self.reported_abort: Set[TransactionName] = set()

    def _fail(self, message: str) -> None:
        raise WellFormednessError(
            "transaction %s: %s" % (pretty_name(self.name), message)
        )

    def extend(self, event: Event) -> None:
        """Check and record one more event of T; raise on violation."""
        if isinstance(event, Create):
            if event.transaction != self.name:
                self._fail("foreign CREATE %s" % event)
            if self.created:
                self._fail("second CREATE")
            self.created = True
            return
        if isinstance(event, ReportCommit):
            child = event.transaction
            if parent(child) != self.name:
                self._fail("report for non-child %s" % event)
            if child not in self.requested_children:
                self._fail("REPORT_COMMIT before REQUEST_CREATE of %s"
                           % pretty_name(child))
            if child in self.reported_abort:
                self._fail("conflicting reports for %s" % pretty_name(child))
            if child in self.reported_commit and (
                self.reported_commit[child] != event.value
            ):
                self._fail(
                    "conflicting commit values for %s" % pretty_name(child)
                )
            self.reported_commit[child] = event.value
            return
        if isinstance(event, ReportAbort):
            child = event.transaction
            if parent(child) != self.name:
                self._fail("report for non-child %s" % event)
            if child not in self.requested_children:
                self._fail("REPORT_ABORT before REQUEST_CREATE of %s"
                           % pretty_name(child))
            if child in self.reported_commit:
                self._fail("conflicting reports for %s" % pretty_name(child))
            self.reported_abort.add(child)
            return
        if isinstance(event, RequestCreate):
            child = event.transaction
            if parent(child) != self.name:
                self._fail("REQUEST_CREATE for non-child %s" % event)
            if child in self.requested_children:
                self._fail("second REQUEST_CREATE(%s)" % pretty_name(child))
            if self.requested_commit:
                self._fail("output after REQUEST_COMMIT")
            if not self.created:
                self._fail("output before CREATE")
            self.requested_children.add(child)
            return
        if isinstance(event, RequestCommit):
            if event.transaction != self.name:
                self._fail("foreign REQUEST_COMMIT %s" % event)
            if self.requested_commit:
                self._fail("second REQUEST_COMMIT")
            if not self.created:
                self._fail("REQUEST_COMMIT before CREATE")
            self.requested_commit = True
            return
        self._fail("event %s not in signature" % event)


class BasicObjectWellFormedness:
    """Incremental well-formedness checker for a basic object X (§3.2)."""

    def __init__(self, system_type: SystemType, object_name: str):
        self.system_type = system_type
        self.object_name = object_name
        self.created: Set[TransactionName] = set()
        self.responded: Set[TransactionName] = set()

    def _fail(self, message: str) -> None:
        raise WellFormednessError(
            "object %s: %s" % (self.object_name, message)
        )

    def _check_access(self, name: TransactionName) -> None:
        if not self.system_type.is_access(name):
            self._fail("%s is not an access" % pretty_name(name))
        if self.system_type.object_of(name) != self.object_name:
            self._fail("%s accesses another object" % pretty_name(name))

    def extend(self, event: Event) -> None:
        """Check and record one more event of X; raise on violation."""
        if isinstance(event, Create):
            self._check_access(event.transaction)
            if event.transaction in self.created:
                self._fail("second CREATE(%s)"
                           % pretty_name(event.transaction))
            self.created.add(event.transaction)
            return
        if isinstance(event, RequestCommit):
            self._check_access(event.transaction)
            if event.transaction in self.responded:
                self._fail("second REQUEST_COMMIT for %s"
                           % pretty_name(event.transaction))
            if event.transaction not in self.created:
                self._fail("REQUEST_COMMIT before CREATE for %s"
                           % pretty_name(event.transaction))
            self.responded.add(event.transaction)
            return
        self._fail("event %s not in signature" % event)

    def pending(self) -> Set[TransactionName]:
        """Accesses created but not yet responded (the paper's *pending*)."""
        return self.created - self.responded


class LockingObjectWellFormedness(BasicObjectWellFormedness):
    """Incremental well-formedness checker for M(X) (§5.1)."""

    def __init__(self, system_type: SystemType, object_name: str):
        super().__init__(system_type, object_name)
        self.informed_commit: Set[TransactionName] = set()
        self.informed_abort: Set[TransactionName] = set()

    def extend(self, event: Event) -> None:
        if isinstance(event, InformCommitAt):
            if event.object_name != self.object_name:
                self._fail("INFORM for another object: %s" % event)
            name = event.transaction
            if name == ROOT:
                self._fail("INFORM_COMMIT for the root")
            if name in self.informed_abort:
                self._fail("INFORM_COMMIT after INFORM_ABORT for %s"
                           % pretty_name(name))
            is_local_access = (
                self.system_type.is_access(name)
                and self.system_type.object_of(name) == self.object_name
            )
            if is_local_access and name not in self.responded:
                self._fail(
                    "INFORM_COMMIT for unresponded access %s"
                    % pretty_name(name)
                )
            self.informed_commit.add(name)
            return
        if isinstance(event, InformAbortAt):
            if event.object_name != self.object_name:
                self._fail("INFORM for another object: %s" % event)
            name = event.transaction
            if name == ROOT:
                self._fail("INFORM_ABORT for the root")
            if name in self.informed_commit:
                self._fail("INFORM_ABORT after INFORM_COMMIT for %s"
                           % pretty_name(name))
            self.informed_abort.add(name)
            return
        super().extend(event)


class SequenceWellFormedness:
    """Well-formedness of a whole serial or concurrent operation sequence.

    A sequence is well-formed when its projection at every non-access
    transaction and at every (R/W Locking) object is well-formed.  *locking*
    selects the M(X) definition (concurrent sequences) over the basic-object
    one (serial sequences).
    """

    def __init__(self, system_type: SystemType, locking: bool = False):
        self.system_type = system_type
        self.locking = locking
        self._transactions: Dict[
            TransactionName, TransactionWellFormedness
        ] = {}
        self._objects: Dict[str, BasicObjectWellFormedness] = {}
        for object_name in system_type.object_names():
            if locking:
                self._objects[object_name] = LockingObjectWellFormedness(
                    system_type, object_name
                )
            else:
                self._objects[object_name] = BasicObjectWellFormedness(
                    system_type, object_name
                )

    def _transaction_checker(
        self, name: TransactionName
    ) -> TransactionWellFormedness:
        checker = self._transactions.get(name)
        if checker is None:
            checker = TransactionWellFormedness(name)
            self._transactions[name] = checker
        return checker

    def extend(self, event: Event) -> None:
        """Check one more event against every projection it belongs to."""
        if isinstance(event, (InformCommitAt, InformAbortAt)):
            if not self.locking:
                raise WellFormednessError(
                    "INFORM operation %s in a serial sequence" % event
                )
            self._objects[event.object_name].extend(event)
            return
        if isinstance(event, (Commit, Abort)):
            # Return operations belong to the scheduler only; no component
            # projection constrains them.
            return
        if isinstance(event, (Create, RequestCommit)):
            name = event.transaction
            if self.system_type.is_access(name):
                self._objects[self.system_type.object_of(name)].extend(event)
            else:
                self._transaction_checker(name).extend(event)
            return
        if isinstance(event, (RequestCreate, ReportCommit, ReportAbort)):
            mother = parent(event.transaction)
            if mother is None:
                raise WellFormednessError(
                    "%s names the root, which has no parent" % event
                )
            self._transaction_checker(mother).extend(event)
            return
        raise WellFormednessError("unknown event %r" % (event,))

    def extend_all(self, events: Iterable[Event]) -> None:
        for event in events:
            self.extend(event)


def is_well_formed(
    system_type: SystemType,
    events: Sequence[Event],
    locking: bool = False,
) -> bool:
    """Return True if *events* is a well-formed sequence (no exception)."""
    checker = SequenceWellFormedness(system_type, locking=locking)
    try:
        checker.extend_all(events)
    except WellFormednessError:
        return False
    return True


def assert_well_formed(
    system_type: SystemType,
    events: Sequence[Event],
    locking: bool = False,
) -> None:
    """Raise :class:`WellFormednessError` unless *events* is well-formed."""
    checker = SequenceWellFormedness(system_type, locking=locking)
    checker.extend_all(events)
