"""Seeded sampling primitives shared by every workload layer.

Before this module existed the repo grew three independent skew
samplers: the DES workload generator's ``_zipf_weights``
(:mod:`repro.sim.workload`), the observed thread workload's inline
hot/warm/cold threshold roll (:mod:`repro.obs.workloads`), and the
uniform ``rng.choice`` op pickers in the CLI's random driver and the
service load generator.  They are now all expressed over this one
module, and the scenario compiler (:mod:`repro.scenario`) builds on the
same primitives -- "all randomness via injected RNG streams".

Byte-compatibility matters more than elegance here: every helper
consumes *exactly* the same RNG calls as the inline code it replaced,
so existing seeded runs (and their pinned digests) are unchanged.
``tests/core/test_sampling.py`` locks this in.
"""

from __future__ import annotations

import random
from bisect import bisect_right
from typing import List, Sequence, TypeVar

T = TypeVar("T")

__all__ = [
    "RngStreams",
    "threshold_index",
    "weighted_index",
    "zipf_weights",
]


def zipf_weights(count: int, skew: float) -> List[float]:
    """Unnormalised Zipf(``skew``) weights over ``count`` ranks.

    ``skew <= 0`` degenerates to uniform.  Rank 0 is the hottest
    object; weight of rank *r* is ``1 / (r + 1) ** skew``.  This is the
    exact formula the simulation workload generator has always used, so
    seeded workloads are unchanged.
    """
    if skew <= 0.0:
        return [1.0] * count
    return [1.0 / ((rank + 1) ** skew) for rank in range(count)]


def weighted_index(rng: random.Random, weights: Sequence[float]) -> int:
    """One weighted draw: an index into *weights*.

    Consumes exactly one ``rng.choices`` call, matching the historical
    ``rng.choices(range(n), weights=weights, k=1)[0]`` call sites
    byte-for-byte.
    """
    return rng.choices(range(len(weights)), weights=weights, k=1)[0]


def threshold_index(rng: random.Random, cuts: Sequence[float]) -> int:
    """One uniform roll bucketed by cumulative *cuts*.

    ``cuts`` are ascending cumulative probabilities; the return value
    is how many cuts the roll cleared (so ``len(cuts)`` buckets plus a
    tail bucket).  Consumes exactly one ``rng.random()`` call --
    equivalent to the classic ``roll < c0 ... elif roll < c1 ...``
    ladder, e.g. the hot/warm/cold pick in
    :func:`repro.obs.workloads.run_threads`.
    """
    return bisect_right(list(cuts), rng.random())


class RngStreams:
    """Named, independently-seeded RNG streams for one run.

    Every consumer of randomness in a scenario run draws from its own
    named stream (``"class"``, ``"ops"``, ``"arrival"``, ...), so
    adding a draw to one concern never perturbs another -- the ab-sim
    design goal ("all randomness via injected RNG streams").  Streams
    are deterministic functions of ``(seed, name)``: Python seeds
    :class:`random.Random` from the string's bytes, which is stable
    across processes and platforms.
    """

    def __init__(self, seed: int):
        self.seed = seed

    def stream(self, name: str) -> random.Random:
        return random.Random("%d:%s" % (self.seed, name))
