"""Serial and R/W Locking system compositions (Sections 3.4 and 5.3).

A *serial system* composes a transaction automaton for every internal node,
a basic object automaton for every object, and the serial scheduler.  A
*R/W Locking system* composes the same transaction automata with R/W
Locking objects M(X) and the generic scheduler.  Both are closed: every
operation is an output of exactly one component, so schedules are generated
purely by choosing among enabled outputs.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.basic_object import BasicObjectAutomaton
from repro.core.generic_scheduler import GenericScheduler
from repro.core.names import SystemType, TransactionName
from repro.core.rw_object import RWLockingObject
from repro.core.serial_scheduler import SerialScheduler
from repro.core.transaction import (
    ParallelLogic,
    TransactionAutomaton,
    TransactionLogic,
)
from repro.ioa.composition import Composition

LogicFactory = Callable[[TransactionName], TransactionLogic]


def default_logic_factory(name: TransactionName) -> TransactionLogic:
    """Every internal transaction forks all children, then commits."""
    return ParallelLogic()


class SerialSystem(Composition):
    """The serial system for a given system type."""

    def __init__(
        self,
        system_type: SystemType,
        logic_factory: Optional[LogicFactory] = None,
        once_reports: bool = True,
        abort_free: bool = False,
    ):
        self.system_type = system_type
        self.logic_factory = logic_factory or default_logic_factory
        transactions = [
            TransactionAutomaton(system_type, name, self.logic_factory(name))
            for name in system_type.internal_transactions()
        ]
        objects = [
            BasicObjectAutomaton(system_type, object_name)
            for object_name in system_type.object_names()
        ]
        self.scheduler = SerialScheduler(
            system_type, once_reports=once_reports, abort_free=abort_free
        )
        super().__init__(
            "serial-system", transactions + objects + [self.scheduler]
        )

    def object_automaton(self, object_name: str) -> BasicObjectAutomaton:
        """Return the basic object automaton for *object_name*."""
        return self.component("obj:%s" % object_name)

    def fresh(self) -> "SerialSystem":
        """A new serial system in its initial state (for replays)."""
        return SerialSystem(
            self.system_type,
            logic_factory=self.logic_factory,
            once_reports=self.scheduler.once_reports,
            abort_free=self.scheduler.abort_free,
        )


class RWLockingSystem(Composition):
    """The R/W Locking system (Moss' algorithm) for a given system type."""

    def __init__(
        self,
        system_type: SystemType,
        logic_factory: Optional[LogicFactory] = None,
        once_reports: bool = True,
        once_informs: bool = True,
        relevant_informs: bool = True,
        propose_aborts: bool = True,
    ):
        self.system_type = system_type
        self.logic_factory = logic_factory or default_logic_factory
        transactions = [
            TransactionAutomaton(system_type, name, self.logic_factory(name))
            for name in system_type.internal_transactions()
        ]
        objects = [
            RWLockingObject(system_type, object_name)
            for object_name in system_type.object_names()
        ]
        self.scheduler = GenericScheduler(
            system_type,
            once_reports=once_reports,
            once_informs=once_informs,
            relevant_informs=relevant_informs,
            propose_aborts=propose_aborts,
        )
        super().__init__(
            "rw-locking-system", transactions + objects + [self.scheduler]
        )

    def locking_object(self, object_name: str) -> RWLockingObject:
        """Return M(X) for *object_name*."""
        return self.component("M(%s)" % object_name)

    def fresh(self) -> "RWLockingSystem":
        """A new R/W Locking system in its initial state."""
        return RWLockingSystem(
            self.system_type,
            logic_factory=self.logic_factory,
            once_reports=self.scheduler.once_reports,
            once_informs=self.scheduler.once_informs,
            relevant_informs=self.scheduler.relevant_informs,
            propose_aborts=self.scheduler.propose_aborts,
        )
