"""The operation alphabet of nested-transaction systems (Sections 3 and 5).

Nine event kinds, each a frozen dataclass so events are hashable values
usable directly as I/O automaton operations:

=====================  ==========================================  =========
Event                  Paper name                                  Kind
=====================  ==========================================  =========
:class:`Create`        CREATE(T)                                   serial
:class:`RequestCreate` REQUEST_CREATE(T')                          serial
:class:`RequestCommit` REQUEST_COMMIT(T, v)                        serial
:class:`Commit`        COMMIT(T)                                   serial
:class:`Abort`         ABORT(T)                                    serial
:class:`ReportCommit`  REPORT_COMMIT(T', v)                        serial
:class:`ReportAbort`   REPORT_ABORT(T')                            serial
:class:`InformCommitAt` INFORM_COMMIT_AT(X)OF(T)                   concurrent
:class:`InformAbortAt` INFORM_ABORT_AT(X)OF(T)                     concurrent
=====================  ==========================================  =========

:func:`transaction_of` implements the paper's ``transaction(pi)``
assignment: CREATE(T) and REQUEST_COMMIT(T, v) belong to T; the request,
return and report operations for a child T' belong to ``parent(T')``.  The
INFORM operations are not serial operations and have no assigned
transaction (they never appear in ``visible(alpha, T)``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Tuple, Union

from repro.core.names import TransactionName, parent, pretty_name

Value = Any


@dataclass(frozen=True)
class Create:
    """CREATE(T): wakes the transaction (or invokes the access) T."""

    transaction: TransactionName

    def __str__(self) -> str:
        return "CREATE(%s)" % pretty_name(self.transaction)


@dataclass(frozen=True)
class RequestCreate:
    """REQUEST_CREATE(T'): T' 's parent asks the scheduler to create T'."""

    transaction: TransactionName

    def __str__(self) -> str:
        return "REQUEST_CREATE(%s)" % pretty_name(self.transaction)


@dataclass(frozen=True)
class RequestCommit:
    """REQUEST_COMMIT(T, v): T announces completion with return value v."""

    transaction: TransactionName
    value: Value

    def __str__(self) -> str:
        return "REQUEST_COMMIT(%s, %r)" % (
            pretty_name(self.transaction),
            self.value,
        )


@dataclass(frozen=True)
class Commit:
    """COMMIT(T): the scheduler irrevocably decides T committed."""

    transaction: TransactionName

    def __str__(self) -> str:
        return "COMMIT(%s)" % pretty_name(self.transaction)


@dataclass(frozen=True)
class Abort:
    """ABORT(T): the scheduler irrevocably decides T aborted."""

    transaction: TransactionName

    def __str__(self) -> str:
        return "ABORT(%s)" % pretty_name(self.transaction)


@dataclass(frozen=True)
class ReportCommit:
    """REPORT_COMMIT(T', v): T' 's parent learns T' committed with value v."""

    transaction: TransactionName
    value: Value

    def __str__(self) -> str:
        return "REPORT_COMMIT(%s, %r)" % (
            pretty_name(self.transaction),
            self.value,
        )


@dataclass(frozen=True)
class ReportAbort:
    """REPORT_ABORT(T'): T' 's parent learns T' aborted."""

    transaction: TransactionName

    def __str__(self) -> str:
        return "REPORT_ABORT(%s)" % pretty_name(self.transaction)


@dataclass(frozen=True)
class InformCommitAt:
    """INFORM_COMMIT_AT(X)OF(T): object X learns T committed."""

    object_name: str
    transaction: TransactionName

    def __str__(self) -> str:
        return "INFORM_COMMIT_AT(%s)OF(%s)" % (
            self.object_name,
            pretty_name(self.transaction),
        )


@dataclass(frozen=True)
class InformAbortAt:
    """INFORM_ABORT_AT(X)OF(T): object X learns T aborted."""

    object_name: str
    transaction: TransactionName

    def __str__(self) -> str:
        return "INFORM_ABORT_AT(%s)OF(%s)" % (
            self.object_name,
            pretty_name(self.transaction),
        )


Event = Union[
    Create,
    RequestCreate,
    RequestCommit,
    Commit,
    Abort,
    ReportCommit,
    ReportAbort,
    InformCommitAt,
    InformAbortAt,
]

#: Event classes that are operations of serial systems.
SERIAL_EVENT_TYPES: Tuple[type, ...] = (
    Create,
    RequestCreate,
    RequestCommit,
    Commit,
    Abort,
    ReportCommit,
    ReportAbort,
)

#: Event classes classified as *report* operations for a transaction.
REPORT_EVENT_TYPES: Tuple[type, ...] = (ReportCommit, ReportAbort)

#: Event classes classified as *return* operations for a transaction.
RETURN_EVENT_TYPES: Tuple[type, ...] = (Commit, Abort)


def is_serial_operation(event: Event) -> bool:
    """Return True if *event* is an operation of the serial system."""
    return isinstance(event, SERIAL_EVENT_TYPES)


def is_return_event(event: Event) -> bool:
    """Return True if *event* is COMMIT(T) or ABORT(T) for some T."""
    return isinstance(event, RETURN_EVENT_TYPES)


def is_report_event(event: Event) -> bool:
    """Return True if *event* is a report operation for some transaction."""
    return isinstance(event, REPORT_EVENT_TYPES)


def transaction_of(event: Event) -> Optional[TransactionName]:
    """The paper's ``transaction(pi)`` assignment.

    Returns None for INFORM operations, which are not serial operations and
    belong to no transaction.
    """
    if isinstance(event, (Create, RequestCommit)):
        return event.transaction
    if isinstance(
        event, (RequestCreate, Commit, Abort, ReportCommit, ReportAbort)
    ):
        return parent(event.transaction)
    return None


def subject_of(event: Event) -> Optional[TransactionName]:
    """Return the transaction the event is *about* (its name argument).

    Unlike :func:`transaction_of`, which assigns the event to the component
    whose operation it is, this returns the T appearing in the event --
    convenient for filtering.
    """
    if isinstance(event, (InformCommitAt, InformAbortAt)):
        return event.transaction
    return event.transaction
