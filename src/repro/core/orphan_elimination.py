"""Eager orphan elimination: the "more intricate scheduler" of §3.5.

The paper: "It would be best if every transaction (whether an orphan or
not) saw consistent data.  Ensuring this requires a much more intricate
scheduler ... In [HLMW], we describe and prove correctness of several
algorithms for maintaining correctness for orphan transactions."

This module implements the *eager* flavour of orphan elimination as two
local rules layered on the proven components (both yield sub-automata of
the originals, so every schedule produced is still a schedule of the
plain R/W Locking system and Theorem 34 continues to apply):

* :class:`EagerGenericScheduler` never performs a CREATE, report or
  return operation on behalf of a transaction with an aborted ancestor --
  orphans receive no new work;
* :class:`QuiescentRWObject` extends M(X) to *drop the pending accesses*
  of an aborted subtree when INFORM_ABORT arrives, so an access created
  before the abort can no longer respond after it.

Together: once ABORT(T) has been followed by the relevant INFORM_ABORTs,
no descendant of T ever observes anything again, so every observation any
transaction makes happens while it is not yet known-orphaned -- and those
observations are consistent.  Benchmark E17 verifies the claim
empirically: the orphan-anomaly witness is unschedulable and randomised
searches find no orphan anomalies, while the plain system exhibits them.

(The [HLMW] algorithms achieve the same end *in a distributed setting*
with piggy-backed abort lists; eager elimination is their idealised
single-authority limit.)
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.core.events import (
    Create,
    ReportAbort,
    ReportCommit,
)
from repro.core.generic_scheduler import GenericScheduler
from repro.core.names import (
    SystemType,
    TransactionName,
    is_descendant,
)
from repro.core.rw_object import RWLockingObject
from repro.core.systems import LogicFactory, RWLockingSystem
from repro.ioa.automaton import Action


class EagerGenericScheduler(GenericScheduler):
    """A generic scheduler that starves orphans.

    Identical to :class:`~repro.core.generic_scheduler.GenericScheduler`
    except that output operations whose beneficiary has an aborted
    ancestor are never enabled.  Suppressing enabled outputs yields a
    sub-automaton: every schedule is still a schedule of the plain
    scheduler.
    """

    def _is_orphaned(self, name: TransactionName) -> bool:
        return any(
            is_descendant(name, doomed) for doomed in self.aborted
        )

    def _beneficiary(self, action: Action) -> Optional[TransactionName]:
        if isinstance(action, Create):
            return action.transaction
        if isinstance(action, (ReportCommit, ReportAbort)):
            # Reports go to the parent; starve it if *it* is an orphan.
            return action.transaction[:-1]
        return None

    def enabled_outputs(self) -> Iterator[Action]:
        for action in super().enabled_outputs():
            beneficiary = self._beneficiary(action)
            if beneficiary is not None and self._is_orphaned(beneficiary):
                continue
            yield action

    def output_enabled(self, action: Action) -> bool:
        if not super().output_enabled(action):
            return False
        beneficiary = self._beneficiary(action)
        if beneficiary is not None and self._is_orphaned(beneficiary):
            return False
        return True


class QuiescentRWObject(RWLockingObject):
    """M(X) that silences an aborted subtree's pending accesses.

    INFORM_ABORT already discards the subtree's locks and versions; this
    variant additionally removes the subtree's created-but-unresponded
    accesses from ``create_requested``, so they can never respond with a
    post-abort value.  Responding less is again a sub-automaton.
    """

    def _inform_abort(self, name: TransactionName) -> None:
        super()._inform_abort(name)
        doomed = {
            access
            for access in self.create_requested
            if is_descendant(access, name) and access not in self.run
        }
        self.create_requested -= doomed


class OrphanFreeRWLockingSystem(RWLockingSystem):
    """A R/W Locking system with eager orphan elimination.

    Every schedule of this system is a schedule of the plain
    :class:`~repro.core.systems.RWLockingSystem` (both replacements are
    sub-automata), so Theorem 34 holds unchanged -- and additionally no
    orphan observes data after its ancestor's abort reaches the system.
    """

    def __init__(
        self,
        system_type: SystemType,
        logic_factory: Optional[LogicFactory] = None,
        once_reports: bool = True,
        once_informs: bool = True,
        relevant_informs: bool = True,
        propose_aborts: bool = True,
    ):
        super().__init__(
            system_type,
            logic_factory=logic_factory,
            once_reports=once_reports,
            once_informs=once_informs,
            relevant_informs=relevant_informs,
            propose_aborts=propose_aborts,
        )
        # Swap the scheduler and objects for the eager variants, keeping
        # the same transaction automata.
        replaced = []
        for component in self.components:
            if isinstance(component, GenericScheduler):
                eager = EagerGenericScheduler(
                    system_type,
                    once_reports=once_reports,
                    once_informs=once_informs,
                    relevant_informs=relevant_informs,
                    propose_aborts=propose_aborts,
                )
                self.scheduler = eager
                replaced.append(eager)
            elif isinstance(component, RWLockingObject):
                replaced.append(
                    QuiescentRWObject(system_type, component.object_name)
                )
            else:
                replaced.append(component)
        self.components = tuple(replaced)
        self._by_name = {
            component.name: component for component in replaced
        }

    def fresh(self) -> "OrphanFreeRWLockingSystem":
        return OrphanFreeRWLockingSystem(
            self.system_type,
            logic_factory=self.logic_factory,
            once_reports=self.scheduler.once_reports,
            once_informs=self.scheduler.once_informs,
            relevant_informs=self.scheduler.relevant_informs,
            propose_aborts=self.scheduler.propose_aborts,
        )
