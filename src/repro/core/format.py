"""Human-readable rendering of schedules.

Debugging nested-transaction schedules by staring at event reprs is
painful; these helpers render a schedule as an indented timeline (one
line per event, indented by the acting transaction's depth) and as a
per-transaction swimlane summary.  Used by the CLI and handy in test
failure messages.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.events import (
    Create,
    Event,
    RequestCommit,
    transaction_of,
)
from repro.core.names import SystemType, TransactionName, pretty_name


def format_event(
    event: Event, system_type: Optional[SystemType] = None
) -> str:
    """One event as text, annotating accesses with their operations."""
    text = str(event)
    if system_type is None:
        return text
    if isinstance(event, (Create, RequestCommit)):
        name = event.transaction
        if system_type.is_access(name):
            operation = system_type.operation_of(name)
            return "%s  {%s %s}" % (
                text,
                system_type.object_of(name),
                operation,
            )
    return text


def format_schedule(
    alpha: Sequence[Event],
    system_type: Optional[SystemType] = None,
    numbered: bool = True,
) -> str:
    """Render *alpha* as an indented timeline.

    Indentation tracks the depth of the event's transaction, so the
    nesting structure is visible at a glance; INFORM operations sit at
    the left margin (they belong to no transaction).
    """
    lines: List[str] = []
    for index, event in enumerate(alpha):
        owner = transaction_of(event)
        depth = len(owner) if owner is not None else 0
        prefix = "%3d  " % index if numbered else ""
        lines.append(
            "%s%s%s"
            % (prefix, "  " * depth, format_event(event, system_type))
        )
    return "\n".join(lines)


def format_swimlanes(
    alpha: Sequence[Event],
    system_type: Optional[SystemType] = None,
) -> str:
    """Render *alpha* grouped by transaction (one lane per transaction).

    Each lane lists the transaction's own events in order, giving the
    per-transaction projection the correctness definitions talk about.
    """
    lanes: Dict[TransactionName, List[str]] = {}
    order: List[TransactionName] = []
    for event in alpha:
        owner = transaction_of(event)
        if owner is None:
            continue
        if owner not in lanes:
            lanes[owner] = []
            order.append(owner)
        lanes[owner].append(format_event(event, system_type))
    blocks: List[str] = []
    for owner in sorted(order):
        header = pretty_name(owner)
        body = "\n".join("  %s" % line for line in lanes[owner])
        blocks.append("%s\n%s" % (header, body))
    return "\n".join(blocks)


def summarize_schedule(alpha: Sequence[Event]) -> Dict[str, int]:
    """Event-kind counts for quick sanity output."""
    summary: Dict[str, int] = {}
    for event in alpha:
        kind = type(event).__name__
        summary[kind] = summary.get(kind, 0) + 1
    summary["total"] = len(alpha)
    return summary
