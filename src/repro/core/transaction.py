"""Transaction automata (Section 3.1).

A non-access transaction T is an I/O automaton with inputs ``CREATE(T)``
and the report operations for its children, and outputs
``REQUEST_CREATE(T')`` for children T' and ``REQUEST_COMMIT(T, v)``.  The
paper leaves particular transaction automata unspecified beyond preserving
well-formedness; here behaviour is supplied by a :class:`TransactionLogic`
strategy, so the same automaton class covers everything from the maximally
nondeterministic transaction (used for exhaustive exploration) to fully
deterministic scripted workloads.

Crucially, the *same* automaton instances-by-construction are used in both
serial and R/W Locking systems, which is what makes "serially correct for
T" meaningful: T cannot tell which system it is running in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Sequence, Tuple

from repro.core.events import (
    Create,
    ReportAbort,
    ReportCommit,
    RequestCommit,
    RequestCreate,
)
from repro.core.names import SystemType, TransactionName, parent, pretty_name
from repro.ioa.automaton import Action, Automaton


@dataclass(frozen=True)
class Report:
    """One report received from a child: ``(child, committed, value)``."""

    child: TransactionName
    committed: bool
    value: Any = None


@dataclass
class LocalView:
    """What a transaction automaton has observed locally so far.

    This is exactly the information a :class:`TransactionLogic` may consult:
    a transaction is a black box to the rest of the system and sees only its
    own schedule.
    """

    name: TransactionName
    children: Tuple[TransactionName, ...]
    created: bool = False
    requested_commit: bool = False
    requested: Tuple[TransactionName, ...] = ()
    reports: Tuple[Report, ...] = ()

    def reported(self, child: TransactionName) -> bool:
        """Return True if some report for *child* has arrived."""
        return any(report.child == child for report in self.reports)

    def unreported(self) -> Tuple[TransactionName, ...]:
        """Requested children with no report yet."""
        seen = {report.child for report in self.reports}
        return tuple(child for child in self.requested if child not in seen)

    def unrequested(self) -> Tuple[TransactionName, ...]:
        """Children not yet requested, in declaration order."""
        requested = set(self.requested)
        return tuple(
            child for child in self.children if child not in requested
        )


def default_summary(view: LocalView) -> Any:
    """The library's canonical deterministic return value.

    A tuple of ``(child-index, "C"/"A", value)`` triples in report-arrival
    order: a pure function of the local schedule, so any two schedules that
    look the same to T yield the same value.
    """
    return tuple(
        (report.child[-1], "C" if report.committed else "A", report.value)
        for report in view.reports
    )


class TransactionLogic:
    """Strategy deciding which outputs a transaction may produce.

    ``request_candidates`` returns the children T may REQUEST_CREATE right
    now; ``commit_values`` returns the values v for which
    ``REQUEST_COMMIT(T, v)`` may be produced right now (empty when T is not
    ready to finish).  The automaton already enforces well-formedness
    (created, not yet committed, child not yet requested); logics only add
    policy on top.
    """

    def request_candidates(
        self, view: LocalView
    ) -> Iterable[TransactionName]:
        raise NotImplementedError

    def commit_values(self, view: LocalView) -> Iterable[Any]:
        raise NotImplementedError


class ParallelLogic(TransactionLogic):
    """Fork every child immediately; commit once all children reported.

    The standard workload shape for nested systems: maximal sibling
    concurrency, then a join.
    """

    def request_candidates(self, view: LocalView):
        return view.unrequested()

    def commit_values(self, view: LocalView):
        if view.unrequested() or view.unreported():
            return ()
        return (default_summary(view),)


class SequentialLogic(TransactionLogic):
    """Run children one at a time, in order; commit after the last report."""

    def request_candidates(self, view: LocalView):
        if view.unreported():
            return ()
        unrequested = view.unrequested()
        return unrequested[:1]

    def commit_values(self, view: LocalView):
        if view.unrequested() or view.unreported():
            return ()
        return (default_summary(view),)


class FreeLogic(TransactionLogic):
    """The maximally nondeterministic well-formed transaction.

    May request any unrequested child at any time and may request to commit
    at any time after creation (even with children outstanding -- the
    schedulers hold the COMMIT until the children return).  Used for
    exhaustive exploration: its schedules include every well-formed
    behaviour with the canonical value function.
    """

    def request_candidates(self, view: LocalView):
        return view.unrequested()

    def commit_values(self, view: LocalView):
        return (default_summary(view),)


class SubsetLogic(TransactionLogic):
    """Request only a fixed subset of the declared children, in parallel."""

    def __init__(self, wanted: Sequence[TransactionName]):
        self.wanted = tuple(wanted)

    def request_candidates(self, view: LocalView):
        requested = set(view.requested)
        return tuple(
            child for child in self.wanted if child not in requested
        )

    def commit_values(self, view: LocalView):
        requested = set(view.requested)
        if any(child not in requested for child in self.wanted):
            return ()
        if view.unreported():
            return ()
        return (default_summary(view),)


class TransactionAutomaton(Automaton):
    """The I/O automaton for one non-access transaction."""

    state_attrs = ("view",)

    def __init__(
        self,
        system_type: SystemType,
        name: TransactionName,
        logic: TransactionLogic,
    ):
        super().__init__("txn:%s" % pretty_name(name))
        self.system_type = system_type
        self.txn_name = name
        self.logic = logic
        self.view = LocalView(
            name=name, children=system_type.children(name)
        )

    # ------------------------------------------------------------------
    # Signature
    # ------------------------------------------------------------------
    def is_input(self, action: Action) -> bool:
        if isinstance(action, Create):
            return action.transaction == self.txn_name
        if isinstance(action, (ReportCommit, ReportAbort)):
            return parent(action.transaction) == self.txn_name
        return False

    def is_output(self, action: Action) -> bool:
        if isinstance(action, RequestCreate):
            return parent(action.transaction) == self.txn_name
        if isinstance(action, RequestCommit):
            return action.transaction == self.txn_name
        return False

    # ------------------------------------------------------------------
    # Transitions
    # ------------------------------------------------------------------
    def enabled_outputs(self) -> Iterator[Action]:
        view = self.view
        if not view.created or view.requested_commit:
            return
        requested = set(view.requested)
        for child in self.logic.request_candidates(view):
            if child not in requested:
                yield RequestCreate(child)
        for value in self.logic.commit_values(view):
            yield RequestCommit(self.txn_name, value)

    def _apply(self, action: Action) -> None:
        view = self.view
        if isinstance(action, Create):
            self.view = LocalView(
                name=view.name,
                children=view.children,
                created=True,
                requested_commit=view.requested_commit,
                requested=view.requested,
                reports=view.reports,
            )
            return
        if isinstance(action, ReportCommit):
            report = Report(action.transaction, True, action.value)
            self._record_report(report)
            return
        if isinstance(action, ReportAbort):
            report = Report(action.transaction, False)
            self._record_report(report)
            return
        if isinstance(action, RequestCreate):
            self.view = LocalView(
                name=view.name,
                children=view.children,
                created=view.created,
                requested_commit=view.requested_commit,
                requested=view.requested + (action.transaction,),
                reports=view.reports,
            )
            return
        if isinstance(action, RequestCommit):
            self.view = LocalView(
                name=view.name,
                children=view.children,
                created=view.created,
                requested_commit=True,
                requested=view.requested,
                reports=view.reports,
            )
            return

    def _record_report(self, report: Report) -> None:
        view = self.view
        # Repeated instances of the same report are allowed (Lemma 2); only
        # record the first so logics see each child's fate once.
        if view.reported(report.child):
            return
        self.view = LocalView(
            name=view.name,
            children=view.children,
            created=view.created,
            requested_commit=view.requested_commit,
            requested=view.requested,
            reports=view.reports + (report,),
        )
