"""Equieffectiveness, transparency, write-equality, write-equivalence
(Sections 4 and 6.1).

Two well-formed sequences alpha, beta of operations of basic object X are
**equieffective** when every continuation phi that keeps both well-formed
extends alpha to a schedule of X exactly when it extends beta.  An
operation pi is **transparent** when ``alpha + [pi]`` is equieffective to
``alpha`` for every well-formed schedule ``alpha + [pi]``.

For the deterministic ADT objects of this library, equieffectiveness is
*decidable* and this module implements the decision procedure:

    alpha and beta are equieffective  <=>
    neither is a schedule of X, or both are and they leave the ADT instance
    in values the spec cannot distinguish.

Justification (matching the paper's Lemma 20 argument): a continuation can
only (a) CREATE fresh accesses and later REQUEST_COMMIT them -- responses
are a deterministic function of the evolving ADT value -- or (b)
REQUEST_COMMIT an access pending in *both* sequences (well-formedness after
each sequence forces the CREATE to be present in each), whose response is
again determined by the ADT value.  Differences confined to pending sets
are invisible: an access pending in alpha but absent from beta can never be
mentioned by a phi that is well-formed after both.

Write-equality and write-equivalence are the rearrangement tolerances of
the main proof: ``write(alpha)`` keeps only REQUEST_COMMIT events of write
accesses, and two sequences of serial operations are **write-equivalent**
when they contain the same events, agree on every per-transaction
projection, and are write-equal at every object.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.basic_object import BasicObjectAutomaton
from repro.core.events import Event, transaction_of
from repro.core.names import SystemType, TransactionName
from repro.core.visibility import write_subsequence
from repro.core.wellformed import (
    BasicObjectWellFormedness,
    basic_object_signature_events,
)
from repro.errors import NotEnabledError
from repro.ioa.execution import same_events


def replay_basic_object(
    system_type: SystemType,
    object_name: str,
    alpha: Sequence[Event],
) -> Optional[BasicObjectAutomaton]:
    """Run *alpha* on a fresh basic object X.

    Returns the automaton in its final state when *alpha* is a schedule of
    X, or None when it is not.
    """
    automaton = BasicObjectAutomaton(system_type, object_name)
    try:
        for event in alpha:
            automaton.apply(event)
    except NotEnabledError:
        return None
    return automaton


def is_basic_object_schedule(
    system_type: SystemType,
    object_name: str,
    alpha: Sequence[Event],
) -> bool:
    """Return True if *alpha* is a schedule of basic object X."""
    return replay_basic_object(system_type, object_name, alpha) is not None


def equieffective(
    system_type: SystemType,
    object_name: str,
    alpha: Sequence[Event],
    beta: Sequence[Event],
) -> bool:
    """Decide whether *alpha* and *beta* are equieffective sequences of X.

    Both inputs must be well-formed sequences of operations of X; a
    :class:`~repro.errors.WellFormednessError` is raised otherwise, since
    the notion is only defined for well-formed sequences.
    """
    for sequence in (alpha, beta):
        checker = BasicObjectWellFormedness(system_type, object_name)
        for event in sequence:
            checker.extend(event)
    spec = system_type.object_spec(object_name)
    final_alpha = replay_basic_object(system_type, object_name, alpha)
    final_beta = replay_basic_object(system_type, object_name, beta)
    if final_alpha is None or final_beta is None:
        # If neither is a schedule, equieffectiveness holds trivially.
        return final_alpha is None and final_beta is None
    return spec.values_equal(final_alpha.value, final_beta.value)


def is_transparent_after(
    system_type: SystemType,
    object_name: str,
    alpha: Sequence[Event],
    pi: Event,
) -> bool:
    """Return True if appending *pi* to the schedule *alpha* is undetectable.

    Checks the transparency obligation at one point: ``alpha + [pi]`` must
    be a well-formed schedule of X equieffective to ``alpha``.
    """
    extended = tuple(alpha) + (pi,)
    return equieffective(system_type, object_name, extended, tuple(alpha))


# ----------------------------------------------------------------------
# Write-equality and write-equivalence
# ----------------------------------------------------------------------
def write_equal(
    system_type: SystemType,
    object_name: str,
    alpha: Sequence[Event],
    beta: Sequence[Event],
) -> bool:
    """Return True if write(alpha) == write(beta) at *object_name*."""
    return write_subsequence(alpha, system_type, object_name) == (
        write_subsequence(beta, system_type, object_name)
    )


def project_transaction(
    alpha: Sequence[Event], name: TransactionName
) -> Tuple[Event, ...]:
    """Project *alpha* onto the operations pi with ``transaction(pi) == T``.

    Following the paper, this includes T's automaton operations *and* the
    return (COMMIT/ABORT) operations for T's children.
    """
    return tuple(
        event for event in alpha if transaction_of(event) == name
    )


def write_equivalent(
    system_type: SystemType,
    alpha: Sequence[Event],
    beta: Sequence[Event],
) -> bool:
    """Decide write-equivalence of two sequences of serial operations.

    Checks the three defining conditions: same events, identical projection
    at every transaction, write-equality at every object.
    """
    return not write_equivalence_failures(system_type, alpha, beta)


def write_equivalence_failures(
    system_type: SystemType,
    alpha: Sequence[Event],
    beta: Sequence[Event],
) -> List[str]:
    """Explain how *alpha* and *beta* fail to be write-equivalent.

    Returns an empty list when they are write-equivalent; otherwise a list
    of human-readable violation descriptions (used by the correctness
    checker's diagnostics).
    """
    failures: List[str] = []
    if not same_events(alpha, beta):
        failures.append("the sequences do not contain the same events")
    owners = {
        transaction_of(event)
        for event in tuple(alpha) + tuple(beta)
    }
    owners.discard(None)
    for owner in sorted(owners):
        if project_transaction(alpha, owner) != project_transaction(
            beta, owner
        ):
            failures.append(
                "projections at transaction %r differ" % (owner,)
            )
    for object_name in system_type.object_names():
        if not write_equal(system_type, object_name, alpha, beta):
            failures.append(
                "write() sequences at object %r differ" % object_name
            )
    return failures


def project_object(
    system_type: SystemType,
    object_name: str,
    alpha: Sequence[Event],
) -> Tuple[Event, ...]:
    """Project *alpha* onto the operations of basic object *object_name*."""
    return tuple(
        event
        for event in alpha
        if basic_object_signature_events(system_type, object_name, event)
    )
