"""The serial scheduler (Section 3.3), transcribed verbatim.

The serial scheduler runs transactions according to a depth-first traversal
of the transaction tree: a transaction is created only when none of its
previously-created siblings is still running, a transaction commits only
after all its requested children have returned, and aborts happen only to
transactions that were requested but never created ("the semantics of
ABORT(T) are that T was never created").  Serial schedules -- schedules of
the serial system -- are the correctness yardstick for everything else.

State components and pre/postconditions follow the paper exactly; see each
``enabled`` clause.  Two practical restrictions (both yielding a
sub-automaton, hence every schedule produced is still a schedule of the
paper's scheduler):

* report operations are emitted at most once per transaction when
  ``once_reports`` is set (the paper allows repeated instances);
* the scheduler never aborts when ``abort_free`` is set (useful for
  building failure-free reference schedules).
"""

from __future__ import annotations

from typing import Any, Iterator, Set, Tuple

from repro.core.events import (
    Abort,
    Commit,
    Create,
    ReportAbort,
    ReportCommit,
    RequestCommit,
    RequestCreate,
)
from repro.core.names import ROOT, SystemType, TransactionName, parent
from repro.ioa.automaton import Action, Automaton


class SerialScheduler(Automaton):
    """The fully specified serial scheduler automaton."""

    state_attrs = (
        "create_requested",
        "created",
        "commit_requested",
        "committed",
        "aborted",
        "returned",
        "reported",
    )

    def __init__(
        self,
        system_type: SystemType,
        once_reports: bool = True,
        abort_free: bool = False,
    ):
        super().__init__("serial-scheduler")
        self.system_type = system_type
        self.once_reports = once_reports
        self.abort_free = abort_free
        # There is exactly one initial state: create_requested = {T0}.
        self.create_requested: Set[TransactionName] = {ROOT}
        self.created: Set[TransactionName] = set()
        self.commit_requested: Set[Tuple[TransactionName, Any]] = set()
        self.committed: Set[TransactionName] = set()
        self.aborted: Set[TransactionName] = set()
        self.returned: Set[TransactionName] = set()
        self.reported: Set[TransactionName] = set()

    # ------------------------------------------------------------------
    # Signature
    # ------------------------------------------------------------------
    def is_input(self, action: Action) -> bool:
        return isinstance(action, (RequestCreate, RequestCommit))

    def is_output(self, action: Action) -> bool:
        if isinstance(action, Create):
            return True
        if isinstance(action, (Commit, Abort, ReportCommit, ReportAbort)):
            return action.transaction != ROOT
        return False

    # ------------------------------------------------------------------
    # Preconditions
    # ------------------------------------------------------------------
    def _siblings_done(self, name: TransactionName) -> bool:
        """siblings(T) & created <= returned."""
        mother = parent(name)
        if mother is None:
            return True
        return all(
            sibling in self.returned
            for sibling in self.system_type.children(mother)
            if sibling != name and sibling in self.created
        )

    def _children_returned(self, name: TransactionName) -> bool:
        """children(T) & create_requested <= returned."""
        return all(
            child in self.returned
            for child in self.system_type.children(name)
            if child in self.create_requested
        )

    def _create_enabled(self, name: TransactionName) -> bool:
        if name not in self.create_requested:
            return False
        if name in self.created or name in self.aborted:
            return False
        return self._siblings_done(name)

    def _commit_enabled(self, name: TransactionName, value: Any) -> bool:
        if name == ROOT:
            return False
        if (name, value) not in self.commit_requested:
            return False
        if name in self.returned:
            return False
        return self._children_returned(name)

    def _abort_enabled(self, name: TransactionName) -> bool:
        if name == ROOT or self.abort_free:
            return False
        if name not in self.create_requested:
            return False
        if name in self.created or name in self.aborted:
            return False
        return self._siblings_done(name)

    # ------------------------------------------------------------------
    # Transitions
    # ------------------------------------------------------------------
    def enabled_outputs(self) -> Iterator[Action]:
        for name in sorted(self.create_requested):
            if self._create_enabled(name):
                yield Create(name)
        for name, value in sorted(self.commit_requested, key=repr):
            if self._commit_enabled(name, value):
                yield Commit(name)
        for name in sorted(self.create_requested):
            if self._abort_enabled(name):
                yield Abort(name)
        for name, value in sorted(self.commit_requested, key=repr):
            if name in self.committed and not (
                self.once_reports and name in self.reported
            ):
                yield ReportCommit(name, value)
        for name in sorted(self.aborted):
            if not (self.once_reports and name in self.reported):
                yield ReportAbort(name)

    def output_enabled(self, action: Action) -> bool:
        if isinstance(action, Create):
            return self._create_enabled(action.transaction)
        if isinstance(action, Commit):
            return any(
                self._commit_enabled(action.transaction, value)
                for name, value in self.commit_requested
                if name == action.transaction
            )
        if isinstance(action, Abort):
            return self._abort_enabled(action.transaction)
        if isinstance(action, ReportCommit):
            return (
                action.transaction in self.committed
                and (action.transaction, action.value) in self.commit_requested
            )
        if isinstance(action, ReportAbort):
            return action.transaction in self.aborted
        return False

    def _apply(self, action: Action) -> None:
        if isinstance(action, RequestCreate):
            self.create_requested.add(action.transaction)
            return
        if isinstance(action, RequestCommit):
            self.commit_requested.add((action.transaction, action.value))
            return
        if isinstance(action, Create):
            self.created.add(action.transaction)
            return
        if isinstance(action, Commit):
            self.committed.add(action.transaction)
            self.returned.add(action.transaction)
            return
        if isinstance(action, Abort):
            self.aborted.add(action.transaction)
            self.returned.add(action.transaction)
            return
        if isinstance(action, (ReportCommit, ReportAbort)):
            self.reported.add(action.transaction)
            return
