"""Serial correctness checking (Section 3.5, Theorem 34, Corollary 35).

A sequence of operations is **serially correct for transaction T** when its
projection on T equals the projection on T of some serial schedule.  The
paper's main theorem: every schedule of a R/W Locking system is serially
correct for every non-orphan non-access transaction (Corollary 35: in
particular for the root T0, the external environment).

:func:`check_schedule` verifies the theorem *end to end* for a given
concurrent schedule:

1. run the :class:`~repro.core.serializer.Serializer` to obtain, for each
   created non-orphan non-access transaction T, a candidate serial schedule
   beta;
2. check beta is write-equivalent to ``visible(alpha, T)`` (Lemma 33's
   postcondition);
3. **replay** beta against a freshly instantiated serial system -- the same
   transaction automata composed with basic objects and the serial
   scheduler -- so serial-ness is established by an independent oracle, not
   assumed from the construction;
4. check the projection equality ``alpha | T == beta | T`` that defines
   serial correctness.

The division of labour mirrors the paper: the serializer is the proof's
constructive content, the replay is the statement being proved.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.equieffective import write_equivalence_failures
from repro.core.events import Create, Event
from repro.core.names import SystemType, TransactionName, pretty_name
from repro.core.serializer import Serializer
from repro.core.systems import SerialSystem
from repro.core.visibility import is_orphan, visible
from repro.core.wellformed import (
    is_well_formed,
    transaction_signature_events,
)
from repro.errors import NotEnabledError, SerializationFailure


@dataclass
class CorrectnessReport:
    """Outcome of checking serial correctness for one transaction."""

    transaction: TransactionName
    ok: bool
    serial_schedule: Tuple[Event, ...] = ()
    visible_schedule: Tuple[Event, ...] = ()
    failures: List[str] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.ok


@dataclass
class ScheduleReport:
    """Outcome of checking a whole concurrent schedule."""

    ok: bool
    well_formed: bool
    reports: List[CorrectnessReport] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.ok

    def failed(self) -> List[CorrectnessReport]:
        """The per-transaction reports that failed."""
        return [report for report in self.reports if not report.ok]


def project_transaction_automaton(
    alpha: Sequence[Event], name: TransactionName
) -> Tuple[Event, ...]:
    """Project onto the *automaton* operations of transaction T.

    This is what T itself observes (CREATE, its requests, its children's
    reports) -- the projection serial correctness speaks about.
    """
    return tuple(
        event
        for event in alpha
        if transaction_signature_events(name, event)
    )


def replay_serial(
    serial_system: SerialSystem, beta: Sequence[Event]
) -> Optional[str]:
    """Replay *beta* on a fresh copy of *serial_system*.

    Returns None on success, or a description of the first rejected event.
    """
    system = serial_system.fresh()
    for index, event in enumerate(beta):
        try:
            system.apply(event)
        except NotEnabledError as exc:
            return "event %d (%s) rejected: %s" % (index, event, exc)
    return None


def check_transaction(
    system_type: SystemType,
    serial_system: SerialSystem,
    alpha: Sequence[Event],
    beta: Tuple[Event, ...],
    name: TransactionName,
) -> CorrectnessReport:
    """Check serial correctness of *alpha* for one transaction.

    *beta* is the serializer's candidate serial schedule for *name*.
    """
    failures: List[str] = []
    vis = visible(alpha, name)
    failures.extend(write_equivalence_failures(system_type, vis, beta))
    rejection = replay_serial(serial_system, beta)
    if rejection is not None:
        failures.append("not a serial schedule: %s" % rejection)
    local_alpha = project_transaction_automaton(alpha, name)
    local_beta = project_transaction_automaton(beta, name)
    if local_alpha != local_beta:
        failures.append(
            "projection at %s differs between alpha and beta"
            % pretty_name(name)
        )
    return CorrectnessReport(
        transaction=name,
        ok=not failures,
        serial_schedule=beta,
        visible_schedule=vis,
        failures=failures,
    )


def check_schedule(
    system_type: SystemType,
    alpha: Sequence[Event],
    serial_system: Optional[SerialSystem] = None,
    transactions: Optional[Sequence[TransactionName]] = None,
) -> ScheduleReport:
    """Check Theorem 34 on the concurrent schedule *alpha*.

    Verifies well-formedness (Lemma 26) and serial correctness for every
    created non-orphan non-access transaction (or the given
    *transactions*).  *serial_system* supplies the transaction automata
    for replays; the default uses
    :func:`~repro.core.systems.default_logic_factory`, which matches a
    R/W Locking system built with defaults.
    """
    if serial_system is None:
        serial_system = SerialSystem(system_type)
    well_formed = is_well_formed(system_type, alpha, locking=True)
    serializer = Serializer(system_type)
    serializer.extend_all(alpha)
    if transactions is None:
        created = [
            event.transaction
            for event in alpha
            if isinstance(event, Create)
        ]
        transactions = [
            name
            for name in created
            if not system_type.is_access(name)
            and not is_orphan(alpha, name)
        ]
    reports: List[CorrectnessReport] = []
    for name in transactions:
        try:
            beta = serializer.serial_schedule_for(name)
        except SerializationFailure as exc:
            reports.append(
                CorrectnessReport(
                    transaction=name, ok=False, failures=[str(exc)]
                )
            )
            continue
        reports.append(
            check_transaction(
                system_type, serial_system, alpha, beta, name
            )
        )
    ok = well_formed and all(report.ok for report in reports)
    return ScheduleReport(ok=ok, well_formed=well_formed, reports=reports)


def check_serial_correctness(
    rw_system,
    alpha: Sequence[Event],
    transactions: Optional[Sequence[TransactionName]] = None,
) -> ScheduleReport:
    """Check Theorem 34 using the configuration of a R/W Locking system.

    Builds the serial replay system with the *same* transaction logic
    factory as *rw_system*, so the two systems share their transaction
    automata as the paper requires.
    """
    serial_system = SerialSystem(
        rw_system.system_type, logic_factory=rw_system.logic_factory
    )
    return check_schedule(
        rw_system.system_type,
        alpha,
        serial_system=serial_system,
        transactions=transactions,
    )
