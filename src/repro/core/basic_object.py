"""Basic object automata (Sections 3.2 and 4.3).

One automaton per object (not per access): its operations are the CREATE
and REQUEST_COMMIT operations of all accesses to that object.  The
implementation follows the paper's Section 4.3 example exactly: the state
is a set of *pending* accesses plus an instance of an abstract data type;
CREATE(T) adds T to pending; at any time a pending T may be chosen, its
operation applied to the ADT instance (yielding return value v and a new
instance), and REQUEST_COMMIT(T, v) output -- one atomic step.

Because every :class:`~repro.core.object_spec.ObjectSpec` keeps read
operations transparent and ``apply`` pure, objects built this way satisfy
the paper's three semantic conditions by construction (verified by the
property tests in ``tests/adt``).
"""

from __future__ import annotations

from typing import Any, Iterator, Set

from repro.core.events import Create, RequestCommit
from repro.core.names import SystemType, TransactionName
from repro.core.object_spec import ObjectSpec
from repro.ioa.automaton import Action, Automaton


class BasicObjectAutomaton(Automaton):
    """The serial-system automaton for one shared object."""

    state_attrs = ("pending", "value", "responded")

    def __init__(self, system_type: SystemType, object_name: str):
        super().__init__("obj:%s" % object_name)
        self.system_type = system_type
        self.object_name = object_name
        self.spec: ObjectSpec = system_type.object_spec(object_name)
        self.pending: Set[TransactionName] = set()
        self.responded: Set[TransactionName] = set()
        self.value: Any = self.spec.initial_value()

    def _is_local_access(self, name: TransactionName) -> bool:
        return (
            self.system_type.is_access(name)
            and self.system_type.object_of(name) == self.object_name
        )

    # ------------------------------------------------------------------
    # Signature
    # ------------------------------------------------------------------
    def is_input(self, action: Action) -> bool:
        return isinstance(action, Create) and self._is_local_access(
            action.transaction
        )

    def is_output(self, action: Action) -> bool:
        return isinstance(action, RequestCommit) and self._is_local_access(
            action.transaction
        )

    # ------------------------------------------------------------------
    # Transitions
    # ------------------------------------------------------------------
    def enabled_outputs(self) -> Iterator[Action]:
        for name in sorted(self.pending):
            operation = self.system_type.operation_of(name)
            result, _ = self.spec.apply(self.value, operation)
            yield RequestCommit(name, result)

    def output_enabled(self, action: Action) -> bool:
        if not isinstance(action, RequestCommit):
            return False
        name = action.transaction
        if name not in self.pending:
            return False
        operation = self.system_type.operation_of(name)
        result, _ = self.spec.apply(self.value, operation)
        return result == action.value

    def _apply(self, action: Action) -> None:
        if isinstance(action, Create):
            name = action.transaction
            # Behaviour after a well-formedness violation (repeated CREATE)
            # is unconstrained; re-adding is the benign choice.
            if name not in self.responded:
                self.pending.add(name)
            return
        if isinstance(action, RequestCommit):
            name = action.transaction
            operation = self.system_type.operation_of(name)
            _, new_value = self.spec.apply(self.value, operation)
            self.pending.discard(name)
            self.responded.add(name)
            self.value = new_value
            return
