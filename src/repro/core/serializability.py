"""Classical conflict-serializability: the independent second oracle.

The paper's introduction situates its work in the classical theory
[EGLT, P, BG]: "a protocol is correct if it ensures that all executions
are equivalent to serial executions", proved by showing "a precedence
graph contains no cycles".  This module implements that classical check
over the *top-level* transactions of a schedule, giving a second,
independent correctness oracle alongside the paper's own serial-
correctness machinery:

* collect, per object, the committed accesses in schedule order;
* draw a precedence edge ``A -> B`` between distinct top-level
  transactions whenever an access of A conflicts with (shares an object
  with, at least one a write) and precedes an access of B;
* the schedule is conflict-serializable iff the graph is acyclic, and a
  topological order is an equivalent serial order.

:func:`equivalent_serial_order` also *verifies* the equivalence: it
replays the committed operations in the serial order on fresh ADT values
and compares final states with the interleaved replay.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set

from repro.core import digraph
from repro.core.events import Commit, Event, RequestCommit
from repro.core.names import SystemType, TransactionName
from repro.errors import ReproError


@dataclass(frozen=True)
class CommittedAccess:
    """One access that committed all the way to the root."""

    access: TransactionName
    top: TransactionName
    object_name: str
    is_read: bool
    position: int


@dataclass
class PrecedenceGraph:
    """The classical conflict graph over top-level transactions."""

    nodes: Set[TransactionName] = field(default_factory=set)
    edges: Dict[TransactionName, Set[TransactionName]] = field(
        default_factory=dict
    )

    def add_edge(self, a: TransactionName, b: TransactionName) -> None:
        if a == b:
            return
        self.nodes.add(a)
        self.nodes.add(b)
        self.edges.setdefault(a, set()).add(b)

    def _successors(self, node: TransactionName):
        return self.edges.get(node, ())

    def find_cycle(self) -> Optional[List[TransactionName]]:
        """Return one cycle as a node list (closed), or None."""
        return digraph.find_cycle(self.nodes, self._successors)

    def topological_order(self) -> List[TransactionName]:
        """A topological order of the nodes; raises on a cycle."""
        cycle = self.find_cycle()
        if cycle is not None:
            raise ReproError("precedence graph has cycle %r" % (cycle,))
        return digraph.topological_order(self.nodes, self._successors)


def committed_accesses(
    system_type: SystemType, alpha: Sequence[Event]
) -> List[CommittedAccess]:
    """The accesses of *alpha* whose whole ancestor chain committed.

    Only operations that became permanent take part in the classical
    analysis; aborted subtrees were never executed as far as serial
    equivalence is concerned (Moss' versions restore their effects).
    """
    committed: Set[TransactionName] = {
        event.transaction
        for event in alpha
        if isinstance(event, Commit)
    }
    result: List[CommittedAccess] = []
    for position, event in enumerate(alpha):
        if not isinstance(event, RequestCommit):
            continue
        access = event.transaction
        if not system_type.is_access(access):
            continue
        chain_committed = all(
            access[:length] in committed
            for length in range(1, len(access) + 1)
        )
        if not chain_committed:
            continue
        result.append(
            CommittedAccess(
                access=access,
                top=access[:1],
                object_name=system_type.object_of(access),
                is_read=system_type.is_read_access(access),
                position=position,
            )
        )
    return result


def precedence_graph(
    system_type: SystemType, alpha: Sequence[Event]
) -> PrecedenceGraph:
    """Build the conflict graph of *alpha* over top-level transactions."""
    graph = PrecedenceGraph()
    accesses = committed_accesses(system_type, alpha)
    for item in accesses:
        graph.nodes.add(item.top)
    by_object: Dict[str, List[CommittedAccess]] = {}
    for item in accesses:
        by_object.setdefault(item.object_name, []).append(item)
    for items in by_object.values():
        items.sort(key=lambda item: item.position)
        for index, earlier in enumerate(items):
            for later in items[index + 1:]:
                if earlier.top == later.top:
                    continue
                if earlier.is_read and later.is_read:
                    continue
                graph.add_edge(earlier.top, later.top)
    return graph


def is_conflict_serializable(
    system_type: SystemType, alpha: Sequence[Event]
) -> bool:
    """The classical test: acyclic precedence graph."""
    return precedence_graph(system_type, alpha).find_cycle() is None


def replay_committed_values(
    system_type: SystemType,
    alpha: Sequence[Event],
    order: Optional[Sequence[TransactionName]] = None,
) -> Dict[str, Any]:
    """Final ADT values after applying the committed accesses.

    With *order* given, accesses are applied grouped by top-level
    transaction in that serial order (schedule order within each
    transaction); otherwise in plain schedule order.
    """
    accesses = committed_accesses(system_type, alpha)
    if order is not None:
        rank = {top: index for index, top in enumerate(order)}
        accesses.sort(
            key=lambda item: (rank.get(item.top, len(rank)), item.position)
        )
    values: Dict[str, Any] = {
        name: system_type.object_spec(name).initial_value()
        for name in system_type.object_names()
    }
    for item in accesses:
        spec = system_type.object_spec(item.object_name)
        operation = system_type.operation_of(item.access)
        _, values[item.object_name] = spec.apply(
            values[item.object_name], operation
        )
    return values


@dataclass
class SerializabilityReport:
    """Outcome of the classical analysis of one schedule."""

    serializable: bool
    cycle: Optional[List[TransactionName]]
    serial_order: Optional[List[TransactionName]]
    state_equivalent: Optional[bool]

    def __bool__(self) -> bool:
        return self.serializable and self.state_equivalent is not False


def equivalent_serial_order(
    system_type: SystemType, alpha: Sequence[Event]
) -> SerializabilityReport:
    """Run the full classical pipeline on *alpha*.

    Builds the precedence graph; if acyclic, extracts a serial order and
    *verifies* equivalence by comparing the interleaved replay's final
    object values with the serial replay's.
    """
    graph = precedence_graph(system_type, alpha)
    cycle = graph.find_cycle()
    if cycle is not None:
        return SerializabilityReport(
            serializable=False,
            cycle=cycle,
            serial_order=None,
            state_equivalent=None,
        )
    order = graph.topological_order()
    interleaved = replay_committed_values(system_type, alpha)
    serial = replay_committed_values(system_type, alpha, order=order)
    equivalent = all(
        system_type.object_spec(name).values_equal(
            interleaved[name], serial[name]
        )
        for name in system_type.object_names()
    )
    return SerializabilityReport(
        serializable=True,
        cycle=None,
        serial_order=order,
        state_equivalent=equivalent,
    )
