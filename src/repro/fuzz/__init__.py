"""Deterministic concurrency fuzzing with fault injection and shrinking.

Theorem 34 quantifies over *every* R/W Locking schedule; the rest of
the test suite samples schedules.  This package searches them
adversarially, and -- crucially -- reproducibly:

* :mod:`~repro.fuzz.controller` -- a seeded cooperative scheduler that
  serialises :class:`~repro.engine.threadsafe.ThreadSafeEngine` worker
  threads through explicit yield points (lock acquire, blocking,
  commit, abort), making any interleaving an exact function of a
  *choice list*; includes a CHESS-style bounded-preemption strategy;
* :mod:`~repro.fuzz.workload` -- seeded worker programs over a small,
  high-conflict store;
* :mod:`~repro.fuzz.faults` -- seeded run-time fault injection
  (crash-aborts, lock-denial spikes, orphan-creation attempts) plus the
  deliberately broken policies of :mod:`repro.analysis.faults`;
* :mod:`~repro.fuzz.runner` -- executes cases, judges them with the
  conformance pipeline (:func:`repro.checking.check_engine_trace`) and
  the RW001--RW008 linter, and emits paste-able regression tests;
* :mod:`~repro.fuzz.shrink` -- delta-debugs a failing choice list to a
  1-minimal reproducer.

``python -m repro fuzz`` is the CLI; ``docs/FUZZING.md`` documents the
replay format and the shrinker's guarantees.
"""

from repro.fuzz.controller import (
    BoundedPreemptionStrategy,
    FuzzStall,
    InterleavingController,
    RandomStrategy,
    ReplayStrategy,
    SchedulingStrategy,
)
from repro.fuzz.faults import (
    FAULT_PRESETS,
    FaultInjector,
    FaultPlan,
    fault_plan,
)
from repro.fuzz.runner import (
    FuzzCaseResult,
    FuzzConfig,
    SearchResult,
    emit_regression_test,
    explore_bounded,
    fuzz_search,
    run_case,
    same_failure,
)
from repro.fuzz.shrink import ShrinkResult, shrink_choices
from repro.fuzz.workload import (
    AccessStep,
    ChildBlock,
    TopProgram,
    WorkloadConfig,
    make_worker_programs,
)

__all__ = [
    "AccessStep",
    "BoundedPreemptionStrategy",
    "ChildBlock",
    "FAULT_PRESETS",
    "FaultInjector",
    "FaultPlan",
    "FuzzCaseResult",
    "FuzzConfig",
    "FuzzStall",
    "InterleavingController",
    "RandomStrategy",
    "ReplayStrategy",
    "SchedulingStrategy",
    "SearchResult",
    "ShrinkResult",
    "TopProgram",
    "WorkloadConfig",
    "emit_regression_test",
    "explore_bounded",
    "fault_plan",
    "fuzz_search",
    "make_worker_programs",
    "run_case",
    "same_failure",
    "shrink_choices",
]
