"""The deterministic interleaving controller.

Worker threads driving one :class:`~repro.engine.threadsafe.ThreadSafeEngine`
are serialised through per-worker turnstiles: exactly one worker runs at
a time, and it runs only from one *yield point* to the next (lock
acquire, injected denial, commit, abort -- the hooks installed via
:meth:`ThreadSafeEngine.install_hooks`).  At every yield the controller
picks which worker proceeds, so the whole thread interleaving is a pure
function of the *decision sequence* -- record it and any run replays
exactly; shrink it and the run stays deterministic (unreferenced
decisions fall back to the lowest runnable worker id).

Blocking never uses wall-clock time: a worker whose access is denied
parks in the controller as BLOCKED and becomes runnable again when any
other worker sheds locks (commit, abort, or wound-wait).  Wound-wait
makes the waits-for relation acyclic (younger waits on older only), so
an all-blocked stall indicates an engine bug; the controller reports it
as a failure instead of hanging.

Scheduling strategies:

* :class:`RandomStrategy` -- seeded uniform choice (search mode);
* :class:`ReplayStrategy` -- follow an explicit choice list (replay and
  shrinking), falling back deterministically when the list is exhausted
  or names a non-runnable worker;
* :class:`BoundedPreemptionStrategy` -- run non-preemptively (stay on
  the current worker until it blocks or finishes) except at explicitly
  chosen decision indices, in the spirit of CHESS's iterative
  context bounding.
"""

from __future__ import annotations

import random
import threading
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError


class FuzzStall(ReproError):
    """The controlled run cannot make progress (scheduler stall)."""


class SchedulingStrategy:
    """Picks the next worker at each decision point."""

    def pick(self, index: int, runnable: Sequence[int]) -> int:
        """Choose one element of *runnable* for decision *index*."""
        raise NotImplementedError


class RandomStrategy(SchedulingStrategy):
    """Seeded uniform choice among the runnable workers."""

    def __init__(self, seed: int):
        self._rng = random.Random(seed)

    def pick(self, index: int, runnable: Sequence[int]) -> int:
        return self._rng.choice(list(runnable))


class ReplayStrategy(SchedulingStrategy):
    """Follow an explicit choice list; deterministic fallback after it.

    A choice naming a worker that is not currently runnable (possible
    after shrinking) falls back to the lowest runnable id, as do
    decisions past the end of the list, so every choice list -- not just
    recorded ones -- yields a deterministic run.
    """

    def __init__(self, choices: Sequence[int]):
        self.choices = list(choices)

    def pick(self, index: int, runnable: Sequence[int]) -> int:
        if index < len(self.choices) and self.choices[index] in runnable:
            return self.choices[index]
        return min(runnable)


class BoundedPreemptionStrategy(SchedulingStrategy):
    """Non-preemptive baseline with preemptions at chosen decisions.

    The current worker keeps running while it stays runnable (a context
    switch happens only when it blocks or finishes), except at the
    decision indices in *preemptions*, where control moves to the
    worker whose id is next in round-robin order after the current one.
    With an empty map this is the deterministic round-robin baseline;
    CHESS-style exploration enumerates small preemption maps.
    """

    def __init__(self, preemptions: Optional[Dict[int, int]] = None):
        self.preemptions = dict(preemptions or {})
        self._last: Optional[int] = None

    def pick(self, index: int, runnable: Sequence[int]) -> int:
        choice: Optional[int] = None
        if index in self.preemptions:
            offset = self.preemptions[index]
            others = [w for w in runnable if w != self._last]
            if others:
                choice = others[offset % len(others)]
        if choice is None:
            if self._last is not None and self._last in runnable:
                choice = self._last
            else:
                choice = min(runnable)
        self._last = choice
        return choice


# Worker lifecycle states.
_READY = "ready"
_RUNNING = "running"
_BLOCKED = "blocked"
_DONE = "done"


class _WorkerState:
    def __init__(self, worker_id: int):
        self.worker_id = worker_id
        self.phase = _READY
        self.blocked_on: Tuple = ()
        self.error: Optional[BaseException] = None


class InterleavingController:
    """Runs worker bodies under a chosen scheduling strategy.

    Implements the hook protocol of
    :class:`~repro.engine.threadsafe.ThreadSafeEngine` (``yield_point``,
    ``park_blocked``, ``on_release``, ``inject_deny``) and drives the
    whole run from :meth:`run`.  The recorded per-decision worker ids
    land in :attr:`decisions`; the ordered yield log (one entry per
    yield point) lands in :attr:`events` and is part of the replay
    digest.
    """

    #: Hard cap on decisions per run: programs are finite, so hitting
    #: this means a livelock -- reported as a stall, not an endless run.
    max_decisions = 200_000

    def __init__(
        self,
        strategy: SchedulingStrategy,
        injector=None,
        turn_timeout: float = 30.0,
    ):
        self._strategy = strategy
        self._injector = injector
        self._turn_timeout = turn_timeout
        self._cv = threading.Condition()
        self._states: Dict[int, _WorkerState] = {}
        self._threads: Dict[int, threading.Thread] = {}
        self._by_ident: Dict[int, int] = {}
        self._current: Optional[int] = None
        self.decisions: List[int] = []
        self.events: List[Tuple] = []
        self.stalled = False
        self.stall_reason: Optional[str] = None

    # ------------------------------------------------------------------
    # Worker registration and startup
    # ------------------------------------------------------------------
    def spawn(self, worker_id: int, body) -> None:
        """Register worker *body* (a zero-argument callable)."""
        if worker_id in self._states:
            raise ReproError("duplicate worker id %d" % worker_id)
        state = _WorkerState(worker_id)
        self._states[worker_id] = state
        thread = threading.Thread(
            target=self._worker_main,
            args=(worker_id, body),
            name="fuzz-worker-%d" % worker_id,
            daemon=True,
        )
        self._threads[worker_id] = thread

    def _worker_main(self, worker_id: int, body) -> None:
        self._by_ident[threading.get_ident()] = worker_id
        self._await_turn(worker_id)
        state = self._states[worker_id]
        try:
            body()
        except BaseException as exc:  # noqa: BLE001 - reported, not lost
            state.error = exc
        finally:
            with self._cv:
                state.phase = _DONE
                if self._current == worker_id:
                    self._current = None
                self._cv.notify_all()

    # ------------------------------------------------------------------
    # Hook protocol (called from worker threads)
    # ------------------------------------------------------------------
    def _me(self) -> int:
        return self._by_ident[threading.get_ident()]

    def _await_turn(self, worker_id: int) -> None:
        state = self._states[worker_id]
        with self._cv:
            while self._current != worker_id:
                self._cv.wait(timeout=self._turn_timeout)
                if self.stalled:
                    raise FuzzStall(self.stall_reason or "stalled")
            state.phase = _RUNNING

    def yield_point(self, kind: str, txn_name, detail) -> None:
        worker_id = self._me()
        self.events.append((kind, worker_id, txn_name, detail))
        with self._cv:
            self._states[worker_id].phase = _READY
            self._current = None
            self._cv.notify_all()
        self._await_turn(worker_id)

    def park_blocked(self, txn_name, blockers, object_name) -> None:
        worker_id = self._me()
        self.events.append(("park", worker_id, txn_name, object_name))
        with self._cv:
            state = self._states[worker_id]
            state.phase = _BLOCKED
            state.blocked_on = tuple(blockers)
            self._current = None
            self._cv.notify_all()
        self._await_turn(worker_id)

    def on_release(self, txn_name) -> None:
        self.events.append(("release", self._me(), txn_name, None))
        with self._cv:
            for state in self._states.values():
                if state.phase == _BLOCKED:
                    state.phase = _READY
                    state.blocked_on = ()

    def inject_deny(self, txn_name, object_name) -> bool:
        if self._injector is None:
            return False
        return self._injector.deny_now(self._me(), object_name)

    # ------------------------------------------------------------------
    # The scheduling loop (called from the driving thread)
    # ------------------------------------------------------------------
    def run(self) -> None:
        """Start every worker and schedule until all are done.

        On a stall (all live workers blocked, or a worker failing to
        reach its next yield point) the run is marked ``stalled``
        instead of raising, so the caller can report it as a finding.
        """
        for thread in self._threads.values():
            thread.start()
        with self._cv:
            while True:
                runnable = sorted(
                    worker_id
                    for worker_id, state in self._states.items()
                    if state.phase == _READY
                )
                if not runnable:
                    statuses = sorted(
                        (worker_id, state.phase)
                        for worker_id, state in self._states.items()
                    )
                    if all(s == _DONE for _, s in statuses):
                        return
                    self._stall("all live workers blocked: %r" % statuses)
                    return
                if len(self.decisions) >= self.max_decisions:
                    self._stall(
                        "decision budget exceeded (%d)" % self.max_decisions
                    )
                    return
                pick = self._strategy.pick(len(self.decisions), runnable)
                if pick not in runnable:
                    raise ReproError(
                        "strategy picked non-runnable worker %r" % pick
                    )
                self.decisions.append(pick)
                self._current = pick
                self._cv.notify_all()
                if not self._cv.wait_for(
                    lambda: self._current is None,
                    timeout=self._turn_timeout,
                ):
                    self._stall(
                        "worker %d never reached its next yield point"
                        % pick
                    )
                    return

    def _stall(self, reason: str) -> None:
        self.stalled = True
        self.stall_reason = reason
        self._cv.notify_all()

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def worker_errors(self) -> Dict[int, BaseException]:
        """Unexpected exceptions that escaped worker bodies."""
        return {
            worker_id: state.error
            for worker_id, state in sorted(self._states.items())
            if state.error is not None
        }
