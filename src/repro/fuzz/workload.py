"""Seeded worker programs for the concurrency fuzzer.

Each fuzz worker executes a deterministic program -- a short list of
top-level transactions, each a sequence of accesses and (optionally)
sequential child blocks -- generated from ``(seed, worker_id)`` alone,
so the only degree of freedom left in a run is the interleaving chosen
by the controller.  Children are strictly sequential within a program
(begin, access, return, then the next child) so a worker can never
self-deadlock on a sibling's lock.

Programs deliberately hammer a *small* shared store (two-three objects)
to maximise lock conflicts per decision, the regime where interleaving
bugs live.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from repro.adt import Counter, IntRegister
from repro.core.object_spec import ObjectSpec, Operation


@dataclass(frozen=True)
class AccessStep:
    """One ``perform`` against the shared store."""

    object_name: str
    operation: Operation


@dataclass(frozen=True)
class ChildBlock:
    """A subtransaction: its accesses, then commit (or abort)."""

    steps: Tuple[AccessStep, ...]
    commit: bool


@dataclass(frozen=True)
class TopProgram:
    """One top-level transaction's script."""

    steps: Tuple[object, ...]  # AccessStep | ChildBlock
    commit: bool


@dataclass
class WorkloadConfig:
    """Shape of the generated fuzz workload."""

    workers: int = 3
    #: top-level transactions each worker runs, one after another
    transactions_per_worker: int = 2
    #: accesses (or child blocks) per transaction
    steps_per_transaction: int = 4
    #: probability a step is a child block rather than a direct access
    child_fraction: float = 0.3
    #: probability a child block aborts instead of committing
    child_abort_fraction: float = 0.25
    #: probability a whole top-level aborts instead of committing
    abort_fraction: float = 0.1
    objects: Tuple[str, ...] = ("c", "x")

    def store(self) -> List[ObjectSpec]:
        """The shared object specs the workload runs against."""
        specs: List[ObjectSpec] = []
        for index, name in enumerate(self.objects):
            if index % 2 == 0:
                specs.append(Counter(name))
            else:
                specs.append(IntRegister(name))
        return specs


def _menu(config: WorkloadConfig) -> List[AccessStep]:
    steps: List[AccessStep] = []
    for index, name in enumerate(config.objects):
        if index % 2 == 0:
            steps.append(AccessStep(name, Counter.increment(1)))
            steps.append(AccessStep(name, Counter.value()))
        else:
            steps.append(AccessStep(name, IntRegister.add(1)))
            steps.append(AccessStep(name, IntRegister.read()))
    return steps


def make_worker_programs(
    seed: int, worker_id: int, config: WorkloadConfig
) -> List[TopProgram]:
    """The deterministic program list for one worker."""
    rng = random.Random((seed * 1_000_003) + worker_id)
    menu = _menu(config)
    programs: List[TopProgram] = []
    for _ in range(config.transactions_per_worker):
        steps: List[object] = []
        for _ in range(config.steps_per_transaction):
            if rng.random() < config.child_fraction:
                child_steps = tuple(
                    rng.choice(menu)
                    for _ in range(rng.randint(1, 2))
                )
                steps.append(
                    ChildBlock(
                        child_steps,
                        commit=(
                            rng.random()
                            >= config.child_abort_fraction
                        ),
                    )
                )
            else:
                steps.append(rng.choice(menu))
        programs.append(
            TopProgram(
                tuple(steps),
                commit=rng.random() >= config.abort_fraction,
            )
        )
    return programs


@dataclass
class WorkerLog:
    """What one worker observed while running its programs."""

    performed: List[Tuple[str, object]] = field(default_factory=list)
    wounded: int = 0
    crashed: int = 0
    #: Crashes that fired while a nested child handle was in flight
    #: (the subtree is torn down mid-block, the orphan-handling case
    #: recovery must cope with).
    crashed_with_live_child: int = 0
    orphan_guard_hits: int = 0
