"""Run one fuzz case; search for failing ones; report reproducers.

A *case* is fully described by ``(FuzzConfig, choice list)``: the config
seeds the worker programs and the fault streams, the choice list pins
the interleaving (an empty/absent list means seeded random search).
:func:`run_case` executes the case under the
:class:`~repro.fuzz.controller.InterleavingController` and judges the
finished run with three oracles:

1. **conformance** -- the engine trace is replayed against the formal
   model by :func:`repro.checking.check_engine_trace`; any refinement
   rejection or Theorem 34 violation arrives with rule-level
   (``RW001``...) findings from :mod:`repro.analysis` (skipped for
   schemes whose capabilities declare ``model_conformant=False``,
   e.g. ``mvto`` -- the stall and exception oracles still apply);
2. **stall** -- the controller could not make progress (all workers
   blocked), impossible under correct wound-wait;
3. **worker exceptions** -- anything unexpected escaping a worker body;
4. **audit** (opt-in, ``run_case(audit=True)``) -- the online
   serializability auditor (:mod:`repro.audit`) watches the run and
   fails the case with a minimal witness cycle (``SER001``) when the
   committed top-level transactions admit no serial order.

The :attr:`FuzzCaseResult.digest` hashes the decision sequence, every
yield-point event, every lock-table transition and the full engine
trace, so two runs are byte-for-byte identical iff their digests match.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple

from repro.engine.threadsafe import ThreadSafeEngine
from repro.errors import (
    InvalidTransactionState,
    TransactionAborted,
)
from repro.fuzz.controller import (
    BoundedPreemptionStrategy,
    FuzzStall,
    InterleavingController,
    RandomStrategy,
    ReplayStrategy,
    SchedulingStrategy,
)
from repro.fuzz.faults import FaultInjector, FaultPlan, fault_plan
from repro.kernel import get_scheme
from repro.fuzz.workload import (
    AccessStep,
    ChildBlock,
    WorkerLog,
    WorkloadConfig,
    make_worker_programs,
)


@dataclass(frozen=True)
class FuzzConfig:
    """Everything that seeds one fuzz case (besides the choice list)."""

    seed: int = 0
    workers: int = 3
    transactions_per_worker: int = 2
    steps_per_transaction: int = 4
    faults: str = "none"
    objects: Tuple[str, ...] = ("c", "x")
    #: registered kernel scheme to fuzz (``repro.kernel.scheme_names``);
    #: a fault preset carrying its own policy (``broken-no-inherit``)
    #: overrides this field
    scheme: str = "moss-rw"

    def workload(self) -> WorkloadConfig:
        return WorkloadConfig(
            workers=self.workers,
            transactions_per_worker=self.transactions_per_worker,
            steps_per_transaction=self.steps_per_transaction,
            objects=self.objects,
        )

    def plan(self) -> FaultPlan:
        return fault_plan(self.faults)


@dataclass
class FuzzCaseResult:
    """Outcome of one controlled run."""

    config: FuzzConfig
    #: the canonical reproducer input: the choice list the case was run
    #: with (decisions past its end fall back deterministically), or the
    #: full recorded decision list for search runs
    choices: List[int]
    #: every decision actually taken, as recorded by the controller
    decisions: List[int]
    kind: str  # "ok" | "conformance" | "stall" | "worker-exception" | "audit"
    rule_codes: Tuple[str, ...]
    digest: str
    trace_length: int
    decision_count: int
    stall_reason: Optional[str] = None
    worker_errors: Tuple[str, ...] = ()
    #: first few human-readable findings, for reports
    finding_lines: Tuple[str, ...] = ()
    logs: List[WorkerLog] = field(default_factory=list)
    #: online serializability audit of the run (``run_case(audit=True)``);
    #: a :class:`repro.audit.AuditReport`, or None when auditing was off
    audit: Optional[object] = None
    #: write-ahead log of the run (``run_case(wal=True)``); a
    #: :class:`repro.wal.WriteAheadLog` over an in-memory sink, or None
    #: when logging was off or the scheme declares ``durable=False``
    wal: Optional[object] = None

    @property
    def failed(self) -> bool:
        return self.kind != "ok"

    @property
    def signature(self) -> Tuple[str, Tuple[str, ...]]:
        """What must be preserved for a shrunk case to count as "the"
        failure: the failure kind and its rule codes."""
        return (self.kind, self.rule_codes)


def same_failure(
    result: FuzzCaseResult,
    signature: Tuple[str, Tuple[str, ...]],
) -> bool:
    """Does *result* reproduce *signature*?

    The kind must match; rule codes must overlap (or both be empty),
    so shrinking may drop incidental findings but never wander onto an
    unrelated failure.
    """
    kind, codes = signature
    if not result.failed or result.kind != kind:
        return False
    if not codes:
        return not result.rule_codes
    return bool(set(result.rule_codes) & set(codes))


def _worker_body(
    facade: ThreadSafeEngine,
    injector: FaultInjector,
    worker_id: int,
    programs,
    log: WorkerLog,
):
    def body():
        for program in programs:
            top = facade.begin_top()
            try:
                _run_program(
                    facade, injector, worker_id, top, program, log
                )
            except (TransactionAborted, InvalidTransactionState):
                # Wounded by an older transaction (the whole subtree is
                # already aborted); abandon this program.
                log.wounded += 1
            finally:
                if top.is_active:
                    top.abort()

    return body


def _run_program(facade, injector, worker_id, top, program, log):
    for step in program.steps:
        if injector.crash_now(worker_id):
            log.crashed += 1
            top.abort()
            return
        if isinstance(step, AccessStep):
            result = top.perform(step.object_name, step.operation)
            log.performed.append((step.object_name, result))
            continue
        assert isinstance(step, ChildBlock)
        child = top.begin_child()
        orphan_attempt = injector.orphan_now(worker_id)
        for access in step.steps:
            if injector.crash_now(worker_id):
                # A real crash does not wait for in-flight children to
                # return: abort the top while the child handle is
                # live, tearing the whole subtree down mid-block.
                # Without this draw, crashes only ever fired between
                # top-level steps and recovery's orphan handling went
                # untested.
                log.crashed += 1
                log.crashed_with_live_child += 1
                top.abort()
                return
            result = child.perform(
                access.object_name, access.operation
            )
            log.performed.append((access.object_name, result))
        if orphan_attempt:
            # Abort the whole top while the child handle is live, then
            # drive one more access through it: the orphan guard must
            # reject the access (were it granted, the trace would carry
            # an RW002 orphan access for the oracle to flag).
            top.abort()
            probe = step.steps[0]
            try:
                child.perform(probe.object_name, probe.operation)
            except (TransactionAborted, InvalidTransactionState):
                log.orphan_guard_hits += 1
            return
        if step.commit:
            child.commit()
        else:
            child.abort()
    if top.is_active:
        if program.commit:
            top.commit()
        else:
            top.abort()


def _digest(controller, lock_log, engine) -> str:
    hasher = hashlib.sha256()
    for decision in controller.decisions:
        hasher.update(("d%d;" % decision).encode())
    for event in controller.events:
        hasher.update(repr(event).encode())
    for entry in lock_log:
        hasher.update(repr(entry).encode())
    for event in engine.recorder.schedule():
        hasher.update(repr(event).encode())
    return hasher.hexdigest()


def run_case(
    config: FuzzConfig,
    choices: Optional[Sequence[int]] = None,
    strategy: Optional[SchedulingStrategy] = None,
    observer=None,
    trace_limit: Optional[int] = None,
    audit: bool = False,
    wal: bool = False,
) -> FuzzCaseResult:
    """Execute one fuzz case deterministically and judge it.

    Precedence for the interleaving: an explicit *strategy* wins, then
    a *choices* list (exact replay), then seeded random search.

    *observer* (a :class:`repro.obs.Observer`) attaches the tracing/
    metrics layer to the run, so a reproducer can ship with a span
    trace; *trace_limit* bounds the model-alphabet trace recorder
    (ring-buffer mode) for long runs.  *audit* adds the online
    serializability auditor as a fourth oracle: every top-level tree
    is audited (``sample_every=1`` -- an oracle must not sample, and
    the deliberately broken policies claim ``model_conformant``, so
    the capability dial would under-audit exactly the runs that need
    it most), a witnessed cycle fails the case with kind ``"audit"``
    when no stronger oracle fired first, and the report rides on
    :attr:`FuzzCaseResult.audit`.  *wal* attaches an in-memory
    write-ahead log (:mod:`repro.wal`) before the run and ships it on
    :attr:`FuzzCaseResult.wal` -- the crash-recovery harness truncates
    and recovers it; schemes declaring ``durable=False`` run without
    one (the field stays None).  None of the four affect the schedule,
    the other oracles, or the digest inputs.
    """
    if strategy is None:
        if choices is not None:
            strategy = ReplayStrategy(choices)
        else:
            strategy = RandomStrategy(config.seed)
    workload = config.workload()
    plan = config.plan()
    scheme = get_scheme(plan.scheme_for(config.scheme))
    auditor = None
    if audit:
        from repro.audit import AuditConfig, OnlineAuditor
        from repro.obs import AuditObserver

        auditor = OnlineAuditor(AuditConfig(sample_every=1))
        if observer is None:
            observer = AuditObserver()
        observer.attach_auditor(auditor)
    facade = ThreadSafeEngine(
        workload.store(),
        policy=scheme,
        trace=True,
        trace_limit=trace_limit,
        observer=observer,
    )
    wal_log = None
    if wal and facade.capabilities.durable:
        wal_log = facade.attach_wal()
    injector = FaultInjector(config.seed, plan, config.workers)
    controller = InterleavingController(strategy, injector=injector)
    facade.install_hooks(controller)
    lock_log: List[Tuple] = []
    locks = getattr(facade.engine, "locks", None)
    if locks is not None:
        locks.observer = (
            lambda kind, name, objects: lock_log.append(
                (kind, name, objects)
            )
        )
    logs = [WorkerLog() for _ in range(config.workers)]
    for worker_id in range(config.workers):
        programs = make_worker_programs(
            config.seed, worker_id, workload
        )
        controller.spawn(
            worker_id,
            _worker_body(
                facade, injector, worker_id, programs, logs[worker_id]
            ),
        )
    controller.run()

    digest = _digest(controller, lock_log, facade.engine)
    errors = {
        worker_id: exc
        for worker_id, exc in controller.worker_errors().items()
        if not isinstance(exc, FuzzStall)
    }
    kind = "ok"
    rule_codes: Tuple[str, ...] = ()
    finding_lines: Tuple[str, ...] = ()
    if controller.stalled:
        kind = "stall"
    elif errors:
        kind = "worker-exception"
    elif facade.engine.capabilities.model_conformant:
        from repro.checking import check_engine_trace

        report = check_engine_trace(facade.engine)
        if not report.ok:
            kind = "conformance"
            findings = report.diagnosis or ()
            rule_codes = tuple(
                sorted({f.rule.code for f in findings})
            )
            finding_lines = tuple(
                str(f) for f in list(findings)[:6]
            )
            if report.rejection:
                finding_lines = (
                    "replay: %s" % report.rejection,
                ) + finding_lines
    audit_report = None
    if auditor is not None:
        # The recorded model-alphabet trace is the reproducer artifact;
        # if its ring buffer dropped events, the shipped evidence no
        # longer covers the whole run -- report inconclusive rather
        # than a clean audit over unverifiable history.
        auditor.note_dropped_events(
            getattr(facade.engine.recorder, "dropped_events", 0)
        )
        audit_report = auditor.report()
        if kind == "ok" and audit_report.verdict == "violation":
            kind = "audit"
            findings = audit_report.to_analysis_report().findings
            rule_codes = tuple(
                sorted({f.rule.code for f in findings})
            )
            finding_lines = tuple(
                str(f) for f in findings[:6]
            )
    return FuzzCaseResult(
        config=config,
        choices=(
            list(choices)
            if choices is not None
            else list(controller.decisions)
        ),
        decisions=list(controller.decisions),
        kind=kind,
        rule_codes=rule_codes,
        digest=digest,
        trace_length=len(facade.engine.recorder.schedule()),
        decision_count=len(controller.decisions),
        stall_reason=controller.stall_reason,
        worker_errors=tuple(
            "worker %d: %r" % (worker_id, exc)
            for worker_id, exc in sorted(errors.items())
        ),
        finding_lines=finding_lines,
        logs=logs,
        audit=audit_report,
        wal=wal_log,
    )


@dataclass
class SearchResult:
    """Outcome of a fuzz search."""

    failure: Optional[FuzzCaseResult]
    attempts: int
    clean_digests: Tuple[str, ...] = ()


def fuzz_search(
    config: FuzzConfig, runs: int = 20, audit: bool = False
) -> SearchResult:
    """Run up to *runs* seeded cases; stop at the first failure.

    Attempt ``i`` runs with ``seed + i`` (workload, faults and
    scheduling all derive from it), so a reported failure is fully
    described by its own config and recorded choices.  *audit* turns
    on the serializability auditor-oracle for every case.
    """
    digests = []
    for attempt in range(runs):
        case_config = replace(config, seed=config.seed + attempt)
        result = run_case(case_config, audit=audit)
        if result.failed:
            return SearchResult(
                failure=result,
                attempts=attempt + 1,
                clean_digests=tuple(digests),
            )
        digests.append(result.digest)
    return SearchResult(
        failure=None, attempts=runs, clean_digests=tuple(digests)
    )


def explore_bounded(
    config: FuzzConfig,
    max_preemptions: int = 1,
    budget: int = 200,
    audit: bool = False,
) -> SearchResult:
    """CHESS-style bounded-preemption exploration.

    Runs the non-preemptive round-robin baseline, then every schedule
    obtained by inserting at most *max_preemptions* context switches
    (breadth-first over decision indices and switch targets), up to
    *budget* runs.  Returns at the first failure.  *audit* turns on
    the serializability auditor-oracle for every case.
    """
    attempts = 0
    digests = []

    def run_with(preemptions) -> FuzzCaseResult:
        return run_case(
            config,
            strategy=BoundedPreemptionStrategy(preemptions),
            audit=audit,
        )

    baseline = run_with({})
    attempts += 1
    if baseline.failed:
        return SearchResult(failure=baseline, attempts=attempts)
    digests.append(baseline.digest)
    depth = baseline.decision_count
    frontier: List[dict] = [{}]
    for _ in range(max_preemptions):
        next_frontier: List[dict] = []
        for base in frontier:
            start = max(base) + 1 if base else 0
            for index in range(start, depth):
                for offset in range(
                    max(1, config.workers - 1)
                ):
                    if attempts >= budget:
                        return SearchResult(
                            failure=None,
                            attempts=attempts,
                            clean_digests=tuple(digests),
                        )
                    preemptions = dict(base)
                    preemptions[index] = offset
                    result = run_with(preemptions)
                    attempts += 1
                    if result.failed:
                        return SearchResult(
                            failure=result, attempts=attempts
                        )
                    digests.append(result.digest)
                    next_frontier.append(preemptions)
        frontier = next_frontier
    return SearchResult(
        failure=None, attempts=attempts, clean_digests=tuple(digests)
    )


def emit_regression_test(result: FuzzCaseResult) -> str:
    """A paste-able pytest reproducing *result* exactly."""
    config = result.config
    codes = ", ".join(repr(code) for code in result.rule_codes)
    lines = [
        "def test_fuzz_regression_seed_%d():" % config.seed,
        '    """Minimal reproducer found by `python -m repro fuzz`;',
        "    replays deterministically from (seed, choices).\"\"\"",
        "    from repro.fuzz import FuzzConfig, run_case",
        "",
        "    config = FuzzConfig(",
        "        seed=%d," % config.seed,
        "        workers=%d," % config.workers,
        "        transactions_per_worker=%d,"
        % config.transactions_per_worker,
        "        steps_per_transaction=%d,"
        % config.steps_per_transaction,
        "        faults=%r," % config.faults,
        "        objects=%r," % (config.objects,),
        "        scheme=%r," % config.scheme,
        "    )",
        "    result = run_case(config, choices=%r)"
        % (result.choices,),
        "    assert result.failed",
        "    assert result.kind == %r" % result.kind,
    ]
    if codes:
        lines.append(
            "    assert set(result.rule_codes) & {%s}" % codes
        )
    lines.append(
        "    assert result.digest == %r" % result.digest
    )
    return "\n".join(lines) + "\n"
