"""Delta-debugging shrinker for failing choice lists.

Given a failing fuzz case ``(config, choices)``, the shrinker searches
for a shorter choice list that still reproduces the *same* failure
signature (kind + overlapping rule codes, see
:func:`repro.fuzz.runner.same_failure`).  Every candidate is judged by
actually re-running the case, so the shrinker needs no model of which
decisions mattered -- the replay fallback (decisions past the end of the
list pick the lowest runnable worker) keeps every candidate list
well-defined.

Three passes, in order:

1. **tail truncation** -- binary search for the shortest failing
   prefix (scheduling decisions after the bug manifests are noise);
2. **ddmin** -- Zeller's delta debugging over the remaining list, down
   to granularity 1: on exit no *single* remaining decision can be
   dropped without losing the failure (1-minimality w.r.t. deletion);
3. **value lowering** -- each surviving decision is nudged to the
   smallest worker id that keeps the failure, normalising reproducers.

The shrinker is deterministic and bounded by *max_evaluations* runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

from repro.fuzz.runner import (
    FuzzCaseResult,
    FuzzConfig,
    run_case,
    same_failure,
)


@dataclass
class ShrinkResult:
    """Outcome of shrinking one failing case."""

    original: FuzzCaseResult
    minimized: FuzzCaseResult
    evaluations: int

    @property
    def removed(self) -> int:
        return len(self.original.choices) - len(
            self.minimized.choices
        )


class _Budget:
    def __init__(self, limit: int):
        self.limit = limit
        self.used = 0

    def spend(self) -> bool:
        if self.used >= self.limit:
            return False
        self.used += 1
        return True


def _chunks(items: Sequence[int], n: int) -> List[List[int]]:
    """Split *items* into *n* roughly equal contiguous chunks."""
    size, extra = divmod(len(items), n)
    out: List[List[int]] = []
    start = 0
    for index in range(n):
        end = start + size + (1 if index < extra else 0)
        out.append(list(items[start:end]))
        start = end
    return [chunk for chunk in out if chunk]


def shrink_choices(
    config: FuzzConfig,
    failing: FuzzCaseResult,
    max_evaluations: int = 400,
) -> ShrinkResult:
    """Minimise *failing*'s choice list; returns the shrunk case."""
    signature = failing.signature
    budget = _Budget(max_evaluations)
    best = failing

    def try_choices(choices: Sequence[int]):
        """Run the candidate; returns its result if it still fails."""
        if not budget.spend():
            return None
        result = run_case(config, choices=list(choices))
        if same_failure(result, signature):
            return result
        return None

    best = _truncate_tail(best, try_choices)
    best = _ddmin(best, try_choices)
    best = _lower_values(best, try_choices)
    return ShrinkResult(
        original=failing, minimized=best, evaluations=budget.used
    )


def _truncate_tail(
    best: FuzzCaseResult,
    try_choices: Callable,
) -> FuzzCaseResult:
    """Binary-search the shortest failing prefix."""
    choices = best.choices
    low, high = 0, len(choices)  # invariant: prefix of `high` fails
    shortest = best
    while low < high:
        mid = (low + high) // 2
        result = try_choices(choices[:mid])
        if result is not None:
            shortest = result
            high = mid
        else:
            low = mid + 1
    return shortest


def _ddmin(
    best: FuzzCaseResult,
    try_choices: Callable,
) -> FuzzCaseResult:
    """Classic ddmin over the choice list."""
    items = list(best.choices)
    granularity = 2
    while len(items) >= 2:
        chunks = _chunks(items, granularity)
        reduced = False
        for index in range(len(chunks)):
            candidate: List[int] = []
            for other, chunk in enumerate(chunks):
                if other != index:
                    candidate.extend(chunk)
            result = try_choices(candidate)
            if result is not None:
                items = candidate
                best = result
                granularity = max(granularity - 1, 2)
                reduced = True
                break
        if not reduced:
            if granularity >= len(items):
                break
            granularity = min(len(items), granularity * 2)
    return best


def _lower_values(
    best: FuzzCaseResult,
    try_choices: Callable,
) -> FuzzCaseResult:
    """Replace each decision with the lowest worker id that still
    reproduces the failure (canonicalises the reproducer)."""
    items = list(best.choices)
    for index in range(len(items)):
        for lower in range(items[index]):
            candidate = list(items)
            candidate[index] = lower
            result = try_choices(candidate)
            if result is not None:
                items = candidate
                best = result
                break
    return best


def minimized_signature(shrunk: ShrinkResult) -> Tuple:
    """The (kind, rule codes) the minimal reproducer exhibits."""
    return shrunk.minimized.signature
