"""Seeded fault injection for fuzz runs.

Extends the seeded-violation idea of :mod:`repro.analysis.faults` from
*policies* to *run-time events*.  Every fault decision is drawn from a
per-worker RNG stream seeded by ``(seed, worker_id)`` and consumed in
worker-local program order, so fault placement is invariant under
re-scheduling -- shrinking the interleaving does not reshuffle faults.

Fault modes (composable; presets below):

* ``crash``       -- a worker abruptly aborts its live top-level
  mid-program ("process crash" without the process);
* ``deny-spike``  -- lock acquisitions are spuriously denied,
  stressing the retry/park paths and the wound-wait logic;
* ``orphan``      -- a worker aborts its top-level while holding a live
  child handle, then drives one more access through that handle: the
  engine's orphan guard must reject it (a trace showing the access
  would be an RW002);
* ``broken-no-inherit`` -- the engine runs
  :class:`~repro.analysis.faults.NoInheritPolicy`, a genuine Moss-rule
  violation for the oracle to find;
* message delay/drop for :mod:`repro.dist` lives in
  :class:`repro.dist.runner.MessageFaults` and shares the seeding
  discipline.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Union

from repro.analysis.faults import NoInheritPolicy
from repro.engine.policies import LockingPolicy


@dataclass(frozen=True)
class FaultPlan:
    """Probabilities for each run-time fault, plus the engine policy."""

    crash_rate: float = 0.0
    deny_rate: float = 0.0
    orphan_rate: float = 0.0
    policy: str = "moss-rw"

    def make_policy(self) -> Union[str, LockingPolicy]:
        if self.policy == NoInheritPolicy.name:
            return NoInheritPolicy()
        return self.policy

    def scheme_for(
        self, requested: str = "moss-rw"
    ) -> Union[str, LockingPolicy]:
        """The scheme selector this plan runs *requested* under.

        A fault-injected policy (e.g. ``broken-no-inherit``) overrides
        the requested scheme -- the whole point of the preset is to run
        a broken engine; otherwise the requested scheme wins.  The
        return value feeds :func:`repro.kernel.get_scheme`.
        """
        if self.policy == NoInheritPolicy.name:
            return NoInheritPolicy()
        if self.policy != "moss-rw":
            return self.policy
        return requested

    @property
    def label(self) -> str:
        parts = []
        if self.crash_rate:
            parts.append("crash=%.2f" % self.crash_rate)
        if self.deny_rate:
            parts.append("deny=%.2f" % self.deny_rate)
        if self.orphan_rate:
            parts.append("orphan=%.2f" % self.orphan_rate)
        if self.policy != "moss-rw":
            parts.append("policy=%s" % self.policy)
        return ", ".join(parts) if parts else "none"


#: Named presets accepted by ``python -m repro fuzz --faults``.
FAULT_PRESETS: Dict[str, FaultPlan] = {
    "none": FaultPlan(),
    "crash": FaultPlan(crash_rate=0.1),
    "deny-spike": FaultPlan(deny_rate=0.2),
    "orphan": FaultPlan(orphan_rate=0.15),
    "broken-no-inherit": FaultPlan(policy=NoInheritPolicy.name),
    "chaos": FaultPlan(
        crash_rate=0.05, deny_rate=0.1, orphan_rate=0.05
    ),
}


def fault_plan(name: str) -> FaultPlan:
    """Look up a preset by name (raising ``KeyError`` with the menu)."""
    try:
        return FAULT_PRESETS[name]
    except KeyError:
        raise KeyError(
            "unknown fault preset %r (choose from %s)"
            % (name, ", ".join(sorted(FAULT_PRESETS)))
        ) from None


class FaultInjector:
    """Draws per-worker seeded fault decisions.

    One RNG stream per worker, consumed in that worker's program order;
    the controller serialises workers, so each stream's consumption
    order is deterministic regardless of the interleaving.
    """

    def __init__(self, seed: int, plan: FaultPlan, workers: int):
        self.plan = plan
        self._rngs = {
            worker_id: random.Random(
                (seed * 7_368_787) + worker_id + 1
            )
            for worker_id in range(workers)
        }

    def crash_now(self, worker_id: int) -> bool:
        """Should this worker crash-abort its live top-level now?"""
        if self.plan.crash_rate <= 0.0:
            return False
        return self._rngs[worker_id].random() < self.plan.crash_rate

    def deny_now(self, worker_id: int, object_name: str) -> bool:
        """Should this acquire be spuriously denied?"""
        if self.plan.deny_rate <= 0.0:
            return False
        return self._rngs[worker_id].random() < self.plan.deny_rate

    def orphan_now(self, worker_id: int) -> bool:
        """Should this worker try to create an orphan access now?"""
        if self.plan.orphan_rate <= 0.0:
            return False
        return self._rngs[worker_id].random() < self.plan.orphan_rate
