"""A bank account object with balance-protecting withdrawals."""

from __future__ import annotations

from typing import Any, Sequence, Tuple

from repro.core.object_spec import ObjectSpec, Operation
from repro.errors import ReproError


class BankAccount(ObjectSpec):
    """An account balance (integer cents).

    Operations: ``deposit(n)`` and ``withdraw(n)`` (write accesses;
    ``withdraw`` returns True and debits only when funds suffice, else
    returns False and leaves the balance alone) and ``balance()`` (a read
    access).  The conditional withdraw is exactly the pattern nested
    transactions are motivated by: a parent transfer can abort one leg
    independently.
    """

    def __init__(self, name: str, initial: int = 0):
        super().__init__(name)
        self._initial = int(initial)

    @staticmethod
    def deposit(amount: int) -> Operation:
        """A write access crediting *amount*; returns the new balance."""
        return Operation("deposit", (int(amount),), is_read=False)

    @staticmethod
    def withdraw(amount: int) -> Operation:
        """A write access debiting *amount* if covered; returns success."""
        return Operation("withdraw", (int(amount),), is_read=False)

    @staticmethod
    def balance() -> Operation:
        """A read access returning the balance."""
        return Operation("balance", (), is_read=True)

    def initial_value(self) -> int:
        return self._initial

    @staticmethod
    def credit(amount: int) -> Operation:
        """An *effect-only* deposit: credits *amount*, returns None.

        Two credits commute in both state and observation, so they are
        non-conflicting under semantic locking (deposit returns the new
        balance and keeps Moss' rule).
        """
        return Operation("credit", (int(amount),), is_read=False)

    def apply(self, value: int, operation: Operation) -> Tuple[Any, int]:
        if operation.kind == "credit":
            return None, value + operation.args[0]
        if operation.kind == "deposit":
            new_value = value + operation.args[0]
            return new_value, new_value
        if operation.kind == "withdraw":
            amount = operation.args[0]
            if amount <= value:
                return True, value - amount
            return False, value
        if operation.kind == "balance":
            return value, value
        raise ReproError(
            "%r: unknown operation %s" % (self.name, operation)
        )

    def example_operations(self) -> Sequence[Operation]:
        return (
            self.deposit(100),
            self.withdraw(40),
            self.withdraw(10 ** 9),
            self.balance(),
        )

    # -- semantic locking: credits commute with credits -------------------
    def conflicts(self, a: Operation, b: Operation) -> bool:
        if a.kind == "credit" and b.kind == "credit":
            return False
        return super().conflicts(a, b)

    def inverse(self, operation: Operation, result):
        if operation.kind == "credit":
            return Operation(
                "credit", (-operation.args[0],), is_read=False
            )
        if operation.kind == "deposit":
            return Operation(
                "credit", (-operation.args[0],), is_read=False
            )
        if operation.kind == "withdraw":
            if result:
                return self.credit(operation.args[0])
            return None
        return super().inverse(operation, result)

    def example_values(self) -> Sequence[int]:
        return (0, 100, 12345)
