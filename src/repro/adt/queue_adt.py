"""A FIFO queue object."""

from __future__ import annotations

from typing import Any, Sequence, Tuple

from repro.core.object_spec import ObjectSpec, Operation
from repro.errors import ReproError


class FifoQueue(ObjectSpec):
    """A first-in-first-out queue, represented as a tuple.

    Operations: ``enqueue(e)`` and ``dequeue()`` (write accesses;
    ``dequeue`` returns the removed head or None when empty), ``peek()``
    and ``length()`` (read accesses).
    """

    def __init__(self, name: str, initial: Sequence[Any] = ()):
        super().__init__(name)
        self._initial: Tuple[Any, ...] = tuple(initial)

    @staticmethod
    def enqueue(element: Any) -> Operation:
        """A write access appending *element*; returns the new length."""
        return Operation("enqueue", (element,), is_read=False)

    @staticmethod
    def dequeue() -> Operation:
        """A write access removing the head; returns it (None if empty)."""
        return Operation("dequeue", (), is_read=False)

    @staticmethod
    def peek() -> Operation:
        """A read access returning the head without removing it."""
        return Operation("peek", (), is_read=True)

    @staticmethod
    def length() -> Operation:
        """A read access returning the queue length."""
        return Operation("length", (), is_read=True)

    def initial_value(self) -> Tuple[Any, ...]:
        return self._initial

    def apply(
        self, value: Tuple[Any, ...], operation: Operation
    ) -> Tuple[Any, Tuple[Any, ...]]:
        if operation.kind == "enqueue":
            new_value = value + (operation.args[0],)
            return len(new_value), new_value
        if operation.kind == "dequeue":
            if not value:
                return None, value
            return value[0], value[1:]
        if operation.kind == "peek":
            return (value[0] if value else None), value
        if operation.kind == "length":
            return len(value), value
        raise ReproError(
            "%r: unknown operation %s" % (self.name, operation)
        )

    def example_operations(self) -> Sequence[Operation]:
        return (self.enqueue("job"), self.dequeue(), self.peek(),
                self.length())

    def example_values(self) -> Sequence[Tuple[Any, ...]]:
        return ((), ("a",), ("a", "b", "c"))
