"""A mathematical set object."""

from __future__ import annotations

from typing import Any, FrozenSet, Sequence, Tuple

from repro.core.object_spec import ObjectSpec, Operation
from repro.errors import ReproError


class SetObject(ObjectSpec):
    """A set of hashable elements, represented as a frozenset.

    Operations: ``insert(e)`` and ``remove(e)`` (write accesses returning
    whether the set changed), ``contains(e)`` and ``size()`` (read
    accesses).
    """

    def __init__(self, name: str, initial: Sequence[Any] = ()):
        super().__init__(name)
        self._initial: FrozenSet[Any] = frozenset(initial)

    @staticmethod
    def insert(element: Any) -> Operation:
        """A write access adding *element*; returns True if it was new."""
        return Operation("insert", (element,), is_read=False)

    @staticmethod
    def remove(element: Any) -> Operation:
        """A write access removing *element*; returns True if present."""
        return Operation("remove", (element,), is_read=False)

    @staticmethod
    def contains(element: Any) -> Operation:
        """A read access testing membership of *element*."""
        return Operation("contains", (element,), is_read=True)

    @staticmethod
    def size() -> Operation:
        """A read access returning the cardinality."""
        return Operation("size", (), is_read=True)

    def initial_value(self) -> FrozenSet[Any]:
        return self._initial

    def apply(
        self, value: FrozenSet[Any], operation: Operation
    ) -> Tuple[Any, FrozenSet[Any]]:
        if operation.kind == "insert":
            element = operation.args[0]
            changed = element not in value
            return changed, value | {element}
        if operation.kind == "remove":
            element = operation.args[0]
            changed = element in value
            return changed, value - {element}
        if operation.kind == "contains":
            return operation.args[0] in value, value
        if operation.kind == "size":
            return len(value), value
        raise ReproError(
            "%r: unknown operation %s" % (self.name, operation)
        )

    def example_operations(self) -> Sequence[Operation]:
        return (
            self.insert("a"),
            self.remove("a"),
            self.contains("a"),
            self.size(),
        )

    def example_values(self) -> Sequence[FrozenSet[Any]]:
        return (frozenset(), frozenset({"a"}), frozenset({"a", "b", 3}))

    # -- semantic locking: operations on distinct elements commute -------
    def conflicts(self, a: Operation, b: Operation) -> bool:
        element_ops = {"insert", "remove", "contains"}
        if a.kind in element_ops and b.kind in element_ops:
            if a.args[0] != b.args[0]:
                # Different elements: state and return values are both
                # unaffected by order.
                return False
        return super().conflicts(a, b)

    def inverse(self, operation: Operation, result):
        if operation.kind == "insert":
            if result:  # the element was new: undo removes it
                return self.remove(operation.args[0])
            return None
        if operation.kind == "remove":
            if result:  # the element was present: undo restores it
                return self.insert(operation.args[0])
            return None
        return super().inverse(operation, result)
