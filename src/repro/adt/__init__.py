"""Abstract data types used as shared-object states.

Each class is an :class:`~repro.core.object_spec.ObjectSpec` with a pure,
deterministic ``apply`` and read/write-classified operations, matching the
paper's Section 4.3 semantic conditions (read accesses are transparent).
Operation constructors are provided as static methods, e.g.
``IntRegister.read()`` / ``IntRegister.write(5)``.
"""

from repro.adt.register import IntRegister, Register
from repro.adt.counter import Counter
from repro.adt.set_adt import SetObject
from repro.adt.queue_adt import FifoQueue
from repro.adt.bank_account import BankAccount
from repro.adt.kvmap import KVMap

__all__ = [
    "BankAccount",
    "Counter",
    "FifoQueue",
    "IntRegister",
    "KVMap",
    "Register",
    "SetObject",
]
