"""Read/write registers: the canonical lock-granularity object."""

from __future__ import annotations

from typing import Any, Sequence, Tuple

from repro.core.object_spec import ObjectSpec, Operation
from repro.errors import ReproError


class Register(ObjectSpec):
    """A single-value register holding any hashable value.

    Operations: ``read()`` (a read access returning the current value) and
    ``write(v)`` (a write access storing v and returning the *old* value,
    so writes are observable in traces).
    """

    def __init__(self, name: str, initial: Any = None):
        super().__init__(name)
        self._initial = initial

    @staticmethod
    def read() -> Operation:
        """A read access returning the register's value."""
        return Operation("read", (), is_read=True)

    @staticmethod
    def write(value: Any) -> Operation:
        """A write access storing *value*; returns the previous value."""
        return Operation("write", (value,), is_read=False)

    def initial_value(self) -> Any:
        return self._initial

    def apply(self, value: Any, operation: Operation) -> Tuple[Any, Any]:
        if operation.kind == "read":
            return value, value
        if operation.kind == "write":
            return value, operation.args[0]
        raise ReproError(
            "%r: unknown operation %s" % (self.name, operation)
        )

    def example_operations(self) -> Sequence[Operation]:
        return (self.read(), self.write(self._initial), self.write(object))

    def example_values(self) -> Sequence[Any]:
        return (self._initial, 0, "text", (1, 2))

    def inverse(self, operation: Operation, result: Any):
        """Writes return the displaced value, which is exactly the undo."""
        if operation.kind == "write":
            return self.write(result)
        return super().inverse(operation, result)


class IntRegister(Register):
    """A register constrained to integers, initialised to 0.

    Adds ``add(n)``: a write access incrementing the register and returning
    the new value -- handy for building counters at register granularity.
    """

    def __init__(self, name: str, initial: int = 0):
        super().__init__(name, initial=int(initial))

    @staticmethod
    def add(amount: int) -> Operation:
        """A write access adding *amount*; returns the new value."""
        return Operation("add", (int(amount),), is_read=False)

    def apply(self, value: int, operation: Operation) -> Tuple[Any, int]:
        if operation.kind == "add":
            new_value = value + operation.args[0]
            return new_value, new_value
        if operation.kind == "write":
            return value, int(operation.args[0])
        return super().apply(value, operation)

    def example_operations(self) -> Sequence[Operation]:
        return (self.read(), self.write(7), self.add(3), self.add(-2))

    def example_values(self) -> Sequence[Any]:
        return (0, 1, -5, 100)

    def inverse(self, operation: Operation, result: Any):
        if operation.kind == "add":
            return self.add(-operation.args[0])
        return super().inverse(operation, result)
