"""A key-value map object."""

from __future__ import annotations

from typing import Any, Dict, Sequence, Tuple

from repro.core.object_spec import ObjectSpec, Operation


def _freeze(mapping: Dict[Any, Any]) -> Tuple[Tuple[Any, Any], ...]:
    return tuple(sorted(mapping.items(), key=repr))


class KVMap(ObjectSpec):
    """A map from hashable keys to values.

    Values are stored canonically as a sorted tuple of pairs so that two
    maps with equal contents compare equal regardless of insertion order.

    Operations: ``put(k, v)`` and ``delete(k)`` (write accesses returning
    the displaced value), ``get(k)`` and ``keys()`` (read accesses).
    """

    def __init__(self, name: str, initial: Dict[Any, Any] = None):
        super().__init__(name)
        self._initial = _freeze(dict(initial or {}))

    @staticmethod
    def put(key: Any, value: Any) -> Operation:
        """A write access binding *key* to *value*; returns the old value."""
        return Operation("put", (key, value), is_read=False)

    @staticmethod
    def delete(key: Any) -> Operation:
        """A write access unbinding *key*; returns the old value."""
        return Operation("delete", (key,), is_read=False)

    @staticmethod
    def get(key: Any) -> Operation:
        """A read access returning the value bound to *key* (or None)."""
        return Operation("get", (key,), is_read=True)

    @staticmethod
    def keys() -> Operation:
        """A read access returning the sorted tuple of keys."""
        return Operation("keys", (), is_read=True)

    def initial_value(self) -> Tuple[Tuple[Any, Any], ...]:
        return self._initial

    def apply(self, value, operation: Operation):
        mapping = dict(value)
        if operation.kind == "put":
            key, new = operation.args
            old = mapping.get(key)
            mapping[key] = new
            return old, _freeze(mapping)
        if operation.kind == "delete":
            key = operation.args[0]
            old = mapping.pop(key, None)
            return old, _freeze(mapping)
        if operation.kind == "get":
            return mapping.get(operation.args[0]), value
        if operation.kind == "keys":
            return tuple(sorted(mapping, key=repr)), value
        raise ValueError(
            "%r: unknown operation %s" % (self.name, operation)
        )

    def example_operations(self) -> Sequence[Operation]:
        return (
            self.put("k", 1),
            self.delete("k"),
            self.get("k"),
            self.keys(),
        )

    def example_values(self) -> Sequence[Any]:
        return (
            _freeze({}),
            _freeze({"k": 1}),
            _freeze({"a": 1, "b": 2}),
        )
