"""A commutative counter."""

from __future__ import annotations

from typing import Any, Sequence, Tuple

from repro.core.object_spec import ObjectSpec, Operation
from repro.errors import ReproError


class Counter(ObjectSpec):
    """An integer counter.

    Operations: ``increment(n)`` / ``decrement(n)`` (write accesses
    returning the resulting total) and ``value()`` (a read access).
    Increments commute, which makes counters a good stress case for
    distinguishing *conflict*-based locking (Moss treats all writes as
    conflicting) from what a semantics-aware scheme could allow -- the
    paper's closing remark about designating accesses.
    """

    def __init__(self, name: str, initial: int = 0):
        super().__init__(name)
        self._initial = int(initial)

    @staticmethod
    def increment(amount: int = 1) -> Operation:
        """A write access adding *amount*; returns the new total."""
        return Operation("increment", (int(amount),), is_read=False)

    @staticmethod
    def decrement(amount: int = 1) -> Operation:
        """A write access subtracting *amount*; returns the new total."""
        return Operation("decrement", (int(amount),), is_read=False)

    @staticmethod
    def value() -> Operation:
        """A read access returning the current total."""
        return Operation("value", (), is_read=True)

    def initial_value(self) -> int:
        return self._initial

    def apply(self, value: int, operation: Operation) -> Tuple[Any, int]:
        if operation.kind == "bump":
            return None, value + operation.args[0]
        if operation.kind == "increment":
            new_value = value + operation.args[0]
            return new_value, new_value
        if operation.kind == "decrement":
            new_value = value - operation.args[0]
            return new_value, new_value
        if operation.kind == "value":
            return value, value
        raise ReproError(
            "%r: unknown operation %s" % (self.name, operation)
        )

    def example_operations(self) -> Sequence[Operation]:
        return (
            self.increment(1),
            self.increment(10),
            self.decrement(4),
            self.value(),
        )

    def example_values(self) -> Sequence[int]:
        return (0, 3, -7)

    # -- semantic locking ------------------------------------------------
    @staticmethod
    def bump(amount: int = 1) -> Operation:
        """An *effect-only* increment: adds *amount*, returns None.

        Because it returns nothing, two bumps commute in both state and
        observation, which is what makes them safely non-conflicting
        under semantic locking (increment/decrement return running
        totals and therefore keep Moss' conflict rule).
        """
        return Operation("bump", (int(amount),), is_read=False)

    def conflicts(self, a: Operation, b: Operation) -> bool:
        if a.kind == "bump" and b.kind == "bump":
            return False
        return super().conflicts(a, b)

    def inverse(self, operation: Operation, result):
        if operation.kind == "bump":
            return Operation("bump", (-operation.args[0],), is_read=False)
        if operation.kind == "increment":
            return self.decrement(operation.args[0])
        if operation.kind == "decrement":
            return self.increment(operation.args[0])
        return super().inverse(operation, result)
