"""Command-line interface: ``python -m repro <command>``.

One command per way of exercising the reproduction:

* ``validate``     -- run the Theorem 34 statistical harness.
* ``explore``      -- exhaustively check a micro system type.
* ``sweep``        -- the policy x read-fraction simulation sweep (E9).
* ``conformance``  -- drive a random engine workload and replay its trace
  against the formal model.
* ``analyze``      -- drive a random engine workload and run the schedule
  linter + race detector over its trace (``--policy broken-no-inherit``
  seeds a deliberate violation).
* ``lint``         -- AST code lint of the repo's own lock-discipline
  invariants (``CD001``...).
* ``fuzz``         -- deterministic concurrency fuzzing: explore thread
  interleavings of the blocking engine under seeded fault injection,
  shrink failures to minimal replayable reproducers.
* ``trace``        -- run an observed workload and export a Chrome
  trace-event file (``chrome://tracing`` / Perfetto) plus a text report.
* ``audit``        -- replay a recorded JSONL event stream through the
  online serializability auditor and print the witness-cycle report.
* ``recover``      -- replay a write-ahead log and print the
  crash-recovery report (exit 0 complete, 1 partial, 4 inconclusive).
* ``serve``        -- run the async transaction service front-end
  (``repro.serve``) until interrupted; exit codes mirror ``audit``
  when ``--audit`` is attached (0 clean, 1 violation, 4 inconclusive).
* ``loadgen``      -- drive a running service with the open-loop
  Poisson or closed-loop generator (or a declarative scenario via
  ``--scenario``) and print latency percentiles.
* ``scenario``     -- declarative workloads: list the bundled library,
  validate TOML specs, or compile-and-run one spec across backends
  and schemes (league table).
* ``top``          -- run a contended simulation and print the
  hot-object lock-contention table.
* ``orphan``       -- print the orphan-inconsistency witness (E15).
* ``dist``         -- distributed deployment sweep.

Every command takes ``--seed`` and prints a deterministic report, so CLI
runs are as reproducible as the test suite.
"""

from __future__ import annotations

import argparse
import random
import sys
from typing import Optional, Sequence


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.checking import validate_random_schedules

    total_violations = 0
    for system_seed in range(args.systems):
        stats = validate_random_schedules(
            system_seed=args.seed + system_seed,
            schedules=args.schedules,
            max_steps=args.steps,
            seed=args.seed + system_seed + 1,
        )
        total_violations += stats.violations
        print(
            "system %2d: %3d schedules, %5d events, %3d transactions "
            "checked, %d violations"
            % (
                system_seed,
                stats.schedules,
                stats.events,
                stats.transactions_checked,
                stats.violations,
            )
        )
        for failure in stats.failures[:3]:
            print("  ! %s" % failure)
    print(
        "Theorem 34: %s"
        % ("HOLDS on every schedule" if total_violations == 0
           else "%d VIOLATIONS" % total_violations)
    )
    return 0 if total_violations == 0 else 1


def _cmd_explore(args: argparse.Namespace) -> int:
    from repro.adt import IntRegister
    from repro.core import (
        ROOT,
        RWLockingSystem,
        SystemTypeBuilder,
        check_serial_correctness,
    )
    from repro.ioa import explore_exhaustive

    builder = SystemTypeBuilder()
    builder.add_object(IntRegister("x"))
    writer = builder.add_child(ROOT)
    builder.add_access(writer, "x", IntRegister.write(1))
    reader = builder.add_child(ROOT)
    builder.add_access(reader, "x", IntRegister.read())
    system_type = builder.build()
    system = RWLockingSystem(system_type)
    result = explore_exhaustive(
        system,
        max_depth=args.depth,
        max_schedules=args.cap,
        collect_all=False,
    )
    violations = 0
    for alpha in result.maximal_schedules:
        if not check_serial_correctness(system, alpha).ok:
            violations += 1
    print(
        "exhaustive: %d maximal schedules (depth <= %d%s), %d violations"
        % (
            len(result.maximal_schedules),
            args.depth,
            ", truncated" if result.truncated else "",
            violations,
        )
    )
    return 0 if violations == 0 else 1


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.sim import (
        SimulationConfig,
        WorkloadConfig,
        make_store,
        make_workload,
        run_simulation,
    )

    policies = args.policies.split(",")
    header = (
        "read%", "policy", "committed", "throughput", "mean_lat",
        "p95_lat", "aborts",
    )
    print("  ".join("%-10s" % column for column in header))
    for read_fraction in (0.0, 0.25, 0.5, 0.75, 0.95):
        config = WorkloadConfig(
            programs=args.programs,
            objects=args.objects,
            read_fraction=read_fraction,
            zipf_skew=args.skew,
            depth=2,
            fanout=2,
            accesses_per_block=2,
        )
        programs = make_workload(args.seed, config)
        store = make_store(config)
        for policy in policies:
            metrics = run_simulation(
                programs,
                store,
                SimulationConfig(
                    mpl=args.mpl, policy=policy, seed=args.seed
                ),
            )
            row = (
                "%.2f" % read_fraction,
                policy,
                str(metrics.committed),
                "%.3f" % metrics.throughput,
                "%.2f" % metrics.mean_latency,
                "%.2f" % metrics.p95_latency,
                str(metrics.deadlock_aborts),
            )
            print("  ".join("%-10s" % cell for cell in row))
    return 0


def _drive_random_workload(
    seed: int,
    transactions: int,
    operations: int,
    policy="moss-rw",
):
    """Drive one random nested workload; return the traced engine."""
    from repro.adt import Counter, IntRegister
    from repro.errors import LockDenied
    from repro.kernel import get_scheme

    rng = random.Random(seed)
    engine = get_scheme(policy).build(
        [Counter("c"), IntRegister("x")], trace=True
    )
    tops = [engine.begin_top() for _ in range(transactions)]
    menu = [
        ("c", Counter.increment(1)),
        ("c", Counter.value()),
        ("x", IntRegister.add(2)),
        ("x", IntRegister.read()),
    ]
    live = {top.name: top for top in tops}
    for _ in range(operations):
        if not live:
            break
        txn = rng.choice(list(live.values()))
        roll = rng.random()
        if roll < 0.6:
            try:
                txn.perform(*rng.choice(menu))
            except LockDenied:
                pass
        elif roll < 0.8:
            child = txn.begin_child()
            try:
                child.perform(*rng.choice(menu))
            except LockDenied:
                pass
            if rng.random() < 0.5:
                child.commit()
            else:
                child.abort()
        elif roll < 0.9 and not txn.live_children():
            txn.commit()
            del live[txn.name]
        else:
            txn.abort()
            del live[txn.name]
    for txn in list(live.values()):
        for child in txn.live_children():
            child.abort()
        txn.commit()
    return engine


def _cmd_conformance(args: argparse.Namespace) -> int:
    from repro.checking import check_engine_trace

    engine = _drive_random_workload(
        args.seed, args.transactions, args.operations
    )
    report = check_engine_trace(engine)
    print("trace length : %d events" % report.trace_length)
    print("refinement   : %s" % report.refinement_ok)
    if report.rejection:
        print("  rejected: %s" % report.rejection)
    if report.correctness is not None:
        print("theorem 34   : %s" % bool(report.correctness))
    print("conformance  : %s" % ("OK" if report.ok else "FAILED"))
    if report.diagnosis:
        print("diagnosis    : %d finding(s)" % len(report.diagnosis))
        for finding in report.diagnosis:
            print("  %s" % finding)
    return 0 if report.ok else 1


def _resolve_analysis_policy(name: str):
    if name == "broken-no-inherit":
        from repro.analysis.faults import NoInheritPolicy

        return NoInheritPolicy()
    return name


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.analysis import analyze_engine, render_json, render_text

    engine = _drive_random_workload(
        args.seed,
        args.transactions,
        args.operations,
        policy=_resolve_analysis_policy(args.policy),
    )
    schedule_report, race_report = analyze_engine(engine)
    reports = [schedule_report, race_report]
    if args.json:
        print(render_json(reports))
    else:
        print(
            "policy %s, seed %d: %d events"
            % (
                engine.scheme_name,
                args.seed,
                len(engine.recorder.schedule()),
            )
        )
        print(render_text(reports, verbose=args.verbose))
    clean = schedule_report.ok and race_report.ok
    return 0 if clean else 1


def _cmd_lint(args: argparse.Namespace) -> int:
    import os

    from repro.analysis import (
        all_rules,
        lint_paths,
        render_json,
        render_rule_catalogue,
        render_text,
    )

    if args.list_rules:
        # The SER rules live in repro.audit and register on import;
        # pull them in so the catalogue is complete.
        import repro.audit  # noqa: F401

        print(render_rule_catalogue(all_rules()))
        return 0
    paths = args.paths
    if not paths:
        paths = [os.path.dirname(os.path.abspath(__file__))]
    try:
        report = lint_paths(paths)
    except FileNotFoundError as exc:
        print("repro lint: %s" % exc, file=sys.stderr)
        return 2
    if args.json:
        print(render_json([report]))
    else:
        print(render_text([report], verbose=args.verbose))
    return 0 if report.ok else 1


def _parse_choices(text: Optional[str]):
    if text is None:
        return None
    text = text.strip()
    if not text:
        return []
    return [int(part) for part in text.split(",")]


def _export_fuzz_trace(result, path: str) -> None:
    """Replay *result* with the observability layer and export a trace.

    Replays are byte-for-byte deterministic from ``(config, choices)``,
    so the exported spans show exactly the failing interleaving -- one
    track per worker thread.
    """
    from repro.fuzz import run_case
    from repro.obs import Observer, render_report, write_chrome_trace

    observer = Observer()
    run_case(result.config, choices=result.choices, observer=observer)
    observer.finish()
    write_chrome_trace(path, observer)
    report_path = path + ".report.txt"
    with open(report_path, "w") as handle:
        handle.write(render_report(observer))
        handle.write("\n")
    print("trace  : %s (+ %s)" % (path, report_path))


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.fuzz import (
        FuzzConfig,
        emit_regression_test,
        explore_bounded,
        fuzz_search,
        run_case,
        shrink_choices,
    )

    config = FuzzConfig(
        seed=args.seed,
        workers=args.workers,
        transactions_per_worker=args.transactions,
        steps_per_transaction=args.steps,
        faults=args.faults,
        scheme=args.scheme,
    )
    choices = _parse_choices(args.choices)
    if choices is not None:
        # Exact replay of one case.
        result = run_case(config, choices=choices, audit=args.audit)
        print(
            "replay seed %d, %d choices: %s"
            % (config.seed, len(choices), result.kind)
        )
        print("digest  : %s" % result.digest)
        print("trace   : %d events, %d decisions"
              % (result.trace_length, result.decision_count))
        for line in result.finding_lines:
            print("  %s" % line)
        if args.audit and result.audit is not None:
            print("audit   : %s" % result.audit.verdict)
        if args.trace_out:
            _export_fuzz_trace(result, args.trace_out)
        return 1 if result.failed else 0

    if args.mode == "bounded":
        search = explore_bounded(
            config,
            max_preemptions=args.preemptions,
            budget=args.runs,
            audit=args.audit,
        )
    else:
        search = fuzz_search(config, runs=args.runs, audit=args.audit)
    print(
        "fuzz: %d run(s), faults=%s, mode=%s"
        % (search.attempts, args.faults, args.mode)
    )
    failure = search.failure
    if failure is None:
        print("no violation found (all runs conformant)")
        return 0

    print(
        "VIOLATION (%s) at seed %d after %d run(s): rules %s"
        % (
            failure.kind,
            failure.config.seed,
            search.attempts,
            ", ".join(failure.rule_codes) or "-",
        )
    )
    for line in failure.finding_lines:
        print("  %s" % line)
    if failure.audit is not None and failure.audit.violations:
        for violation in failure.audit.violations:
            for line in violation.describe().splitlines():
                print("  %s" % line)
    reproducer = failure
    if args.shrink:
        shrunk = shrink_choices(failure.config, failure)
        reproducer = shrunk.minimized
        print(
            "shrink: %d -> %d choices in %d evaluation(s)"
            % (
                len(failure.choices),
                len(reproducer.choices),
                shrunk.evaluations,
            )
        )
    choice_text = ",".join(str(c) for c in reproducer.choices)
    print("digest : %s" % reproducer.digest)
    if args.trace_out:
        # The reproducer ships with its span trace: replay it once
        # more with the observer attached and export the trace file.
        _export_fuzz_trace(reproducer, args.trace_out)
    print(
        "replay : python -m repro fuzz --seed %d --faults %s "
        "--scheme %s --workers %d --transactions %d --steps %d "
        "--choices '%s'"
        % (
            reproducer.config.seed,
            args.faults,
            config.scheme,
            config.workers,
            config.transactions_per_worker,
            config.steps_per_transaction,
            choice_text,
        )
    )
    print("--- regression test ---")
    print(emit_regression_test(reproducer))
    return 1


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs import (
        Observer,
        render_report,
        write_chrome_trace,
        write_jsonl,
    )
    from repro.obs.workloads import run_workload

    observer = Observer()
    auditor = None
    if args.audit:
        from repro.audit import AuditConfig, OnlineAuditor

        auditor = OnlineAuditor(AuditConfig(sample_every=1))
        observer.attach_auditor(auditor)
    try:
        summary = run_workload(args.workload, observer, seed=args.seed)
    except ValueError as exc:
        print("repro trace: %s" % exc, file=sys.stderr)
        return 2
    print(
        "workload %s (seed %d): %s"
        % (
            args.workload,
            args.seed,
            ", ".join(
                "%s=%s" % (key, value)
                for key, value in sorted(summary.items())
            ),
        )
    )
    if args.out:
        write_chrome_trace(args.out, observer)
        print("chrome trace : %s (load in chrome://tracing or Perfetto)"
              % args.out)
    if args.jsonl:
        write_jsonl(args.jsonl, observer)
        print("jsonl stream : %s" % args.jsonl)
    print(render_report(observer, top=args.top))
    if auditor is not None:
        report = auditor.report()
        print(report.render())
        if not report.ok:
            return 1
    return 0


def _cmd_audit(args: argparse.Namespace) -> int:
    from repro.analysis import render_json
    from repro.audit import AuditConfig, audit_jsonl_file

    config = AuditConfig(sample_every=args.sample_every)
    try:
        report = audit_jsonl_file(args.jsonl, config)
    except (OSError, ValueError) as exc:
        print("repro audit: %s" % exc, file=sys.stderr)
        return 2
    rendered = report.render()
    if args.json:
        print(render_json([report.to_analysis_report()]))
    else:
        print(rendered)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(rendered)
            handle.write("\n")
        print("witness report : %s" % args.out)
    if report.verdict == "violation":
        return 1
    if report.verdict == "inconclusive":
        return 4
    return 0


def _is_sharded_wal_layout(path: str) -> bool:
    """True when *path* looks like a ShardedEngine WAL directory."""
    import glob
    import os

    if not os.path.isdir(path):
        return False
    return bool(glob.glob(os.path.join(path, "shard-*")))


def _cmd_recover(args: argparse.Namespace) -> int:
    from repro.errors import EngineError
    from repro.wal import RecoveryError, recover

    if _is_sharded_wal_layout(args.log):
        from repro.shard import recover_sharded

        try:
            sharded = recover_sharded(
                args.log, presume_abort=not args.no_presume_abort
            )
        except OSError as exc:
            print("repro recover: %s" % exc, file=sys.stderr)
            return 2
        except (RecoveryError, EngineError) as exc:
            print("repro recover: %s" % exc, file=sys.stderr)
            return 4
        rendered = sharded.render()
        print(rendered)
        if args.out:
            with open(args.out, "w") as handle:
                handle.write(rendered)
                handle.write("\n")
            print("recovery report : %s" % args.out)
        if sharded.verdict == "partial":
            return 1
        return 0

    try:
        state = recover(args.log, presume_abort=not args.no_presume_abort)
    except OSError as exc:
        print("repro recover: %s" % exc, file=sys.stderr)
        return 2
    except RecoveryError as exc:
        # Nothing recoverable: no usable header, unknown format, or a
        # non-durable scheme -- the inconclusive outcome.
        print("repro recover: %s" % exc, file=sys.stderr)
        return 4
    report = state.report
    rendered = report.render()
    print(rendered)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(rendered)
            handle.write("\n")
        print("recovery report : %s" % args.out)
    # Mirrors `repro audit`: 0 clean/complete, 1 a finding (here: the
    # log had a torn or corrupt tail and only a prefix was restored).
    if report.verdict == "partial":
        return 1
    return 0


def _load_scenario_ref(ref: str):
    """Resolve a scenario reference: a TOML path or a library name."""
    import os

    from repro.scenario import load_scenario
    from repro.scenario.library import library_path

    if os.path.exists(ref):
        return load_scenario(ref)
    return load_scenario(library_path(ref))


def _serve_specs(args: argparse.Namespace):
    from repro.adt import BankAccount, Counter, IntRegister

    if getattr(args, "scenario", None):
        from repro.scenario import build_store

        return build_store(_load_scenario_ref(args.scenario))
    spec_classes = {
        "register": IntRegister,
        "counter": Counter,
        "bank": BankAccount,
    }
    spec_class = spec_classes[args.object_type]
    return [
        spec_class("x%d" % index) for index in range(args.objects)
    ]


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import json
    import signal

    from repro.errors import EngineError
    from repro.serve import (
        PROTOCOL_VERSION,
        ServeConfig,
        TransactionServer,
    )

    config = ServeConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        max_batch=args.max_batch,
        max_inflight=args.max_inflight,
        max_inflight_per_conn=args.max_inflight_per_conn,
        rate=args.rate,
        burst=args.burst,
        op_timeout=args.op_timeout,
        idle_timeout=args.idle_timeout,
    )
    try:
        specs = _serve_specs(args)
    except ValueError as exc:  # bad --scenario reference or TOML
        print("repro serve: %s" % exc, file=sys.stderr)
        return 2
    facade = None
    if args.sharded:
        from repro.shard import ShardedEngine

        placement = None
        if getattr(args, "scenario", None):
            placement = (
                _load_scenario_ref(args.scenario).placement_map() or None
            )
        try:
            facade = ShardedEngine(
                specs,
                policy=args.scheme,
                workers=args.shard_workers,
                placement=placement,
            )
            if args.wal_dir:
                facade.attach_wal(
                    wal_dir=args.wal_dir,
                    group_ms=args.wal_group_ms,
                )
        except (EngineError, OSError) as exc:
            print("repro serve: %s" % exc, file=sys.stderr)
            return 2
    server = TransactionServer(
        specs,
        args.scheme,
        config=config,
        stripes=args.stripes,
        facade=facade,
    )
    if args.wal_dir and facade is None:
        from repro.wal import FileWalSink

        try:
            server.attach_wal(sink=FileWalSink(args.wal_dir))
        except (EngineError, OSError) as exc:
            print("repro serve: %s" % exc, file=sys.stderr)
            return 2
    if args.audit:
        server.attach_auditor()
    if facade is not None:
        try:
            facade.start()
        except (EngineError, OSError) as exc:
            print("repro serve: %s" % exc, file=sys.stderr)
            facade.close()
            return 2

    async def main() -> int:
        try:
            host, port = await server.start()
        except OSError as exc:
            print("repro serve: %s" % exc, file=sys.stderr)
            return 2
        # One parseable line, flushed before load arrives: wrappers
        # (tests, the serve-smoke CI job) read the bound port here.
        line = "serving on %s:%d scheme=%s objects=%d protocol=%d" % (
            host,
            port,
            server.facade.scheme.name,
            len(server.object_names),
            PROTOCOL_VERSION,
        )
        if facade is not None:
            line += " shards=%d" % facade.shards
        print(line, flush=True)
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError):
                pass
        try:
            if args.duration is not None:
                try:
                    await asyncio.wait_for(
                        stop.wait(), timeout=args.duration
                    )
                except asyncio.TimeoutError:
                    pass
            else:
                await stop.wait()
        except KeyboardInterrupt:  # pragma: no cover - no handler
            pass
        await server.stop()
        return 0

    try:
        code = asyncio.run(main())
    except KeyboardInterrupt:  # pragma: no cover - teardown race
        code = 0
    finally:
        if facade is not None:
            facade.close()
    if code:
        return code
    stats = server.stats()
    print(
        "served %d connections, shed %d, engine %s"
        % (
            stats["metrics"]["gauges"]
            .get("serve.connections", {})
            .get("high_water", 0),
            stats["shed"],
            json.dumps(stats["engine"], sort_keys=True),
        )
    )
    auditor = server.auditor
    if auditor is not None:
        report = auditor.report()
        print(report.render())
        if report.verdict == "violation":
            return 1
        if report.verdict == "inconclusive":
            return 4
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    import json

    from repro.serve import LoadgenConfig, run_loadgen

    config = LoadgenConfig(
        host=args.host,
        port=args.port,
        mode=args.mode,
        clients=args.clients,
        duration=args.duration,
        rate=args.rate,
        ops_per_txn=args.ops,
        read_fraction=args.read_fraction,
        seed=args.seed,
        think_time=args.think_time,
        scenario=args.scenario,
    )
    try:
        report = run_loadgen(config)
    except (ConnectionError, OSError, ValueError) as exc:
        print("repro loadgen: %s" % exc, file=sys.stderr)
        return 2
    print(report.render())
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report.to_json(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print("latency report  : %s" % args.json)
    # Mirrors audit/recover: 0 when the run produced commits, 1 when
    # the service refused or failed every single transaction.
    return 0 if report.committed > 0 else 1


def _cmd_top(args: argparse.Namespace) -> int:
    from repro.obs import Observer
    from repro.obs.workloads import run_contended_sim

    observer = Observer(trace=not args.no_trace)
    metrics = run_contended_sim(
        observer,
        seed=args.seed,
        programs=args.programs,
        objects=args.objects,
        mpl=args.mpl,
        policy=args.policy,
        zipf_skew=args.skew,
        read_fraction=args.read_fraction,
    )
    print(
        "policy %s, seed %d: %d committed, %d denials, "
        "%d deadlock aborts, makespan %.1f"
        % (
            args.policy,
            args.seed,
            metrics.committed,
            metrics.lock_denials,
            metrics.deadlock_aborts,
            metrics.makespan,
        )
    )
    print(observer.contention.render(args.limit))
    return 0


def _cmd_dist(args: argparse.Namespace) -> int:
    from repro.dist import DistributedConfig, run_distributed_simulation
    from repro.dist import uniform_topology
    from repro.sim import WorkloadConfig, make_store, make_workload

    config = WorkloadConfig(
        programs=args.programs,
        objects=args.objects,
        read_fraction=0.7,
        depth=2,
        fanout=2,
        accesses_per_block=2,
    )
    programs = make_workload(args.seed, config)
    store = make_store(config)
    names = [spec.name for spec in store]
    header = ("sites", "committed", "makespan", "messages",
              "remote%", "2pc_rounds")
    print("  ".join("%-10s" % column for column in header))
    for sites in (1, 2, 4, 8):
        topology = uniform_topology(names, sites=sites)
        topology.one_way_latency = args.latency
        metrics = run_distributed_simulation(
            programs,
            store,
            topology,
            DistributedConfig(mpl=4, policy="moss-rw", seed=args.seed),
        )
        row = (
            str(sites),
            str(metrics.committed),
            "%.1f" % metrics.makespan,
            str(metrics.messages),
            "%.1f" % (100 * metrics.remote_fraction),
            str(metrics.commit_rounds),
        )
        print("  ".join("%-10s" % cell for cell in row))
    return 0


def _cmd_scenario(args: argparse.Namespace) -> int:
    from repro.scenario import ScenarioError

    try:
        if args.action == "list":
            return _scenario_list()
        if args.action == "validate":
            return _scenario_validate(args)
        return _scenario_run(args)
    except ScenarioError as exc:
        print("repro scenario: %s" % exc, file=sys.stderr)
        return 2


def _scenario_list() -> int:
    from repro.scenario.library import library_names, library_path
    from repro.scenario.spec import load_scenario

    for name in library_names():
        spec = load_scenario(library_path(name))
        print(
            "%-12s %4d txns, %d classes, %d populations -- %s"
            % (
                name,
                spec.transactions,
                len(spec.classes),
                len(spec.populations),
                spec.description,
            )
        )
        print("  %s" % library_path(name))
    return 0


def _scenario_validate(args: argparse.Namespace) -> int:
    from repro.scenario import ScenarioError, library_names

    failures = 0
    for ref in args.scenarios or library_names():
        try:
            spec = _load_scenario_ref(ref)
        except ScenarioError as exc:
            print("FAIL %s: %s" % (ref, exc))
            failures += 1
            continue
        print(
            "OK   %s (%d txns, %d classes, %d populations, %s arrivals)"
            % (
                spec.name,
                spec.transactions,
                len(spec.classes),
                len(spec.populations),
                spec.arrival.process,
            )
        )
    return 2 if failures else 0


def _scenario_run(args: argparse.Namespace) -> int:
    import json

    from repro.scenario import compile_scenario, get_driver

    spec = _load_scenario_ref(args.scenario)
    compiled = compile_scenario(
        spec, args.seed, transactions=args.transactions
    )
    backends = args.backends.split(",")
    schemes = args.schemes.split(",")
    options = {}
    if args.port is not None:
        options["host"] = args.host
        options["port"] = args.port
    if args.workers is not None:
        options["workers"] = args.workers
    results = []
    for backend in backends:
        driver = get_driver(backend)
        for scheme in schemes:
            results.append(driver.run(compiled, scheme=scheme, **options))
    if len(results) == 1:
        print(results[0].render())
    else:
        # League table: one row per backend x scheme combination.
        header = (
            "backend", "scheme", "committed", "aborted", "txn_abort",
            "retries", "throughput", "p95_lat",
        )
        print("scenario %s, seed %d, digest %s"
              % (spec.name, args.seed, compiled.digest()[:16]))
        print("  ".join("%-10s" % column for column in header))
        for result in results:
            # Engine-decided aborts, where the driver distinguishes
            # them from admission sheds / lock denials ("-" where it
            # cannot: sim and dist count only engine aborts already).
            txn_aborted = result.extras.get("txn_aborted")
            row = (
                result.backend,
                result.scheme,
                str(result.committed),
                str(result.aborted),
                "-" if txn_aborted is None else str(txn_aborted),
                str(result.retries),
                "%.3f" % result.throughput,
                "%.2f" % result.latency(0.95),
            )
            print("  ".join("%-10s" % cell for cell in row))
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(
                [result.row() for result in results],
                handle,
                indent=2,
                sort_keys=True,
            )
            handle.write("\n")
        print("results json : %s" % args.json)
    return 0 if all(r.committed > 0 for r in results) else 1


def _cmd_orphan(args: argparse.Namespace) -> int:
    from repro.checking.anomalies import orphan_anomaly_witness
    from repro.core.names import pretty_name

    witness = orphan_anomaly_witness()
    print(
        "orphan %s in a %d-event concurrent schedule:"
        % (pretty_name(witness.orphan), len(witness.schedule))
    )
    if args.verbose:
        for index, event in enumerate(witness.schedule):
            print("  %2d  %s" % (index, event))
    for anomaly in witness.anomalies:
        print("anomaly: %s" % anomaly)
    print(
        "(Theorem 34 deliberately excludes orphans; see EXPERIMENTS.md "
        "E15 and the paper's Section 3.5 remark.)"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Nested Transactions and Read/Write Locking (PODS 1987) -- "
            "reproduction toolkit"
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    validate = commands.add_parser(
        "validate", help="statistical Theorem 34 validation"
    )
    validate.add_argument("--seed", type=int, default=0)
    validate.add_argument("--systems", type=int, default=3)
    validate.add_argument("--schedules", type=int, default=10)
    validate.add_argument("--steps", type=int, default=300)
    validate.set_defaults(handler=_cmd_validate)

    explore = commands.add_parser(
        "explore", help="exhaustive micro-system check"
    )
    explore.add_argument("--depth", type=int, default=12)
    explore.add_argument("--cap", type=int, default=3000)
    explore.set_defaults(handler=_cmd_explore)

    sweep = commands.add_parser(
        "sweep", help="policy x read-fraction simulation sweep"
    )
    sweep.add_argument("--seed", type=int, default=0)
    sweep.add_argument("--programs", type=int, default=30)
    sweep.add_argument("--objects", type=int, default=10)
    sweep.add_argument("--skew", type=float, default=0.6)
    sweep.add_argument("--mpl", type=int, default=8)
    sweep.add_argument(
        "--policies",
        default="serial,exclusive,flat-2pl,moss-rw,mvto",
        help="comma-separated policy list",
    )
    sweep.set_defaults(handler=_cmd_sweep)

    conformance = commands.add_parser(
        "conformance", help="engine-trace -> model conformance demo"
    )
    conformance.add_argument("--seed", type=int, default=0)
    conformance.add_argument("--transactions", type=int, default=4)
    conformance.add_argument("--operations", type=int, default=60)
    conformance.set_defaults(handler=_cmd_conformance)

    analyze = commands.add_parser(
        "analyze",
        help="schedule lint + race detection over a random engine trace",
    )
    analyze.add_argument("--seed", type=int, default=0)
    analyze.add_argument("--transactions", type=int, default=4)
    analyze.add_argument("--operations", type=int, default=60)
    analyze.add_argument(
        "--policy",
        default="moss-rw",
        choices=["moss-rw", "exclusive", "broken-no-inherit"],
        help="locking policy (broken-no-inherit seeds a violation)",
    )
    analyze.add_argument("--json", action="store_true")
    analyze.add_argument("--verbose", action="store_true")
    analyze.set_defaults(handler=_cmd_analyze)

    lint = commands.add_parser(
        "lint", help="AST lint of the repo's lock-discipline invariants"
    )
    lint.add_argument(
        "paths",
        nargs="*",
        help="files or directories (default: the repro package)",
    )
    lint.add_argument("--json", action="store_true")
    lint.add_argument("--verbose", action="store_true")
    lint.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    lint.set_defaults(handler=_cmd_lint)

    fuzz = commands.add_parser(
        "fuzz",
        help=(
            "deterministic concurrency fuzzing with fault injection "
            "and failing-schedule shrinking"
        ),
    )
    fuzz.add_argument("--seed", type=int, default=0)
    fuzz.add_argument(
        "--runs", type=int, default=20,
        help="schedule budget (search attempts)",
    )
    fuzz.add_argument("--workers", type=int, default=3)
    fuzz.add_argument(
        "--transactions", type=int, default=2,
        help="top-level transactions per worker",
    )
    fuzz.add_argument(
        "--steps", type=int, default=4,
        help="accesses per transaction",
    )
    fuzz.add_argument(
        "--faults",
        default="none",
        choices=[
            "none", "crash", "deny-spike", "orphan",
            "broken-no-inherit", "chaos",
        ],
        help="fault-injection preset",
    )
    fuzz.add_argument(
        "--scheme",
        default="moss-rw",
        help=(
            "registered concurrency scheme to fuzz (see "
            "repro.kernel.scheme_names); a fault preset with its own "
            "policy overrides this"
        ),
    )
    fuzz.add_argument(
        "--mode",
        default="random",
        choices=["random", "bounded"],
        help="random search or bounded-preemption exploration",
    )
    fuzz.add_argument(
        "--preemptions", type=int, default=1,
        help="preemption bound for --mode bounded",
    )
    fuzz.add_argument(
        "--shrink", action="store_true",
        help="delta-debug a failure to a minimal choice list",
    )
    fuzz.add_argument(
        "--choices",
        help=(
            "comma-separated choice list: replay this exact "
            "interleaving instead of searching"
        ),
    )
    fuzz.add_argument(
        "--audit", action="store_true",
        help=(
            "attach the online serializability auditor as a fourth "
            "oracle (full auditing, sample 1/1)"
        ),
    )
    fuzz.add_argument(
        "--trace-out",
        help=(
            "replay the reproducer with the observability layer "
            "attached and write a Chrome trace-event file here "
            "(plus a <file>.report.txt summary)"
        ),
    )
    fuzz.set_defaults(handler=_cmd_fuzz)

    trace = commands.add_parser(
        "trace",
        help=(
            "run an observed workload; export a Chrome/Perfetto "
            "trace and a metrics report"
        ),
    )
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument(
        "--workload",
        default="quickstart",
        help=(
            "which workload to observe: quickstart, banking, threads, "
            "or scenario:<library name> (e.g. scenario:bank)"
        ),
    )
    trace.add_argument(
        "--out",
        help="write the Chrome trace-event JSON here",
    )
    trace.add_argument(
        "--jsonl",
        help="also write the raw JSONL event stream here",
    )
    trace.add_argument(
        "--top", type=int, default=10,
        help="rows in the contention table",
    )
    trace.add_argument(
        "--audit", action="store_true",
        help=(
            "attach the online serializability auditor and append its "
            "verdict to the report (exit 1 unless clean)"
        ),
    )
    trace.set_defaults(handler=_cmd_trace)

    audit = commands.add_parser(
        "audit",
        help=(
            "offline serializability audit of a recorded JSONL event "
            "stream (see trace --jsonl)"
        ),
    )
    audit.add_argument(
        "jsonl",
        help="JSONL event stream written by trace --jsonl / write_jsonl",
    )
    audit.add_argument(
        "--sample-every", type=int, default=1,
        help="audit every Nth top-level transaction tree (default 1)",
    )
    audit.add_argument("--json", action="store_true")
    audit.add_argument(
        "--out",
        help="also write the witness report to this file",
    )
    audit.set_defaults(handler=_cmd_audit)

    recover = commands.add_parser(
        "recover",
        help=(
            "replay a write-ahead log (segment file or directory) and "
            "print the crash-recovery report"
        ),
    )
    recover.add_argument(
        "log",
        help="WAL segment file, or a directory of wal-*.seg segments",
    )
    recover.add_argument(
        "--no-presume-abort", action="store_true",
        help=(
            "keep in-flight transactions live instead of aborting "
            "top levels with no COMMIT record"
        ),
    )
    recover.add_argument(
        "--out",
        help="also write the recovery report to this file",
    )
    recover.set_defaults(handler=_cmd_recover)

    serve = commands.add_parser(
        "serve",
        help=(
            "run the async transaction service front-end until "
            "interrupted (SIGINT/SIGTERM) or --duration elapses"
        ),
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=7437,
        help="TCP port (0 = pick a free one; printed on stdout)",
    )
    serve.add_argument(
        "--scheme", default="moss-rw",
        help="registered concurrency scheme to serve",
    )
    serve.add_argument(
        "--objects", type=int, default=16,
        help="number of served objects (named x0..xN-1)",
    )
    serve.add_argument(
        "--object-type",
        default="register",
        choices=["register", "counter", "bank"],
        help="ADT class of the served objects",
    )
    serve.add_argument(
        "--scenario",
        help=(
            "serve a scenario's object populations (TOML path or "
            "library name) instead of --objects/--object-type"
        ),
    )
    serve.add_argument(
        "--stripes", type=int, default=None,
        help="facade stripe count (default: auto)",
    )
    serve.add_argument(
        "--workers", type=int, default=8,
        help="engine worker threads (bounds concurrent lock waiters)",
    )
    serve.add_argument(
        "--max-batch", type=int, default=32,
        help="per-connection batch ceiling (1 = no coalescing)",
    )
    serve.add_argument(
        "--max-inflight", type=int, default=256,
        help="global admitted-but-unanswered request cap",
    )
    serve.add_argument(
        "--max-inflight-per-conn", type=int, default=32,
        help="per-connection pipelining cap",
    )
    serve.add_argument(
        "--rate", type=float, default=None,
        help="token-bucket arrival limit, requests/s (default: off)",
    )
    serve.add_argument(
        "--burst", type=float, default=None,
        help="token-bucket depth (default: --rate)",
    )
    serve.add_argument(
        "--op-timeout", type=float, default=5.0,
        help="per-op engine wait budget in seconds",
    )
    serve.add_argument(
        "--idle-timeout", type=float, default=None,
        help="reap connections idle this many seconds (default: never)",
    )
    serve.add_argument(
        "--sharded", action="store_true",
        help=(
            "back the service with the multiprocess sharded engine "
            "(spawn workers + cross-shard 2PC) instead of the "
            "striped in-process facade"
        ),
    )
    serve.add_argument(
        "--shard-workers", type=int, default=None,
        help="sharded: worker process count (default: auto)",
    )
    serve.add_argument(
        "--wal-group-ms", type=float, default=None,
        help=(
            "sharded: group-commit window in milliseconds for the "
            "per-shard WAL sinks (default: fsync per flush)"
        ),
    )
    serve.add_argument(
        "--wal-dir",
        help=(
            "attach a file write-ahead log in this directory "
            "(sharded: per-shard segments under shard-NN/ plus "
            "coordinator decisions under coord/)"
        ),
    )
    serve.add_argument(
        "--audit", action="store_true",
        help=(
            "attach the online serializability auditor; exit 1 on "
            "violation, 4 inconclusive (mirrors `repro audit`)"
        ),
    )
    serve.add_argument(
        "--duration", type=float, default=None,
        help="stop after this many seconds (default: run until signal)",
    )
    serve.set_defaults(handler=_cmd_serve)

    loadgen = commands.add_parser(
        "loadgen",
        help=(
            "drive a running service: open-loop Poisson or "
            "closed-loop workers, latency percentiles via repro.obs"
        ),
    )
    loadgen.add_argument("--host", default="127.0.0.1")
    loadgen.add_argument("--port", type=int, default=7437)
    loadgen.add_argument(
        "--mode", default="closed", choices=["closed", "open"],
    )
    loadgen.add_argument(
        "--clients", type=int, default=8,
        help="closed-loop workers / open-loop connections",
    )
    loadgen.add_argument(
        "--duration", type=float, default=2.0,
        help="run length in seconds",
    )
    loadgen.add_argument(
        "--rate", type=float, default=200.0,
        help="open loop: offered arrivals/second",
    )
    loadgen.add_argument(
        "--ops", type=int, default=4,
        help="accesses per transaction",
    )
    loadgen.add_argument("--read-fraction", type=float, default=0.5)
    loadgen.add_argument("--seed", type=int, default=0)
    loadgen.add_argument(
        "--think-time", type=float, default=0.0,
        help="closed loop: sleep between transactions",
    )
    loadgen.add_argument(
        "--json",
        help="also write the latency report as JSON here",
    )
    loadgen.add_argument(
        "--scenario",
        help=(
            "shape traffic from a scenario TOML file or library name "
            "(full nested trees, per-class mix and think times; "
            "overrides --mode/--duration/--ops)"
        ),
    )
    loadgen.set_defaults(handler=_cmd_loadgen)

    scenario = commands.add_parser(
        "scenario",
        help=(
            "declarative workload scenarios: list the library, "
            "validate specs, run one across backends and schemes"
        ),
    )
    scenario_actions = scenario.add_subparsers(
        dest="action", required=True
    )
    scenario_list = scenario_actions.add_parser(
        "list", help="list the bundled scenario library"
    )
    scenario_list.set_defaults(handler=_cmd_scenario)
    scenario_validate = scenario_actions.add_parser(
        "validate",
        help="validate scenario TOML files (or library names)",
    )
    scenario_validate.add_argument(
        "scenarios",
        nargs="*",
        help="TOML paths or library names (default: whole library)",
    )
    scenario_validate.set_defaults(handler=_cmd_scenario)
    scenario_run = scenario_actions.add_parser(
        "run",
        help=(
            "compile one scenario and run it on one or more backends "
            "and schemes (comma lists produce a league table)"
        ),
    )
    scenario_run.add_argument(
        "scenario", help="TOML path or library name"
    )
    scenario_run.add_argument("--seed", type=int, default=0)
    scenario_run.add_argument(
        "--transactions", type=int, default=None,
        help="override the spec's transaction count",
    )
    scenario_run.add_argument(
        "--backend",
        dest="backends",
        default="sim",
        help=(
            "comma list of backends: sim, threadsafe, sharded, "
            "dist, serve"
        ),
    )
    scenario_run.add_argument(
        "--scheme",
        dest="schemes",
        default="moss-rw",
        help="comma list of registered schemes",
    )
    scenario_run.add_argument(
        "--workers", type=int, default=None,
        help=(
            "threadsafe/sharded backends: worker thread or shard "
            "process count (default: backend-specific)"
        ),
    )
    scenario_run.add_argument(
        "--host", default="127.0.0.1",
        help="serve backend: server host",
    )
    scenario_run.add_argument(
        "--port", type=int, default=None,
        help="serve backend: server port (required for serve)",
    )
    scenario_run.add_argument(
        "--json",
        help="also write all result rows as JSON here",
    )
    scenario_run.set_defaults(handler=_cmd_scenario)

    top = commands.add_parser(
        "top",
        help="hot-object lock-contention table from a contended run",
    )
    top.add_argument("--seed", type=int, default=0)
    top.add_argument("--programs", type=int, default=24)
    top.add_argument("--objects", type=int, default=6)
    top.add_argument("--mpl", type=int, default=8)
    top.add_argument("--policy", default="moss-rw")
    top.add_argument("--skew", type=float, default=0.9)
    top.add_argument("--read-fraction", type=float, default=0.2)
    top.add_argument(
        "--limit", type=int, default=10,
        help="rows in the table",
    )
    top.add_argument(
        "--no-trace", action="store_true",
        help="skip span collection (metrics and contention only)",
    )
    top.set_defaults(handler=_cmd_top)

    orphan = commands.add_parser(
        "orphan", help="print the orphan-inconsistency witness"
    )
    orphan.add_argument("--verbose", action="store_true")
    orphan.set_defaults(handler=_cmd_orphan)

    dist = commands.add_parser(
        "dist", help="distributed deployment sweep (sites x costs)"
    )
    dist.add_argument("--seed", type=int, default=0)
    dist.add_argument("--programs", type=int, default=16)
    dist.add_argument("--objects", type=int, default=12)
    dist.add_argument("--latency", type=float, default=1.0)
    dist.set_defaults(handler=_cmd_dist)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
