"""Text and JSON rendering of analysis reports."""

from __future__ import annotations

import json
from typing import Iterable, Sequence

from repro.analysis.findings import AnalysisReport, Rule


def render_text(
    reports: Sequence[AnalysisReport], verbose: bool = False
) -> str:
    """One line per finding, plus a per-subject summary."""
    lines = []
    total = 0
    for report in reports:
        for finding in report.findings:
            total += 1
            lines.append(str(finding))
            if verbose:
                lines.append(
                    "    rule: %s -- %s"
                    % (finding.rule, finding.rule.description)
                )
    subjects = ", ".join(
        "%s: %d" % (report.subject, len(report.findings))
        for report in reports
    )
    lines.append(
        "%d finding%s (%s)"
        % (total, "" if total == 1 else "s", subjects)
    )
    return "\n".join(lines)


def render_json(reports: Sequence[AnalysisReport]) -> str:
    """A stable JSON document over one or more reports."""
    payload = {
        "ok": all(report.ok for report in reports),
        "reports": [report.to_json() for report in reports],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_rule_catalogue(rules: Iterable[Rule]) -> str:
    """The rule registry as a text table (``--list-rules``)."""
    lines = []
    for rule in rules:
        lines.append("%-8s %s" % (rule.code, rule.title))
        lines.append("         cites: %s" % rule.section)
    return "\n".join(lines)
