"""Deliberately broken locking policies for exercising the analyzers.

The analysis passes are only trustworthy if they catch real bugs, so
this module provides engine policies with seeded violations of Moss'
rules.  They are used by the test suite and by
``python -m repro analyze --policy broken-no-inherit`` to demonstrate
rule-level localisation; they must never be used for real work.

:class:`NoInheritPolicy` breaks exactly one rule: on commit the
object's locks are *dropped* instead of being passed to the parent
(the INFORM_COMMIT effect of Section 5.2 is skipped).  Later
conflicting accesses are then granted without any happens-before
order, which the schedule linter localises as RW007/RW001 and the
race detector as RACE001.
"""

from __future__ import annotations

from repro.core.names import TransactionName, parent
from repro.engine.lockmanager import ManagedObject
from repro.engine.locks import LockMode
from repro.engine.policies import MossPolicy
from repro.errors import EngineError


class NoInheritManagedObject(ManagedObject):
    """A ManagedObject whose commit *drops* locks instead of inheriting.

    Mutation goes through the aggregate-maintaining ``_discard_holder``
    helpers so the fast-path bookkeeping (deepest holders, depth index,
    generation) stays truthful even under the injected fault -- the
    *rule* violation is skipping inheritance, not corrupting the table.
    """

    def on_commit(self, name: TransactionName) -> None:
        mother = parent(name)
        if mother is None:
            raise EngineError("cannot commit the root")
        moved = False
        if name in self.write_holders:
            self._discard_holder(name, LockMode.WRITE)
            # This module IS the fault injector: promoting here, with
            # the holder already dropped, is the injected bug.
            self.versions.promote(name)  # repro-lint: ignore[CD005]
            moved = True
        if name in self.read_holders:
            self._discard_holder(name, LockMode.READ)
            moved = True
        if moved:
            self.generation += 1


class NoInheritPolicy(MossPolicy):
    """Moss' policy with lock inheritance skipped (fault injection).

    ``model_conformant`` stays True on purpose: the policy *claims* to
    refine M(X) so its traces flow through the conformance pipeline,
    which then fails and hands the schedule to the analyzers for a
    rule-level diagnosis.
    """

    name = "broken-no-inherit"

    def make_managed(self, spec) -> NoInheritManagedObject:
        return NoInheritManagedObject(spec)
