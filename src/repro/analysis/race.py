"""Lock-discipline race detection over recorded schedules.

A TSan-style dynamic sanitizer for the engine.  It builds a
happens-before order from the schedule's CREATE / COMMIT / ABORT /
INFORM events and flags pairs of conflicting same-object accesses that
the order does not relate -- exactly the accesses Moss' discipline
(every conflicting holder is an ancestor; locks flow upward on commit,
are discarded on abort) would have serialised.  A clean Moss run yields
no races; a policy that skips lock inheritance leaves the second access
unordered and is localised to the event pair where the discipline
diverged.

Happens-before edges:

* **program order** -- events of the same component (the paper's
  ``transaction(pi)`` assignment) in schedule order;
* **creation** -- ``REQUEST_CREATE(T) -> CREATE(T)``;
* **return** -- ``REQUEST_COMMIT(T, v) -> COMMIT(T)`` and
  ``COMMIT/ABORT(T) -> INFORM_*_AT(X)OF(T)`` (report edges are already
  program order at the parent);
* **lock transfer** -- when an access is granted, an edge from the
  INFORM event that last moved each conflicting lock into the
  requester's ancestor chain (inheritance) or discarded it (abort).

Two conflicting accesses are racy when neither reaches the other in
the resulting DAG.  Every edge points forward in the schedule, so
reachability is a single reverse sweep with integer bitsets.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.findings import (
    AnalysisReport,
    Finding,
    register_rule,
)
from repro.core.events import (
    Abort,
    Commit,
    Create,
    Event,
    InformAbortAt,
    InformCommitAt,
    RequestCommit,
    RequestCreate,
    transaction_of,
)
from repro.core.names import (
    SystemType,
    TransactionName,
    is_ancestor,
    is_descendant,
    parent,
    pretty_name,
)

RACE001 = register_rule(
    "RACE001",
    "unordered conflicting accesses",
    "Section 5.2 (Moss' discipline), cf. Lemma 21",
    "Two conflicting accesses to the same object are not ordered by "
    "the happens-before relation induced by lock inheritance and "
    "discard; the locking discipline failed to serialise them.",
)


class _LockTrace:
    """Where one access's lock currently sits, and which event put it there."""

    __slots__ = ("access", "holder", "move_index", "discarded")

    def __init__(self, access: TransactionName, grant_index: int):
        self.access = access
        self.holder: Optional[TransactionName] = access
        self.move_index = grant_index
        self.discarded = False


class RaceDetector:
    """Happens-before race detection for one system type."""

    def __init__(self, system_type: SystemType):
        self.system_type = system_type

    def analyze(self, events: Sequence[Event]) -> AnalysisReport:
        """Detect races in *events*; return the findings report."""
        report = AnalysisReport(subject="races")
        n = len(events)
        successors: List[List[int]] = [[] for _ in range(n)]

        def add_edge(source: int, target: int) -> None:
            if source != target:
                successors[source].append(target)

        # -- program order per component, plus creation/return edges.
        last_of: Dict[TransactionName, int] = {}
        pending_request_create: Dict[TransactionName, int] = {}
        pending_request_commit: Dict[TransactionName, int] = {}
        return_index: Dict[TransactionName, int] = {}
        # -- shadow lock positions per object, per past access.
        locks: Dict[str, List[_LockTrace]] = {
            name: [] for name in self.system_type.object_names()
        }
        # -- grant metadata for the pair scan: (index, access, is_read)
        grants: Dict[str, List[Tuple[int, TransactionName, bool]]] = {
            name: [] for name in self.system_type.object_names()
        }

        for index, event in enumerate(events):
            component = transaction_of(event)
            if component is not None:
                prior = last_of.get(component)
                if prior is not None:
                    add_edge(prior, index)
                last_of[component] = index

            if isinstance(event, RequestCreate):
                pending_request_create[event.transaction] = index
            elif isinstance(event, RequestCommit):
                pending_request_commit[event.transaction] = index
                name = event.transaction
                if self.system_type.is_access(name):
                    self._grant(
                        locks, grants, add_edge, index, name
                    )
            elif isinstance(event, (Commit, Abort)):
                name = event.transaction
                request = pending_request_commit.get(name)
                if request is not None:
                    add_edge(request, index)
                return_index[name] = index
            elif isinstance(event, InformCommitAt):
                name = event.transaction
                decided = return_index.get(name)
                if decided is not None:
                    add_edge(decided, index)
                for trace in locks.get(event.object_name, ()):
                    if trace.holder == name:
                        # Moving the lock presupposes its prior
                        # position: the chain of moves is itself
                        # causally ordered.
                        add_edge(trace.move_index, index)
                        trace.holder = parent(name)
                        trace.move_index = index
            elif isinstance(event, InformAbortAt):
                name = event.transaction
                decided = return_index.get(name)
                if decided is not None:
                    add_edge(decided, index)
                for trace in locks.get(event.object_name, ()):
                    if (
                        trace.holder is not None
                        and not trace.discarded
                        and is_descendant(trace.holder, name)
                    ):
                        add_edge(trace.move_index, index)
                        trace.discarded = True
                        trace.move_index = index
            elif isinstance(event, Create):
                # CREATE(T): tie to the parent's REQUEST_CREATE.
                request = pending_request_create.get(event.transaction)
                if request is not None:
                    add_edge(request, index)

        reach = self._reachability(n, successors)
        self._scan_pairs(grants, reach, report)
        return report

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _grant(self, locks, grants, add_edge, index, name) -> None:
        """Record an access grant; add lock-transfer sync edges."""
        object_name = self.system_type.object_of(name)
        operation = self.system_type.operation_of(name)
        is_read = operation.is_read
        for trace in locks[object_name]:
            other_read = self.system_type.operation_of(
                trace.access
            ).is_read
            if is_read and other_read:
                continue
            if trace.discarded:
                # Conflicting lock was discarded by an abort: the
                # INFORM_ABORT ordered it before this grant.
                add_edge(trace.move_index, index)
            elif trace.holder is not None and is_ancestor(
                trace.holder, name
            ):
                # Conflicting lock was inherited into an ancestor:
                # the last INFORM_COMMIT ordered it before this grant.
                add_edge(trace.move_index, index)
            # Otherwise the discipline did not order the pair; leave
            # it to the reachability scan.
        locks[object_name].append(_LockTrace(name, index))
        grants[object_name].append((index, name, is_read))

    @staticmethod
    def _reachability(n: int, successors: List[List[int]]) -> List[int]:
        """Per-event reachable-set bitsets (every edge points forward)."""
        reach = [0] * n
        for index in range(n - 1, -1, -1):
            mask = 1 << index
            for target in successors[index]:
                mask |= reach[target]
            reach[index] = mask
        return reach

    def _scan_pairs(self, grants, reach, report) -> None:
        for object_name in sorted(grants):
            entries = grants[object_name]
            for position, (index_b, name_b, read_b) in enumerate(
                entries
            ):
                for index_a, name_a, read_a in entries[:position]:
                    if read_a and read_b:
                        continue
                    if reach[index_a] & (1 << index_b):
                        continue
                    if reach[index_b] & (1 << index_a):
                        continue
                    report.findings.append(
                        Finding(
                            rule=RACE001,
                            message=(
                                "%s and %s access %s (%s/%s) with no "
                                "happens-before order between them"
                                % (
                                    pretty_name(name_a),
                                    pretty_name(name_b),
                                    object_name,
                                    "read" if read_a else "write",
                                    "read" if read_b else "write",
                                )
                            ),
                            event_index=index_a,
                            related_index=index_b,
                            transaction=name_b,
                            object_name=object_name,
                        )
                    )


def detect_races(
    events: Sequence[Event], system_type: SystemType
) -> AnalysisReport:
    """Convenience wrapper: run the race detector and return the report."""
    return RaceDetector(system_type).analyze(events)
