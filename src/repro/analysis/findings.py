"""Rules, findings and reports shared by every analysis pass.

Each analysis (schedule linter, race detector, code lint) is a set of
coded :class:`Rule` objects registered in a module-level registry.  A
rule's ``code`` is stable (``RW001``, ``RACE001``, ``CD001``, ...) and
its ``section`` cites the paper clause the rule enforces, so a finding
always answers *which* of Moss' rules was broken, not merely that the
schedule is wrong.  ``docs/ANALYSIS.md`` catalogues the registry.

A :class:`Finding` localises one violation: event indices and
transaction names for schedule/race findings, ``path:line`` for code
findings.  :class:`AnalysisReport` aggregates findings and is falsy
exactly when something was found, mirroring
:class:`~repro.core.correctness.ScheduleReport`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.names import TransactionName, pretty_name


@dataclass(frozen=True)
class Rule:
    """One coded analysis rule and the paper clause it enforces."""

    code: str
    title: str
    section: str
    description: str

    def __str__(self) -> str:
        return "%s %s (%s)" % (self.code, self.title, self.section)


#: Registry of every rule any analysis pass can report, keyed by code.
_REGISTRY: Dict[str, Rule] = {}


def register_rule(
    code: str, title: str, section: str, description: str
) -> Rule:
    """Define and register a rule; codes must be unique."""
    if code in _REGISTRY:
        raise ValueError("duplicate rule code %r" % code)
    rule = Rule(code, title, section, description)
    _REGISTRY[code] = rule
    return rule


def rule(code: str) -> Rule:
    """Look up a registered rule by code."""
    return _REGISTRY[code]


def all_rules() -> Tuple[Rule, ...]:
    """Every registered rule, sorted by code."""
    return tuple(
        _REGISTRY[code] for code in sorted(_REGISTRY)
    )


@dataclass
class Finding:
    """One localised rule violation."""

    rule: Rule
    message: str
    #: Index into the analysed schedule (schedule/race findings).
    event_index: Optional[int] = None
    #: Second endpoint of a pair finding (e.g. the other racy access).
    related_index: Optional[int] = None
    transaction: Optional[TransactionName] = None
    object_name: Optional[str] = None
    #: Source location (code findings).
    path: Optional[str] = None
    line: Optional[int] = None

    def location(self) -> str:
        """Human-readable anchor: ``path:line`` or ``event N``."""
        if self.path is not None:
            if self.line is not None:
                return "%s:%d" % (self.path, self.line)
            return self.path
        if self.event_index is not None:
            if self.related_index is not None:
                return "events %d/%d" % (
                    self.event_index, self.related_index
                )
            return "event %d" % self.event_index
        return "<schedule>"

    def to_json(self) -> Dict[str, Any]:
        """A JSON-serialisable view of this finding."""
        payload: Dict[str, Any] = {
            "code": self.rule.code,
            "title": self.rule.title,
            "section": self.rule.section,
            "message": self.message,
            "location": self.location(),
        }
        if self.event_index is not None:
            payload["event_index"] = self.event_index
        if self.related_index is not None:
            payload["related_index"] = self.related_index
        if self.transaction is not None:
            payload["transaction"] = pretty_name(self.transaction)
        if self.object_name is not None:
            payload["object"] = self.object_name
        if self.path is not None:
            payload["path"] = self.path
        if self.line is not None:
            payload["line"] = self.line
        return payload

    def __str__(self) -> str:
        return "%s %s: %s" % (self.rule.code, self.location(), self.message)


@dataclass
class AnalysisReport:
    """Outcome of one analysis pass over one subject."""

    subject: str
    findings: List[Finding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    def __bool__(self) -> bool:
        return self.ok

    def by_code(self, code: str) -> List[Finding]:
        """The findings reported under one rule code."""
        return [
            finding
            for finding in self.findings
            if finding.rule.code == code
        ]

    def codes(self) -> Tuple[str, ...]:
        """The distinct rule codes that fired, sorted."""
        return tuple(
            sorted({finding.rule.code for finding in self.findings})
        )

    def extend(self, other: "AnalysisReport") -> "AnalysisReport":
        """Fold *other*'s findings into this report; returns self."""
        self.findings.extend(other.findings)
        return self

    def to_json(self) -> Dict[str, Any]:
        return {
            "subject": self.subject,
            "ok": self.ok,
            "findings": [
                finding.to_json() for finding in self.findings
            ],
        }
