"""Static and dynamic analysis: schedule linting, race detection, code lint.

The correctness tooling layer on top of the reproduction:

* :mod:`~repro.analysis.schedule` -- rule-based linter (``RW001``...)
  over recorded schedules, pinpointing *which* of Moss' rules a bad
  schedule violates;
* :mod:`~repro.analysis.race` -- happens-before race detector
  (``RACE001``) localising where a locking policy diverges from the
  paper's discipline;
* :mod:`~repro.analysis.codelint` -- AST lint (``CD001``...) enforcing
  the repo's own encapsulation invariants;
* :mod:`~repro.analysis.faults` -- seeded-violation policies used to
  exercise the analyzers;
* :mod:`~repro.analysis.reporters` -- text/JSON rendering.

``python -m repro lint`` runs the code lint; ``python -m repro
analyze`` runs the schedule analyzers over a live engine trace.  The
rule catalogue lives in ``docs/ANALYSIS.md``.
"""

from repro.analysis.codelint import (
    CODE_RULES,
    lint_paths,
    lint_source,
)
from repro.analysis.findings import (
    AnalysisReport,
    Finding,
    Rule,
    all_rules,
    rule,
)
from repro.analysis.race import RaceDetector, detect_races
from repro.analysis.reporters import (
    render_json,
    render_rule_catalogue,
    render_text,
)
from repro.analysis.schedule import (
    SCHEDULE_RULES,
    ScheduleLinter,
    lint_schedule,
)


def analyze_trace(events, system_type):
    """Run the schedule linter and the race detector over one schedule.

    Returns ``(lint_report, race_report)``.
    """
    return (
        lint_schedule(events, system_type),
        detect_races(events, system_type),
    )


def analyze_engine(engine):
    """Analyze a traced engine run; returns ``(lint_report, race_report)``.

    The engine must have been constructed with ``trace=True``.
    """
    from repro.errors import EngineError

    recorder = engine.recorder
    if not hasattr(recorder, "schedule"):
        raise EngineError("engine was not constructed with trace=True")
    events = recorder.schedule()
    system_type = recorder.system_type(engine.specs)
    return analyze_trace(events, system_type)


__all__ = [
    "AnalysisReport",
    "CODE_RULES",
    "Finding",
    "RaceDetector",
    "Rule",
    "SCHEDULE_RULES",
    "ScheduleLinter",
    "all_rules",
    "analyze_engine",
    "analyze_trace",
    "detect_races",
    "lint_paths",
    "lint_schedule",
    "lint_source",
    "render_json",
    "render_rule_catalogue",
    "render_text",
    "rule",
]
