"""AST-based lint enforcing the repository's own code invariants.

The engine's conformance story rests on encapsulation invariants that
ordinary tests cannot see: lock tables move only through Moss'
transition methods, the thread-safe facade touches engine internals
only under its mutex, counters mutate only inside the engine.  This
pass walks the source with :mod:`ast` (stdlib only) and enforces them:

=======  =========================================================
CD001    lock-table / version-map state (``write_holders``,
         ``read_holders``, ``versions``, ``_versions``) mutated
         through a non-``self`` receiver -- lock state must change
         only inside its owning class's transition methods
CD002    ``self._engine`` / ``self._inner`` internals of a
         mutex-guarded class touched outside a ``with`` over the
         mutex / condition variable
CD003    ``.status`` of another object assigned outside the engine
         transition modules
CD004    engine ``stats`` counters mutated through a non-``self``
         receiver outside the engine transition modules
CD005    lock-holder tables / version stacks mutated (even through
         ``self``) outside the modules that own the transition
         discipline -- a policy or helper class that grows its own
         ``write_holders.add`` bypasses the lock manager
=======  =========================================================

A line may opt out with ``# repro-lint: ignore`` or
``# repro-lint: ignore[CD002]`` when the invariant holds for a reason
the AST cannot see (e.g. a helper documented as called under the
lock); the justification belongs in a comment beside it.
"""

from __future__ import annotations

import ast
import os
import re
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.findings import (
    AnalysisReport,
    Finding,
    Rule,
    register_rule,
)

CD000 = register_rule(
    "CD000",
    "unparseable module",
    "repo invariant",
    "The module could not be parsed; nothing in it can be checked.",
)
CD001 = register_rule(
    "CD001",
    "lock state mutated outside its owner",
    "repo invariant; cf. Section 5.2 (M(X) transitions)",
    "Lockholder sets and version maps may only change inside the "
    "methods of the class that owns them (ManagedObject, VersionMap "
    "and their policy-specific twins); mutation through another "
    "object's attribute bypasses Moss' transition discipline.",
)
CD002 = register_rule(
    "CD002",
    "guarded internals touched without the mutex",
    "repo invariant; engine thread-safety",
    "Inside a mutex-guarded facade class, attributes of the wrapped "
    "engine/transaction must only be touched within a `with` block "
    "over the mutex or its condition variable.",
)
CD003 = register_rule(
    "CD003",
    "transaction status assigned outside the engine",
    "repo invariant; cf. Section 3.3 (return decisions)",
    "A transaction's status records the scheduler's irrevocable "
    "commit/abort decision; only the engine transition modules may "
    "assign it on another object.",
)
CD004 = register_rule(
    "CD004",
    "engine stats mutated outside the engine",
    "repo invariant",
    "Engine counters are part of engine state; external drivers must "
    "go through an engine method (e.g. count_deadlock) instead of "
    "mutating engine.stats in place.",
)

CD005 = register_rule(
    "CD005",
    "lock state mutated outside the owner modules",
    "repo invariant; cf. Section 5.2 (M(X) transitions)",
    "Lockholder sets and version stacks transition only inside the "
    "lock-manager / version-map / MV-object modules (and the "
    "checker's reference re-execution of the same rules); any other "
    "module mutating them -- even on self -- is running its own lock "
    "protocol outside the audited discipline.",
)

CODE_RULES = (CD001, CD002, CD003, CD004, CD005)

#: Attributes forming the lock-table / version-map state (CD001).
LOCK_STATE_ATTRS = frozenset(
    {"write_holders", "read_holders", "versions", "_versions"}
)

#: Method names that mutate their receiver in place (CD001/CD004).
MUTATING_METHODS = frozenset(
    {
        "add", "discard", "remove", "clear", "update", "pop",
        "popitem", "append", "extend", "insert", "setdefault",
        "install", "promote", "discard_subtree",
    }
)

#: Modules allowed to assign .status / mutate .stats on other objects.
TRANSITION_MODULES = (
    os.path.join("repro", "engine", "engine.py"),
    os.path.join("repro", "mvto", "mv_engine.py"),
)

#: Modules whose classes own lock-holder / version state (CD005).
#: ``analysis/schedule.py`` is the offline checker's reference
#: re-execution of the same transition rules -- a deliberate second
#: implementation, not a bypass.
LOCK_OWNER_MODULES = (
    os.path.join("repro", "engine", "lockmanager.py"),
    os.path.join("repro", "engine", "versions.py"),
    os.path.join("repro", "mvto", "mv_object.py"),
    os.path.join("repro", "analysis", "schedule.py"),
)

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*ignore(?:\[(?P<codes>[A-Z0-9, ]+)\])?"
)


def _suppressions(source: str) -> dict:
    """Map line number -> set of suppressed codes (empty = all)."""
    found = {}
    for number, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if match:
            codes = match.group("codes")
            found[number] = (
                frozenset(c.strip() for c in codes.split(","))
                if codes
                else frozenset()
            )
    return found


def _is_self(node: ast.expr) -> bool:
    return isinstance(node, ast.Name) and node.id == "self"


def _receiver_of_attribute(node: ast.expr) -> Optional[ast.expr]:
    """For ``expr.attr`` return ``expr``; None for non-attributes."""
    if isinstance(node, ast.Attribute):
        return node.value
    return None


class _ModuleLinter(ast.NodeVisitor):
    """One file's worth of CD001-CD004 checks."""

    def __init__(self, path: str, tree: ast.Module, source: str):
        self.path = path
        self.tree = tree
        self.suppressed = _suppressions(source)
        self.findings: List[Finding] = []
        self.is_transition_module = any(
            path.endswith(suffix) for suffix in TRANSITION_MODULES
        )
        self.is_lock_owner_module = any(
            path.endswith(suffix) for suffix in LOCK_OWNER_MODULES
        )
        # Stack of (class node, is_guarded) for CD002.
        self._class_stack: List[Tuple[ast.ClassDef, bool]] = []
        self._function_stack: List[ast.AST] = []
        # Depth of enclosing `with <mutex>` blocks.
        self._guard_depth = 0

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def _emit(self, rule: Rule, node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", None)
        if line in self.suppressed:
            codes = self.suppressed[line]
            if not codes or rule.code in codes:
                return
        self.findings.append(
            Finding(
                rule=rule,
                message=message,
                path=self.path,
                line=line,
            )
        )

    # ------------------------------------------------------------------
    # Structure tracking
    # ------------------------------------------------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        guarded = self._class_is_guarded(node)
        self._class_stack.append((node, guarded))
        self.generic_visit(node)
        self._class_stack.pop()

    @staticmethod
    def _class_is_guarded(node: ast.ClassDef) -> bool:
        """A class is guarded when its code mentions a mutex/condition."""
        for child in ast.walk(node):
            if isinstance(child, ast.Attribute) and child.attr in (
                "_mutex",
                "_released",
            ):
                return True
        return False

    def _visit_function(self, node) -> None:
        self._function_stack.append(node)
        saved = self._guard_depth
        self._guard_depth = 0
        self.generic_visit(node)
        self._guard_depth = saved
        self._function_stack.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def visit_With(self, node: ast.With) -> None:
        guarding = any(
            self._mentions_guard(item.context_expr)
            for item in node.items
        )
        if guarding:
            self._guard_depth += 1
        self.generic_visit(node)
        if guarding:
            self._guard_depth -= 1

    @staticmethod
    def _mentions_guard(expression: ast.expr) -> bool:
        return any(
            isinstance(child, ast.Attribute)
            and child.attr in ("_mutex", "_released")
            for child in ast.walk(expression)
        )

    # ------------------------------------------------------------------
    # CD001 / CD003 / CD004: mutations
    # ------------------------------------------------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_mutation_target(node, target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_mutation_target(node, node.target)
        self.generic_visit(node)

    def _check_mutation_target(
        self, node: ast.AST, target: ast.expr
    ) -> None:
        # CD001: managed.write_holders = ... / managed.versions = ...
        if isinstance(target, ast.Attribute):
            receiver = target.value
            if target.attr in LOCK_STATE_ATTRS:
                if not _is_self(receiver):
                    self._emit(
                        CD001,
                        node,
                        "assignment to %r through a non-self receiver"
                        % target.attr,
                    )
                elif self._lock_mutation_forbidden():
                    self._emit(
                        CD005,
                        node,
                        "assignment to %r outside the lock-owner "
                        "modules" % target.attr,
                    )
            if target.attr == "status" and not _is_self(receiver):
                if not self.is_transition_module:
                    self._emit(
                        CD003,
                        node,
                        "transaction status assigned outside the "
                        "engine transition modules",
                    )
        # CD001/CD004: managed.versions[k] = ... / engine.stats[k] += 1
        if isinstance(target, ast.Subscript):
            container = target.value
            if isinstance(container, ast.Attribute):
                receiver = container.value
                if container.attr in LOCK_STATE_ATTRS:
                    if not _is_self(receiver):
                        self._emit(
                            CD001,
                            node,
                            "item assignment on %r through a non-self "
                            "receiver" % container.attr,
                        )
                    elif self._lock_mutation_forbidden():
                        self._emit(
                            CD005,
                            node,
                            "item assignment on %r outside the "
                            "lock-owner modules" % container.attr,
                        )
                if (
                    container.attr == "stats"
                    and not _is_self(receiver)
                    and not self.is_transition_module
                ):
                    self._emit(
                        CD004,
                        node,
                        "engine stats mutated in place; use an engine "
                        "method instead",
                    )

    def visit_Call(self, node: ast.Call) -> None:
        function = node.func
        if (
            isinstance(function, ast.Attribute)
            and function.attr in MUTATING_METHODS
        ):
            owner = function.value
            # e.g. managed.write_holders.add(...): owner is the
            # attribute `managed.write_holders`.
            if isinstance(owner, ast.Attribute):
                if owner.attr in LOCK_STATE_ATTRS:
                    if not _is_self(owner.value):
                        self._emit(
                            CD001,
                            node,
                            "mutating call %s() on %r through a "
                            "non-self receiver"
                            % (function.attr, owner.attr),
                        )
                    elif self._lock_mutation_forbidden():
                        self._emit(
                            CD005,
                            node,
                            "mutating call %s() on %r outside the "
                            "lock-owner modules"
                            % (function.attr, owner.attr),
                        )
                if (
                    owner.attr == "stats"
                    and not _is_self(owner.value)
                    and not self.is_transition_module
                ):
                    self._emit(
                        CD004,
                        node,
                        "engine stats mutated in place; use an engine "
                        "method instead",
                    )
        self.generic_visit(node)

    # ------------------------------------------------------------------
    # CD002: guarded internals
    # ------------------------------------------------------------------
    def visit_Attribute(self, node: ast.Attribute) -> None:
        if self._class_stack and self._class_stack[-1][1]:
            inner = node.value
            if (
                isinstance(inner, ast.Attribute)
                and inner.attr in ("_engine", "_inner")
                and _is_self(inner.value)
                and self._guard_depth == 0
                and self._in_checked_method()
            ):
                self._emit(
                    CD002,
                    node,
                    "access to self.%s.%s outside a `with` over the "
                    "mutex/condition" % (inner.attr, node.attr),
                )
        self.generic_visit(node)

    def _in_checked_method(self) -> bool:
        if not self._function_stack:
            return False
        current = self._function_stack[-1]
        name = getattr(current, "name", "")
        return name != "__init__"

    def _lock_mutation_forbidden(self) -> bool:
        """CD005 applies: self-mutation of lock state, wrong module.

        ``__init__`` is exempt -- constructing your own (empty) table
        is initialization, not a lock-table transition.
        """
        return not self.is_lock_owner_module and self._in_checked_method()


def lint_source(path: str, source: str) -> List[Finding]:
    """Lint one module's source text; returns its findings."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                rule=CD000,
                message="could not parse: %s" % exc,
                path=path,
                line=exc.lineno,
            )
        ]
    linter = _ModuleLinter(path, tree, source)
    linter.visit(tree)
    linter.findings.sort(key=lambda f: (f.line or 0, f.rule.code))
    return linter.findings


def iter_python_files(paths: Iterable[str]) -> Iterable[str]:
    """Expand files and directories into .py file paths, sorted.

    Raises :class:`FileNotFoundError` for a path that does not exist,
    so a typo cannot silently lint nothing.
    """
    seen: Set[str] = set()
    for path in paths:
        if not os.path.exists(path):
            raise FileNotFoundError("no such file or directory: %r" % path)
        if os.path.isdir(path):
            for root, directories, files in os.walk(path):
                directories[:] = sorted(
                    d
                    for d in directories
                    if d not in ("__pycache__", ".git")
                    and not d.endswith(".egg-info")
                )
                for name in sorted(files):
                    if name.endswith(".py"):
                        seen.add(os.path.join(root, name))
        elif path.endswith(".py"):
            seen.add(path)
    return sorted(seen)


def lint_paths(paths: Sequence[str]) -> AnalysisReport:
    """Run the code lint over files/directories; return the report."""
    report = AnalysisReport(subject="code")
    for file_path in iter_python_files(paths):
        with open(file_path, "r", encoding="utf-8") as handle:
            source = handle.read()
        report.findings.extend(lint_source(file_path, source))
    return report
