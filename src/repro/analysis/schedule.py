"""The schedule linter: coded rules over recorded schedules.

The Theorem 34 harness answers *whether* a schedule is serially correct;
this linter answers *which rule* a bad schedule violates.  It replays a
shadow copy of Moss' per-object state -- lockholder sets and version
maps exactly as M(X) prescribes (Section 5.2) -- alongside the schedule
and reports coded findings with event indices and transaction names.

Rules (see ``docs/ANALYSIS.md`` for the catalogue):

=======  =========================================================
RW001    lock held at end of schedule by a returned transaction
         (never inherited on commit nor discarded on abort)
RW002    access performed by a descendant of an aborted ancestor
         (an orphan access -- the engine's orphan guard failed)
RW003    COMMIT without CREATE / without REQUEST_COMMIT
RW004    INFORM_COMMIT / INFORM_ABORT inconsistent with the lock
         table or the transaction's fate (inheritance mismatch)
RW005    access result diverges from the version-map replay
         (restore mismatch)
RW006    non-well-formed prefix (first offending event)
RW007    lock granted while a conflicting non-ancestor holds it
RW008    duplicate or conflicting return decision
=======  =========================================================

The linter accepts any :class:`~repro.core.events.Event` sequence.  A
:class:`~repro.core.names.SystemType` (for instance rebuilt from a
:class:`~repro.engine.trace.TraceRecorder`) unlocks the lock-table and
version-map rules; without one only the structural rules (RW002, RW003,
RW008) run.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Set

from repro.analysis.findings import (
    AnalysisReport,
    Finding,
    Rule,
    register_rule,
)
from repro.core.events import (
    Abort,
    Commit,
    Create,
    Event,
    InformAbortAt,
    InformCommitAt,
    RequestCommit,
)
from repro.core.names import (
    ROOT,
    SystemType,
    TransactionName,
    is_descendant,
    parent,
    pretty_name,
    proper_ancestors,
)
from repro.core.wellformed import SequenceWellFormedness
from repro.engine.locks import LockMode, blocking_holders
from repro.engine.versions import VersionMap
from repro.errors import WellFormednessError

RW001 = register_rule(
    "RW001",
    "lock leak",
    "Section 5.2, Lemma 21",
    "A returned transaction still holds a lock at the end of the "
    "schedule: the lock was neither inherited by the parent on commit "
    "nor discarded on abort.",
)
RW002 = register_rule(
    "RW002",
    "orphan access",
    "Section 3.5",
    "An access was created after an ABORT of one of its proper "
    "ancestors; its results can be arbitrarily inconsistent (the "
    "orphan anomaly).",
)
RW003 = register_rule(
    "RW003",
    "commit without create",
    "Section 3.3 (generic scheduler preconditions)",
    "COMMIT(T) was decided for a transaction that was never created "
    "or never requested to commit.",
)
RW004 = register_rule(
    "RW004",
    "lock inheritance mismatch",
    "Section 5.2 (INFORM_COMMIT / INFORM_ABORT effects)",
    "An INFORM operation is inconsistent with the shadow lock table "
    "or with the transaction's decided fate.",
)
RW005 = register_rule(
    "RW005",
    "version-map restore mismatch",
    "Section 5.2 (version map)",
    "An access returned a value different from the one a faithful "
    "Moss version-map replay produces.",
)
RW006 = register_rule(
    "RW006",
    "non-well-formed prefix",
    "Sections 3.1, 3.2, 5.1",
    "The schedule stops being well-formed at this event; no component "
    "automaton can have produced it.",
)
RW007 = register_rule(
    "RW007",
    "grant-rule violation",
    "Section 5.2 (Moss' grant rule)",
    "A lock was granted while a conflicting lock was held by a "
    "non-ancestor of the requester.",
)
RW008 = register_rule(
    "RW008",
    "duplicate return",
    "Section 3.3 (at most one return decision)",
    "A second COMMIT/ABORT was decided for an already-returned "
    "transaction.",
)

#: Rules the linter can run without a system type.
STRUCTURAL_RULES = (RW002, RW003, RW008)

#: Every schedule-linter rule.
SCHEDULE_RULES = (
    RW001, RW002, RW003, RW004, RW005, RW006, RW007, RW008,
)


class _ShadowObject:
    """Shadow M(X) state: lockholder sets plus the version map."""

    def __init__(self, system_type: SystemType, object_name: str):
        self.object_name = object_name
        self.spec = system_type.object_spec(object_name)
        self.write_holders: Set[TransactionName] = {ROOT}
        self.read_holders: Set[TransactionName] = set()
        self.versions = VersionMap(self.spec.initial_value())

    def holds(self, name: TransactionName) -> bool:
        return name in self.write_holders or name in self.read_holders

    def grant(
        self,
        owner: TransactionName,
        mode: LockMode,
        new_value: object = None,
    ) -> None:
        if mode is LockMode.WRITE:
            self.write_holders.add(owner)
            self.versions.install(owner, new_value)
        else:
            self.read_holders.add(owner)

    def inherit(self, name: TransactionName) -> None:
        mother = parent(name)
        if name in self.write_holders:
            self.write_holders.discard(name)
            self.write_holders.add(mother)
            self.versions.promote(name)
        if name in self.read_holders:
            self.read_holders.discard(name)
            self.read_holders.add(mother)

    def discard_subtree(self, doomed: TransactionName) -> None:
        self.write_holders = {
            holder
            for holder in self.write_holders
            if not is_descendant(holder, doomed)
        }
        self.read_holders = {
            holder
            for holder in self.read_holders
            if not is_descendant(holder, doomed)
        }
        self.versions.discard_subtree(doomed)


class ScheduleLinter:
    """Rule-based single-pass linter over an event sequence."""

    def __init__(self, system_type: Optional[SystemType] = None):
        self.system_type = system_type

    def rules(self) -> Sequence[Rule]:
        """The rules this linter instance will run."""
        if self.system_type is None:
            return STRUCTURAL_RULES
        return SCHEDULE_RULES

    def lint(self, events: Sequence[Event]) -> AnalysisReport:
        """Replay *events* against the shadow model; report findings."""
        report = AnalysisReport(subject="schedule")
        system_type = self.system_type

        created: Set[TransactionName] = set()
        requested_commit: Set[TransactionName] = set()
        committed: Set[TransactionName] = set()
        aborted: Set[TransactionName] = set()

        objects: Dict[str, _ShadowObject] = {}
        wf: Optional[SequenceWellFormedness] = None
        if system_type is not None:
            objects = {
                name: _ShadowObject(system_type, name)
                for name in system_type.object_names()
            }
            wf = SequenceWellFormedness(system_type, locking=True)

        def emit(rule: Rule, index: int, message: str, **kw) -> None:
            report.findings.append(
                Finding(rule=rule, message=message, event_index=index, **kw)
            )

        for index, event in enumerate(events):
            if wf is not None:
                try:
                    wf.extend(event)
                except WellFormednessError as exc:
                    emit(RW006, index, str(exc))
                    # The checker's state is unreliable past the first
                    # violation; stop feeding it but keep linting.
                    wf = None

            if isinstance(event, Create):
                name = event.transaction
                created.add(name)
                doomed_ancestor = next(
                    (
                        ancestor
                        for ancestor in proper_ancestors(name)
                        if ancestor in aborted
                    ),
                    None,
                )
                if doomed_ancestor is not None:
                    is_access = (
                        system_type is not None
                        and system_type.is_access(name)
                    )
                    emit(
                        RW002,
                        index,
                        "%s %s created after ABORT of ancestor %s"
                        % (
                            "access" if is_access else "transaction",
                            pretty_name(name),
                            pretty_name(doomed_ancestor),
                        ),
                        transaction=name,
                    )
            elif isinstance(event, RequestCommit):
                name = event.transaction
                requested_commit.add(name)
                if system_type is not None and system_type.is_access(name):
                    self._replay_access(
                        objects, index, event, emit
                    )
            elif isinstance(event, Commit):
                name = event.transaction
                if name in committed or name in aborted:
                    emit(
                        RW008,
                        index,
                        "second return decision for %s"
                        % pretty_name(name),
                        transaction=name,
                    )
                if name not in created:
                    emit(
                        RW003,
                        index,
                        "COMMIT(%s) without CREATE" % pretty_name(name),
                        transaction=name,
                    )
                elif name not in requested_commit:
                    emit(
                        RW003,
                        index,
                        "COMMIT(%s) without REQUEST_COMMIT"
                        % pretty_name(name),
                        transaction=name,
                    )
                committed.add(name)
            elif isinstance(event, Abort):
                name = event.transaction
                if name in committed or name in aborted:
                    emit(
                        RW008,
                        index,
                        "second return decision for %s"
                        % pretty_name(name),
                        transaction=name,
                    )
                aborted.add(name)
            elif isinstance(event, InformCommitAt):
                self._replay_inform_commit(
                    objects, committed, index, event, emit
                )
            elif isinstance(event, InformAbortAt):
                self._replay_inform_abort(
                    objects, aborted, index, event, emit
                )

        self._check_leaks(
            objects, committed, aborted, len(events), emit
        )
        return report

    # ------------------------------------------------------------------
    # Shadow-model steps
    # ------------------------------------------------------------------
    def _replay_access(self, objects, index, event, emit) -> None:
        """Grant + apply one access leaf at its REQUEST_COMMIT."""
        system_type = self.system_type
        name = event.transaction
        object_name = system_type.object_of(name)
        shadow = objects.get(object_name)
        if shadow is None:
            return
        operation = system_type.operation_of(name)
        mode = LockMode.READ if operation.is_read else LockMode.WRITE
        blockers = blocking_holders(
            name, mode, shadow.write_holders, shadow.read_holders
        )
        if blockers:
            emit(
                RW007,
                index,
                "%s granted %s on %s while %s hold conflicting locks"
                % (
                    pretty_name(name),
                    mode.value,
                    object_name,
                    sorted(pretty_name(b) for b in blockers),
                ),
                transaction=name,
                object_name=object_name,
            )
        try:
            result, new_value = shadow.spec.apply(
                shadow.versions.current(), operation
            )
        except Exception:
            # A malformed schedule may apply operations to states the
            # spec never anticipated; the linter must not crash on it.
            result, new_value = None, shadow.versions.current()
        if result != event.value:
            emit(
                RW005,
                index,
                "%s on %s returned %r; the version-map replay yields %r"
                % (
                    pretty_name(name),
                    object_name,
                    event.value,
                    result,
                ),
                transaction=name,
                object_name=object_name,
            )
        shadow.grant(name, mode, new_value)

    def _replay_inform_commit(
        self, objects, committed, index, event, emit
    ) -> None:
        shadow = objects.get(event.object_name)
        if shadow is None:
            return
        name = event.transaction
        if name == ROOT:
            emit(
                RW004,
                index,
                "INFORM_COMMIT for the root at %s" % event.object_name,
                object_name=event.object_name,
            )
            return
        if name not in committed:
            emit(
                RW004,
                index,
                "INFORM_COMMIT_AT(%s) for %s before COMMIT was decided"
                % (event.object_name, pretty_name(name)),
                transaction=name,
                object_name=event.object_name,
            )
        if not shadow.holds(name):
            emit(
                RW004,
                index,
                "INFORM_COMMIT_AT(%s) for %s, which holds no lock there"
                % (event.object_name, pretty_name(name)),
                transaction=name,
                object_name=event.object_name,
            )
            return
        shadow.inherit(name)

    def _replay_inform_abort(
        self, objects, aborted, index, event, emit
    ) -> None:
        shadow = objects.get(event.object_name)
        if shadow is None:
            return
        name = event.transaction
        if name not in aborted:
            emit(
                RW004,
                index,
                "INFORM_ABORT_AT(%s) for %s before ABORT was decided"
                % (event.object_name, pretty_name(name)),
                transaction=name,
                object_name=event.object_name,
            )
        shadow.discard_subtree(name)

    def _check_leaks(
        self, objects, committed, aborted, length, emit
    ) -> None:
        """RW001: locks left with returned transactions at the end."""
        returned = committed | aborted
        for object_name in sorted(objects):
            shadow = objects[object_name]
            holders = shadow.write_holders | shadow.read_holders
            for holder in sorted(holders):
                if holder == ROOT or holder not in returned:
                    continue
                fate = "committed" if holder in committed else "aborted"
                emit(
                    RW001,
                    length - 1 if length else 0,
                    "%s %s but still holds a lock on %s at the end of "
                    "the schedule (never inherited/discarded)"
                    % (pretty_name(holder), fate, object_name),
                    transaction=holder,
                    object_name=object_name,
                )


def lint_schedule(
    events: Sequence[Event],
    system_type: Optional[SystemType] = None,
) -> AnalysisReport:
    """Convenience wrapper: lint *events* and return the report."""
    return ScheduleLinter(system_type).lint(events)
