"""The scheme registry: names to :class:`Scheme` descriptors.

Built-in schemes register lazy loaders here so importing
:mod:`repro.kernel` never drags in the engines; a loader runs (and is
cached) the first time its name is requested.  :func:`get_scheme` also
accepts a :class:`~repro.engine.policies.LockingPolicy` *instance* --
fault-injection policies like the analysis subsystem's
``NoInheritPolicy`` become ad-hoc schemes with capabilities derived
from the policy's own flags.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, Optional

from repro.errors import EngineError
from repro.kernel.scheme import SchemeCapabilities

#: Factory signature shared by every scheme:
#: ``(specs, observer=None, trace=False, trace_limit=None, shards=1)``.
SchemeFactory = Callable[..., Any]


@dataclass(frozen=True)
class Scheme:
    """A registered concurrency-control scheme.

    ``build`` constructs a fresh engine; ``capabilities`` is what the
    runners and oracles branch on instead of names or classes.
    """

    name: str
    capabilities: SchemeCapabilities
    factory: SchemeFactory = field(repr=False)
    #: The runner caps multiprogramming at 1 (the serial baseline).
    force_serial: bool = False

    def build(
        self,
        specs,
        observer=None,
        trace: bool = False,
        trace_limit: Optional[int] = None,
        shards: int = 1,
    ):
        """Construct an engine for *specs* with the shared knobs."""
        return self.factory(
            specs,
            observer=observer,
            trace=trace,
            trace_limit=trace_limit,
            shards=shards,
        )


_LOADERS: Dict[str, Callable[[], Scheme]] = {}
_CACHE: Dict[str, Scheme] = {}


def register_scheme(name: str, loader: Callable[[], Scheme]) -> None:
    """Register *loader* as the (lazy) source of scheme *name*."""
    _LOADERS[name] = loader
    _CACHE.pop(name, None)


def scheme_names() -> tuple:
    """All registered scheme names, sorted."""
    return tuple(sorted(_LOADERS))


def get_scheme(selector) -> Scheme:
    """Resolve a scheme by registered name or from a policy instance.

    *selector* may be a :class:`Scheme` (returned as-is), a registered
    name, or a ``LockingPolicy`` instance (wrapped into an ad-hoc
    locking scheme -- how fault-injection policies enter the kernel).
    """
    if isinstance(selector, Scheme):
        return selector
    if not isinstance(selector, str):
        return _locking_scheme(selector)
    try:
        loader = _LOADERS[selector]
    except KeyError:
        raise EngineError(
            "unknown scheme %r (registered: %s)"
            % (selector, ", ".join(scheme_names()))
        ) from None
    if selector not in _CACHE:
        _CACHE[selector] = loader()
    return _CACHE[selector]


# ----------------------------------------------------------------------
# Built-in schemes
# ----------------------------------------------------------------------
def _locking_scheme(policy) -> Scheme:
    """Wrap a locking policy (instance) as a scheme descriptor."""
    from repro.engine.engine import Engine

    capabilities = SchemeCapabilities(
        waits_are_acyclic=False,
        aborts_whole_tree=policy.escalates_aborts,
        moves_locks=policy.moves_locks,
        model_conformant=policy.model_conformant,
        object_local_performs=True,
        durable=True,
    )

    def factory(specs, observer=None, trace=False, trace_limit=None,
                shards=1):
        return Engine(
            specs,
            policy=policy,
            trace=trace,
            trace_limit=trace_limit,
            observer=observer,
            shards=shards,
        )

    return Scheme(
        name=policy.name, capabilities=capabilities, factory=factory
    )


def _load_locking(policy_name: str) -> Callable[[], Scheme]:
    def loader() -> Scheme:
        from repro.engine.policies import make_policy

        return _locking_scheme(make_policy(policy_name))

    return loader


def _load_serial() -> Scheme:
    # The serial baseline is moss-rw driven one program at a time; the
    # runner reads ``force_serial`` instead of matching the name.
    from repro.engine.policies import make_policy

    return replace(
        _locking_scheme(make_policy("moss-rw")),
        name="serial",
        force_serial=True,
    )


def _load_mvto() -> Scheme:
    from repro.mvto.mv_engine import MVTOEngine

    def factory(specs, observer=None, trace=False, trace_limit=None,
                shards=1):
        # MVTO keeps no model-alphabet trace; ``trace`` is accepted for
        # factory parity and ignored (the engine carries a
        # NullRecorder so digests stay uniform).
        return MVTOEngine(specs, observer=observer, shards=shards)

    return Scheme(
        name="mvto",
        capabilities=MVTOEngine.capabilities,
        factory=factory,
    )


def _load_broken_no_inherit() -> Scheme:
    from repro.analysis.faults import NoInheritPolicy

    return _locking_scheme(NoInheritPolicy())


for _name in ("moss-rw", "exclusive", "flat-2pl", "semantic"):
    register_scheme(_name, _load_locking(_name))
register_scheme("serial", _load_serial)
register_scheme("mvto", _load_mvto)
register_scheme("broken-no-inherit", _load_broken_no_inherit)
