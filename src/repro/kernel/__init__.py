"""The scheme-agnostic kernel: capabilities, registry, object store.

The paper builds one generic scheduler and composes it with pluggable
object automata; exclusive locking falls out of Moss' rules as a
degenerate instance (Corollary 35).  This package gives the codebase the
same seam: every concurrency-control scheme -- Moss read/write locking,
its policy variants, and multiversion timestamp ordering -- is published
through one registry as a :class:`Scheme` descriptor with declared
:class:`SchemeCapabilities`, and every engine keeps its objects in a
shared :class:`ObjectStore` with pluggable sharding.

Layering: ``repro.kernel`` sits below the engines and imports none of
them at module load; the registry resolves scheme loaders lazily.  The
facades (:class:`~repro.engine.threadsafe.ThreadSafeEngine`), runners
(sim/dist), fuzzer, conformance harness, and CLI all obtain engines via
:func:`get_scheme` and branch on capability flags -- never on scheme
names or engine classes.
"""

from repro.kernel.registry import (
    Scheme,
    get_scheme,
    register_scheme,
    scheme_names,
)
from repro.kernel.scheme import ConcurrencyScheme, SchemeCapabilities
from repro.kernel.store import ObjectStore, default_sharding

__all__ = [
    "ConcurrencyScheme",
    "ObjectStore",
    "Scheme",
    "SchemeCapabilities",
    "default_sharding",
    "get_scheme",
    "register_scheme",
    "scheme_names",
]
