"""A shared object store with pluggable sharding.

Both engines keep their per-object structures (Moss lock tables, MVTO
version chains) in an :class:`ObjectStore`: a name-keyed mapping that
also assigns every object to a shard.  Single-threaded callers leave
``shards=1`` and pay nothing; the thread-safe facade asks for more and
uses :meth:`ObjectStore.shard_of` to pick the stripe lock guarding each
object.
"""

from __future__ import annotations

import zlib
from typing import Any, Callable, Dict, Iterable, Iterator, Optional, Tuple

from repro.core.object_spec import ObjectSpec
from repro.errors import EngineError


def default_sharding(name: str, shards: int) -> int:
    """Stable hash sharding (CRC32), independent of ``PYTHONHASHSEED``."""
    return zlib.crc32(name.encode("utf-8")) % shards


class ObjectStore:
    """Name-keyed objects built from specs, each assigned to a shard.

    Parameters
    ----------
    specs:
        The object specifications making up the store.
    make_object:
        Called once per spec to build the per-object structure.
    shards:
        Number of shards; clamped to at least 1 and at most the number
        of objects (extra empty shards would only waste stripe locks).
    sharding:
        Optional ``(name, shards) -> index`` assignment; defaults to
        :func:`default_sharding`.
    """

    def __init__(
        self,
        specs: Iterable[ObjectSpec],
        make_object: Callable[[ObjectSpec], Any],
        shards: int = 1,
        sharding: Optional[Callable[[str, int], int]] = None,
    ):
        specs = list(specs)
        self.specs: Dict[str, ObjectSpec] = {}
        self.objects: Dict[str, Any] = {}
        self.shards = max(1, min(int(shards), max(1, len(specs))))
        self._sharding = sharding or default_sharding
        self._shard_of: Dict[str, int] = {}
        for spec in specs:
            if spec.name in self.objects:
                raise EngineError("duplicate object %r" % spec.name)
            index = self._sharding(spec.name, self.shards)
            if not 0 <= index < self.shards:
                raise EngineError(
                    "sharding put %r in shard %d of %d"
                    % (spec.name, index, self.shards)
                )
            self.specs[spec.name] = spec
            self.objects[spec.name] = make_object(spec)
            self._shard_of[spec.name] = index
        self._rank_of: Dict[str, int] = {
            name: rank for rank, name in enumerate(self.objects)
        }

    def object(self, name: str) -> Any:
        try:
            return self.objects[name]
        except KeyError:
            raise EngineError("unknown object %r" % name) from None

    def shard_of(self, name: str) -> int:
        try:
            return self._shard_of[name]
        except KeyError:
            raise EngineError("unknown object %r" % name) from None

    def rank_of(self, name: str) -> int:
        """Registration rank of *name* (0-based insertion order).

        Lets callers that iterate object subsets (e.g. the lock
        manager's held-objects index) restore the store's canonical
        ordering, which traces and replay digests depend on.
        """
        try:
            return self._rank_of[name]
        except KeyError:
            raise EngineError("unknown object %r" % name) from None

    def names(self) -> Tuple[str, ...]:
        return tuple(self.objects)

    def items(self) -> Iterable[Tuple[str, Any]]:
        return self.objects.items()

    def values(self) -> Iterable[Any]:
        return self.objects.values()

    def __iter__(self) -> Iterator[str]:
        return iter(self.objects)

    def __len__(self) -> int:
        return len(self.objects)

    def __contains__(self, name: str) -> bool:
        return name in self.objects
