"""The ConcurrencyScheme interface and its declared capabilities.

A *scheme* is one concurrency-control algorithm exposed through the
uniform nested-transaction handle API (``begin_top`` /
``Transaction.begin_child`` / ``perform`` / ``commit`` / ``abort``) plus
the runner hooks (``fresh_blockers`` / ``stats`` / ``started_at``).  The
runners, facades, and oracles never inspect which engine class they
hold; everything they need to know about an algorithm's shape is
declared up front in :class:`SchemeCapabilities`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    Iterable,
    Optional,
    Protocol,
    runtime_checkable,
)

from repro.core.names import TransactionName
from repro.core.object_spec import Operation


@dataclass(frozen=True)
class SchemeCapabilities:
    """What a concurrency-control scheme guarantees and requires.

    Callers branch on these flags instead of on scheme names or engine
    classes; adding a scheme means declaring its capabilities, not
    patching every runner.
    """

    #: Waiting always points at strictly older work (e.g. MVTO's
    #: timestamp order), so blocking cannot form waits-for cycles and
    #: the runner needs no deadlock resolution (no wound-wait, no
    #: detector).  False for lock-based schemes.
    waits_are_acyclic: bool = False

    #: Aborting any node escalates to the whole top-level tree
    #: (flat 2PL, MVTO).  When False, subtree aborts are contained the
    #: way Moss' algorithm contains them.
    aborts_whole_tree: bool = False

    #: Commit passes locks (and versions) to the parent -- Moss' lock
    #: inheritance.  Flat schemes and MVTO hold everything at an
    #: ancestor or in version chains instead.
    moves_locks: bool = True

    #: Engine traces refine the paper's M(X) automata, so the
    #: conformance harness can replay them (Theorem 34 checking).
    model_conformant: bool = True

    #: ``perform`` touches only the target object plus the caller's own
    #: tree state, never other objects.  This is what makes striped
    #: per-object locking sound in the thread-safe facade; MVTO is
    #: False because a timestamp conflict aborts the whole tree's
    #: buffers across every object from inside ``perform``.
    object_local_performs: bool = True

    #: The scheme's state transitions are fully described by its begin /
    #: granted-access / commit / abort events, so a write-ahead log of
    #: those events (:mod:`repro.wal`) can rebuild it by deterministic
    #: replay -- ``attach_wal`` is capability-gated on this flag.  False
    #: for MVTO: its pending tree buffers and timestamp watermarks are
    #: not reconstructible from the lock-movement vocabulary.
    durable: bool = True


@runtime_checkable
class ConcurrencyScheme(Protocol):
    """Structural interface every registered engine implements.

    The handle side (``begin_child``/``perform``/``commit``/``abort``)
    is reached through the :class:`~repro.engine.transaction.Transaction`
    objects returned by :meth:`begin_top`; the methods below are the
    engine-level surface the runners and facades rely on.
    """

    #: Declared capability flags (class or instance attribute).
    capabilities: SchemeCapabilities

    #: Registered scheme name, for reporting and error messages.
    scheme_name: str

    #: Counters for metrics/reporting; every scheme provides at least
    #: ``accesses``/``denials``/``commits``/``aborts``/``deadlocks``.
    stats: Dict[str, int]

    #: Start times of top-level transactions, keyed by name (wound-wait
    #: age and victim choice).
    started_at: Dict[TransactionName, float]

    def begin_top(self, at: Optional[float] = None):
        """Start a new top-level transaction; return its handle."""

    def transaction(self, name: TransactionName):
        """Look up a live transaction handle by name."""

    def object_value(self, object_name: str, committed: bool = True) -> Any:
        """Inspect an object's committed (or current) value."""

    def fresh_blockers(
        self, txn, object_name: str, operation: Operation
    ) -> Iterable[TransactionName]:
        """Transactions currently preventing *txn* from this access."""

    def count_deadlock(self) -> None:
        """Record one externally resolved deadlock in the stats."""
