"""The WAL on-disk record format: CRC-framed, varint-length records.

A log is a byte stream of *frames*::

    frame   := varint(len(body)) body crc32le(body)
    body    := kind(1 byte) payload
    payload := canonical JSON (sorted keys, compact separators, UTF-8)

``varint`` is unsigned LEB128 (7 bits per byte, high bit = continue).
The CRC covers the body only; the varint length is implicitly checked
because a corrupted length either points past the end of the data
(scanned as a torn tail) or lands the 4 CRC bytes on the wrong offsets
(scanned as a corrupt record).  Framing carries no magic bytes: the
first record of every segment is a :data:`SEGMENT` header whose payload
names the format version, so a non-log file fails the very first frame.

The format is pinned by a golden test (``tests/wal/test_format.py``);
bump ``FORMAT_VERSION`` when changing anything here.

Record kinds
------------

======== ===== =================================================
SEGMENT    0   segment header: format version, scheme, object
               specs, first LSN of the segment
BEGIN      1   a transaction registered (top-level or child)
ACQUIRE    2   one granted access: the leaf name, the object, the
               operation, and the object's post-transition
               movement ``generation`` (cross-checked on replay)
COMMIT     3   commit boundary of a transaction
ABORT      4   abort boundary of a (sub)tree root
======== ===== =================================================

Every payload carries ``lsn``, the log sequence number: a monotone
per-log counter in the movement-only spirit of the PR 5 ``generation``
counter -- it advances exactly once per logged transition and never
for denials, so equal prefixes of two logs describe equal state.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.errors import ReproError

#: Bump when the frame or payload layout changes.
FORMAT_VERSION = 1

#: Record kinds.
SEGMENT = 0
BEGIN = 1
ACQUIRE = 2
COMMIT = 3
ABORT = 4

KIND_NAMES = {
    SEGMENT: "segment",
    BEGIN: "begin",
    ACQUIRE: "acquire",
    COMMIT: "commit",
    ABORT: "abort",
}

#: A frame length beyond this is treated as corruption, not a torn
#: tail -- no single record is remotely this large.
MAX_BODY_BYTES = 1 << 28


class WalFormatError(ReproError):
    """A WAL record could not be encoded or decoded."""


def encode_varint(value: int) -> bytes:
    """Unsigned LEB128."""
    if value < 0:
        raise WalFormatError("varint cannot encode %d" % value)
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_varint(data: bytes, offset: int) -> Tuple[int, int]:
    """Decode an unsigned LEB128 at *offset*; return ``(value, end)``.

    Raises :class:`IndexError` when the varint runs past the end of
    *data* (a torn tail) and :class:`WalFormatError` when it is longer
    than any encodable length (corruption).
    """
    result = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise IndexError("varint truncated")
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7
        if shift > 35:
            raise WalFormatError("varint too long")


_BYTE = [bytes([value]) for value in range(256)]


def _frame(kind: int, rendered: str) -> bytes:
    body = _BYTE[kind] + rendered.encode()
    crc = zlib.crc32(body) & 0xFFFFFFFF
    length = len(body)
    prefix = _BYTE[length] if length < 0x80 else encode_varint(length)
    return prefix + body + crc.to_bytes(4, "little")


def encode_record(kind: int, payload: Dict[str, Any]) -> bytes:
    """Frame one record: varint length + body + CRC32 of the body."""
    if kind not in KIND_NAMES:
        raise WalFormatError("unknown record kind %d" % kind)
    try:
        rendered = json.dumps(
            payload, sort_keys=True, separators=(",", ":")
        )
    except (TypeError, ValueError) as exc:
        raise WalFormatError(
            "payload is not JSON-serializable: %s" % exc
        ) from None
    return _frame(kind, rendered)


# ----------------------------------------------------------------------
# Fast encoders (the writer's hot path)
#
# ``encode_record`` pays for a fresh ``JSONEncoder``, a recursive key
# sort, and an intermediate payload dict on every append -- several
# microseconds each on a path the overhead guard (bench E22) budgets
# at ~3us/record.  The canonical rendering of the four hot payloads is
# a fixed template over ints and pre-escaped strings, so these build
# the exact same bytes directly.  ``tests/wal/test_format.py`` pins
# fast == slow frame-for-frame.
# ----------------------------------------------------------------------
_STRING_CACHE: Dict[str, str] = {}
_OPERATION_CACHE: Dict[Any, str] = {}
#: Both caches hold small fixed vocabularies (object names, operation
#: shapes); the cap only guards against pathological workloads.
_CACHE_LIMIT = 4096


def _json_string(text: str) -> str:
    rendered = _STRING_CACHE.get(text)
    if rendered is None:
        rendered = json.dumps(text)
        if len(_STRING_CACHE) < _CACHE_LIMIT:
            _STRING_CACHE[text] = rendered
    return rendered


def _render_operation(operation) -> str:
    key = (operation.kind, operation.args, operation.is_read)
    try:
        rendered = _OPERATION_CACHE.get(key)
    except TypeError:  # unhashable args: render without caching
        key = None
        rendered = None
    if rendered is None:
        rendered = json.dumps(
            operation_to_wire(operation),
            sort_keys=True,
            separators=(",", ":"),
        )
        if key is not None and len(_OPERATION_CACHE) < _CACHE_LIMIT:
            _OPERATION_CACHE[key] = rendered
    return rendered


def _all_plain_ints(name) -> bool:
    for part in name:
        if type(part) is not int:
            return False
    return True


def _wire_ints(name) -> str:
    # "5,0" -- the inside of the JSON array; callers add the brackets.
    count = len(name)
    if count == 1:
        return "%d" % name
    if count == 2:
        return "%d,%d" % name
    if count == 3:
        return "%d,%d,%d" % name
    return ",".join(map(str, name))


def encode_txn_record(kind: int, lsn: int, name) -> bytes:
    """Fast path for BEGIN/COMMIT/ABORT; byte-identical to the slow one."""
    if not _all_plain_ints(name):
        return encode_record(
            kind, {"lsn": lsn, "txn": name_to_wire(name)}
        )
    return _frame(
        kind, '{"lsn":%d,"txn":[%s]}' % (lsn, _wire_ints(name))
    )


#: ``(object, op-shape) -> '"object":...,"op":{...}}'`` -- the constant
#: tail of an ACQUIRE rendering (the per-record head is access/gen/lsn).
_ACQUIRE_TAIL_CACHE: Dict[Any, str] = {}


def _acquire_tail(object_name: str, operation) -> str:
    key = (
        object_name,
        operation.kind,
        operation.args,
        operation.is_read,
    )
    try:
        tail = _ACQUIRE_TAIL_CACHE.get(key)
    except TypeError:  # unhashable args: render without caching
        key = None
        tail = None
    if tail is None:
        tail = '"object":%s,"op":%s}' % (
            _json_string(object_name),
            _render_operation(operation),
        )
        if key is not None and len(_ACQUIRE_TAIL_CACHE) < _CACHE_LIMIT:
            _ACQUIRE_TAIL_CACHE[key] = tail
    return tail


def encode_acquire_record(
    lsn: int,
    access,
    object_name: str,
    operation,
    generation: int,
) -> bytes:
    """Fast path for ACQUIRE; byte-identical to ``encode_record``."""
    if not _all_plain_ints(access):
        return encode_record(
            ACQUIRE,
            acquire_payload(
                lsn, access, object_name, operation, generation
            ),
        )
    try:
        tail = _acquire_tail(object_name, operation)
    except (TypeError, ValueError) as exc:
        raise WalFormatError(
            "payload is not JSON-serializable: %s" % exc
        ) from None
    rendered = '{"access":[%s],"gen":%d,"lsn":%d,%s' % (
        _wire_ints(access),
        generation,
        lsn,
        tail,
    )
    # _frame, inlined: this is the hottest call in the writer.
    body = b"\x02" + rendered.encode()
    crc = zlib.crc32(body) & 0xFFFFFFFF
    length = len(body)
    prefix = _BYTE[length] if length < 0x80 else encode_varint(length)
    return prefix + body + crc.to_bytes(4, "little")


@dataclass(frozen=True)
class Record:
    """One decoded record plus its frame offsets."""

    kind: int
    payload: Dict[str, Any]
    #: Byte offset of the frame start in the scanned data.
    offset: int
    #: Byte offset one past the frame (the next record boundary).
    end: int

    @property
    def kind_name(self) -> str:
        return KIND_NAMES.get(self.kind, "unknown-%d" % self.kind)


@dataclass(frozen=True)
class ScanResult:
    """Outcome of scanning a byte log.

    ``stopped`` is ``"end"`` (clean), ``"torn"`` (the tail is a
    partial frame -- a crash mid-write), or ``"corrupt"`` (a CRC or
    decode failure -- recovery must stop at the last good record).
    """

    records: Tuple[Record, ...]
    stopped: str
    #: Offset of the first byte not covered by a decoded record.
    stopped_at: int
    #: Human-readable detail for torn/corrupt stops.
    detail: str = ""

    @property
    def clean(self) -> bool:
        return self.stopped == "end"

    def boundaries(self) -> List[int]:
        """Record boundaries: 0 plus the end offset of every record."""
        return [0] + [record.end for record in self.records]


def scan_records(data: bytes) -> ScanResult:
    """Decode every well-formed frame prefix of *data*.

    Never raises on bad input: scanning stops at the first torn or
    corrupt frame and reports how far it got, which is exactly the
    prefix recovery is allowed to trust.
    """
    records: List[Record] = []
    offset = 0
    while offset < len(data):
        start = offset
        try:
            length, body_start = decode_varint(data, offset)
        except IndexError:
            return ScanResult(
                tuple(records), "torn", start, "truncated length varint"
            )
        except WalFormatError as exc:
            return ScanResult(tuple(records), "corrupt", start, str(exc))
        if length > MAX_BODY_BYTES:
            return ScanResult(
                tuple(records),
                "corrupt",
                start,
                "frame length %d exceeds limit" % length,
            )
        end = body_start + length + 4
        if end > len(data):
            return ScanResult(
                tuple(records), "torn", start, "truncated frame body"
            )
        body = data[body_start : body_start + length]
        stored = int.from_bytes(
            data[body_start + length : end], "little"
        )
        if zlib.crc32(body) & 0xFFFFFFFF != stored:
            return ScanResult(
                tuple(records), "corrupt", start, "CRC mismatch"
            )
        if not body:
            return ScanResult(
                tuple(records), "corrupt", start, "empty body"
            )
        kind = body[0]
        if kind not in KIND_NAMES:
            return ScanResult(
                tuple(records),
                "corrupt",
                start,
                "unknown record kind %d" % kind,
            )
        try:
            payload = json.loads(body[1:].decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            return ScanResult(
                tuple(records), "corrupt", start, "bad payload: %s" % exc
            )
        if not isinstance(payload, dict):
            return ScanResult(
                tuple(records), "corrupt", start, "payload not an object"
            )
        records.append(Record(kind, payload, start, end))
        offset = end
    return ScanResult(tuple(records), "end", offset)


def iter_frames(data: bytes) -> Iterator[Record]:
    """Yield decoded records; stop silently at the first bad frame."""
    return iter(scan_records(data).records)


# ----------------------------------------------------------------------
# Payload constructors (shared by the log writer and tests)
# ----------------------------------------------------------------------
def name_to_wire(name) -> List[int]:
    return list(name)


def name_from_wire(wire) -> Tuple[int, ...]:
    return tuple(int(part) for part in wire)


def operation_to_wire(operation) -> Dict[str, Any]:
    return {
        "kind": operation.kind,
        "args": list(operation.args),
        "read": bool(operation.is_read),
    }


def operation_from_wire(wire: Dict[str, Any]):
    from repro.core.object_spec import Operation

    args = tuple(
        tuple(part) if isinstance(part, list) else part
        for part in wire["args"]
    )
    return Operation(wire["kind"], args, bool(wire["read"]))


def segment_payload(
    lsn: int,
    segment: int,
    scheme: str,
    objects: List[Tuple[str, str]],
) -> Dict[str, Any]:
    return {
        "format": FORMAT_VERSION,
        "lsn": lsn,
        "objects": [list(pair) for pair in objects],
        "scheme": scheme,
        "segment": segment,
    }


def begin_payload(lsn: int, name) -> Dict[str, Any]:
    return {"lsn": lsn, "txn": name_to_wire(name)}


def acquire_payload(
    lsn: int,
    access,
    object_name: str,
    operation,
    generation: int,
) -> Dict[str, Any]:
    return {
        "access": name_to_wire(access),
        "gen": generation,
        "lsn": lsn,
        "object": object_name,
        "op": operation_to_wire(operation),
    }


def commit_payload(lsn: int, name) -> Dict[str, Any]:
    return {"lsn": lsn, "txn": name_to_wire(name)}


def abort_payload(lsn: int, name) -> Dict[str, Any]:
    return {"lsn": lsn, "txn": name_to_wire(name)}


def first_segment_header(records) -> Optional[Record]:
    """The first SEGMENT record of a scanned record list, if any."""
    for record in records:
        if record.kind == SEGMENT:
            return record
    return None
