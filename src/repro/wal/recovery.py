"""Crash-restart recovery: replay a WAL prefix into a fresh engine.

Recovery is *logical replay*: the log records every state transition of
the original engine -- BEGIN, granted ACQUIRE, COMMIT, ABORT -- in an
order consistent with the engine's own serialization of them, and every
one of those transitions is deterministic (``ObjectSpec.apply`` is
pure, top-level and child slot numbers are assigned sequentially).  So
driving a fresh engine through the same transitions rebuilds the
``LockManager`` holder tables, the ``ManagedObject`` version stacks,
and the committed object store exactly -- the replay cross-checks
itself against the logged names, slot numbers, and movement
``generation`` values and stops (verdict ``"partial"``) at the first
record that does not reproduce.

After replay the *presumed-abort* pass runs: any top-level transaction
whose commit record is missing from the surviving prefix is aborted,
releasing its whole subtree's locks and discarding its versions.  This
is the nested-transaction analogue of presumed-abort -- a crash between
a subtransaction's commit and its top-level ancestor's commit must
discard the subtransaction's effects, because lock inheritance only
made them visible to the (now dead) ancestor, never to the world.

What recovery does *not* restore (by design; see docs/DURABILITY.md):
commit report values, observer metrics, traces, wait/deadlock state,
and engine stats -- none of these affect the store or the lock tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.names import ROOT
from repro.errors import ReproError
from repro.wal import records as rec
from repro.wal.log import MemoryWalSink, WriteAheadLog, read_log_bytes


class RecoveryError(ReproError):
    """The log cannot be recovered at all (no usable header)."""


def _resolve_specs(pairs):
    """Build object specs from the header's ``[name, class]`` pairs."""
    import repro.adt as adt

    specs = []
    for object_name, class_name in pairs:
        spec_class = getattr(adt, class_name, None)
        if spec_class is None:
            raise RecoveryError(
                "log names unknown ADT class %r for object %r; "
                "pass specs= explicitly" % (class_name, object_name)
            )
        specs.append(spec_class(object_name))
    return specs


def holder_snapshot(engine) -> Dict[str, Dict[str, Any]]:
    """Canonical per-object state: holders, versions, generation.

    The recovery harness compares these snapshots for byte-identity
    (via ``==`` on the nested structure) between a recovered engine and
    a never-crashed reference run.
    """
    snapshot: Dict[str, Dict[str, Any]] = {}
    for object_name, managed in sorted(engine.locks.objects.items()):
        writes, reads = managed.holders_view()
        versions = managed.versions
        snapshot[object_name] = {
            "write": sorted(writes),
            "read": sorted(reads),
            "versions": [
                (holder, versions.get(holder))
                for holder in sorted(versions.holders())
            ],
            "generation": managed.generation,
        }
    return snapshot


def committed_values(engine) -> Dict[str, Any]:
    """The committed (root) value of every object."""
    return {
        object_name: managed.versions.get(ROOT)
        for object_name, managed in sorted(engine.locks.objects.items())
    }


@dataclass
class RecoveryReport:
    """What recovery read, applied, and presumed aborted."""

    scheme: str = ""
    objects: Tuple[Tuple[str, str], ...] = ()
    segments: int = 0
    records_scanned: int = 0
    records_applied: int = 0
    #: Scan stop: ``"end"`` / ``"torn"`` / ``"corrupt"``.
    stopped: str = "end"
    stopped_at: int = 0
    detail: str = ""
    #: Top-level transactions aborted by the presumed-abort pass.
    presumed_aborted: Tuple[Tuple[int, ...], ...] = ()
    committed: Dict[str, Any] = field(default_factory=dict)

    @property
    def verdict(self) -> str:
        """``"complete"`` -- the whole log replayed; ``"partial"`` --
        replay stopped early (torn tail, corruption, or a record that
        did not reproduce) and only the surviving prefix is restored."""
        return (
            "complete"
            if self.stopped == "end"
            and self.records_applied == self.records_scanned
            else "partial"
        )

    def render(self) -> str:
        lines = [
            "recovery: %s" % self.verdict,
            "  scheme=%s segments=%d" % (self.scheme, self.segments),
            "  records: scanned=%d applied=%d"
            % (self.records_scanned, self.records_applied),
        ]
        if self.stopped != "end" or self.detail:
            lines.append(
                "  stopped: %s at byte %d%s"
                % (
                    self.stopped,
                    self.stopped_at,
                    " (%s)" % self.detail if self.detail else "",
                )
            )
        if self.presumed_aborted:
            lines.append(
                "  presumed-abort: %s"
                % ", ".join(
                    "T%s" % ".".join(str(part) for part in name)
                    for name in self.presumed_aborted
                )
            )
        for object_name, value in sorted(self.committed.items()):
            lines.append("  committed %s = %r" % (object_name, value))
        return "\n".join(lines)


@dataclass
class RecoveredState:
    """A freshly rebuilt engine plus the report of how it got there."""

    engine: Any
    report: RecoveryReport


def _log_bytes(source) -> bytes:
    """Accept bytes, a sink, a WriteAheadLog, or a path."""
    if isinstance(source, (bytes, bytearray)):
        return bytes(source)
    if isinstance(source, WriteAheadLog):
        source = source.sink
    if isinstance(source, MemoryWalSink):
        return source.getvalue()
    if isinstance(source, str):
        return read_log_bytes(source)
    raise RecoveryError(
        "cannot read a log from %r" % type(source).__name__
    )


def recover(
    source,
    specs=None,
    policy=None,
    presume_abort: bool = True,
    observer=None,
) -> RecoveredState:
    """Rebuild an engine from a log prefix; never raises on bad logs
    past the header (bad records stop replay with a ``partial``
    verdict instead).

    Parameters
    ----------
    source:
        The log: raw bytes, a sink/:class:`WriteAheadLog`, a log file
        path, or a :class:`~repro.wal.log.FileWalSink` directory.
    specs / policy:
        Override the self-describing header (required when the
        original store used non-default initial values, which the
        header does not capture).
    presume_abort:
        Abort still-active top-level transactions after replay (the
        default).  ``False`` leaves them live -- the harness uses this
        to compare against a mid-flight reference run.
    observer:
        Optional :class:`repro.obs.Observer` for ``recovery.*``
        counters; also attached to the rebuilt engine.
    """
    from repro.engine.engine import Engine

    data = _log_bytes(source)
    scan = rec.scan_records(data)
    header = rec.first_segment_header(scan.records)
    if header is None:
        raise RecoveryError(
            "no segment header in log (%s at byte %d%s)"
            % (
                scan.stopped,
                scan.stopped_at,
                ": %s" % scan.detail if scan.detail else "",
            )
        )
    if header.payload.get("format") != rec.FORMAT_VERSION:
        raise RecoveryError(
            "log format %r, this build reads %d"
            % (header.payload.get("format"), rec.FORMAT_VERSION)
        )
    scheme = header.payload["scheme"]
    object_pairs = tuple(
        (str(name), str(cls)) for name, cls in header.payload["objects"]
    )
    if specs is None:
        specs = _resolve_specs(object_pairs)
    try:
        engine = Engine(specs, policy=policy if policy else scheme)
    except Exception as exc:
        raise RecoveryError(
            "cannot build engine for scheme %r: %s" % (scheme, exc)
        ) from None
    if not engine.capabilities.durable:
        raise RecoveryError(
            "scheme %r is not durable (capabilities.durable is False)"
            % scheme
        )

    report = RecoveryReport(
        scheme=scheme,
        objects=object_pairs,
        records_scanned=len(scan.records),
        stopped=scan.stopped,
        stopped_at=scan.stopped_at,
        detail=scan.detail,
    )
    applied = 0
    for record in scan.records:
        try:
            _apply(engine, record)
        except _ReplayStop as stop:
            # The record decoded but did not reproduce on replay: the
            # log is inconsistent from here on.  Trust only the prefix.
            report.stopped = "corrupt"
            report.stopped_at = record.offset
            report.detail = str(stop)
            break
        applied += 1
        if observer is not None:
            observer.count(
                "recovery.records", kind=record.kind_name
            )
    report.records_applied = applied
    report.segments = sum(
        1 for record in scan.records[:applied] if record.kind == rec.SEGMENT
    )

    presumed: List[Tuple[int, ...]] = []
    if presume_abort:
        for name in sorted(engine.started_at):
            txn = engine.transactions.get(name)
            if txn is not None and txn.is_active:
                txn.abort()
                presumed.append(tuple(name))
                if observer is not None:
                    observer.count("recovery.presumed_abort")
    report.presumed_aborted = tuple(presumed)
    report.committed = committed_values(engine)
    if observer is not None:
        observer.observe("recovery.records_applied", float(applied))
        engine.obs = observer
        engine.locks.obs = observer
    return RecoveredState(engine=engine, report=report)


class _ReplayStop(Exception):
    """Internal: a decoded record did not reproduce on replay."""


def _apply(engine, record: rec.Record) -> None:
    kind = record.kind
    payload = record.payload
    if kind == rec.SEGMENT:
        return
    if kind == rec.BEGIN:
        name = rec.name_from_wire(payload["txn"])
        if len(name) == 1:
            if engine._next_top != name[0]:
                raise _ReplayStop(
                    "BEGIN lsn=%s expects top slot %d, engine at %d"
                    % (payload.get("lsn"), name[0], engine._next_top)
                )
            engine.begin_top()
            return
        parent = engine.transactions.get(name[:-1])
        if parent is None:
            raise _ReplayStop(
                "BEGIN lsn=%s: parent %r never began"
                % (payload.get("lsn"), name[:-1])
            )
        if parent._next_child != name[-1]:
            raise _ReplayStop(
                "BEGIN lsn=%s expects child slot %d of %r, engine at %d"
                % (
                    payload.get("lsn"),
                    name[-1],
                    name[:-1],
                    parent._next_child,
                )
            )
        parent.begin_child()
        return
    if kind == rec.ACQUIRE:
        access = rec.name_from_wire(payload["access"])
        performer = engine.transactions.get(access[:-1])
        if performer is None:
            raise _ReplayStop(
                "ACQUIRE lsn=%s: performer %r never began"
                % (payload.get("lsn"), access[:-1])
            )
        if performer._next_child != access[-1]:
            raise _ReplayStop(
                "ACQUIRE lsn=%s expects access slot %d, engine at %d"
                % (
                    payload.get("lsn"),
                    access[-1],
                    performer._next_child,
                )
            )
        object_name = payload["object"]
        if object_name not in engine.specs:
            raise _ReplayStop(
                "ACQUIRE lsn=%s names unknown object %r"
                % (payload.get("lsn"), object_name)
            )
        operation = rec.operation_from_wire(payload["op"])
        try:
            performer.perform(object_name, operation)
        except ReproError as exc:
            raise _ReplayStop(
                "ACQUIRE lsn=%s did not replay: %s"
                % (payload.get("lsn"), exc)
            ) from None
        generation = engine.locks.object(object_name).generation
        if generation != payload["gen"]:
            raise _ReplayStop(
                "ACQUIRE lsn=%s: generation %d, log says %d"
                % (payload.get("lsn"), generation, payload["gen"])
            )
        return
    if kind == rec.COMMIT:
        name = rec.name_from_wire(payload["txn"])
        txn = engine.transactions.get(name)
        if txn is None:
            raise _ReplayStop(
                "COMMIT lsn=%s: %r never began"
                % (payload.get("lsn"), name)
            )
        try:
            txn.commit()
        except ReproError as exc:
            raise _ReplayStop(
                "COMMIT lsn=%s did not replay: %s"
                % (payload.get("lsn"), exc)
            ) from None
        return
    if kind == rec.ABORT:
        name = rec.name_from_wire(payload["txn"])
        txn = engine.transactions.get(name)
        if txn is None:
            raise _ReplayStop(
                "ABORT lsn=%s: %r never began" % (payload.get("lsn"), name)
            )
        if not txn.is_active:
            # A wound/escalation may abort a tree whose handle already
            # finished from its own thread's point of view; the log's
            # single ABORT record is authoritative and idempotent.
            return
        txn.abort()
        return
    raise _ReplayStop("unknown record kind %d" % kind)
