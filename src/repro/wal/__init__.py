"""Write-ahead logging and crash-restart recovery.

The paper scopes crashes out of its model; this package is the
durability layer that closes the gap (ROADMAP open item 3).  Three
modules:

* :mod:`repro.wal.records` -- the CRC-framed, varint-length record
  format (pinned by a golden test);
* :mod:`repro.wal.log` -- segmented append-only sinks (in-memory and
  file-backed) and the :class:`WriteAheadLog` writer the engine calls;
* :mod:`repro.wal.recovery` -- logical replay of a log prefix into a
  fresh engine, with the nested presumed-abort pass.

Attach with ``engine.attach_wal()`` (capability-gated on
``capabilities.durable``); recover with :func:`recover` or the
``repro recover`` CLI command.  See docs/DURABILITY.md.
"""

from repro.wal.records import (
    ABORT,
    ACQUIRE,
    BEGIN,
    COMMIT,
    FORMAT_VERSION,
    SEGMENT,
    Record,
    ScanResult,
    WalFormatError,
    encode_record,
    iter_frames,
    scan_records,
)
from repro.wal.log import (
    DEFAULT_SEGMENT_BYTES,
    FileWalSink,
    MemoryWalSink,
    WriteAheadLog,
    read_log_bytes,
)
from repro.wal.recovery import (
    RecoveredState,
    RecoveryError,
    RecoveryReport,
    committed_values,
    holder_snapshot,
    recover,
)

__all__ = [
    "ABORT",
    "ACQUIRE",
    "BEGIN",
    "COMMIT",
    "DEFAULT_SEGMENT_BYTES",
    "FORMAT_VERSION",
    "FileWalSink",
    "MemoryWalSink",
    "Record",
    "RecoveredState",
    "RecoveryError",
    "RecoveryReport",
    "ScanResult",
    "SEGMENT",
    "WalFormatError",
    "WriteAheadLog",
    "committed_values",
    "encode_record",
    "holder_snapshot",
    "iter_frames",
    "read_log_bytes",
    "recover",
    "scan_records",
]
