"""The write-ahead log: segmented append-only sinks plus the writer.

A :class:`WriteAheadLog` is attached to an engine
(:meth:`repro.engine.engine.Engine.attach_wal`) and receives one call
per durable transition -- begin, granted access, commit boundary,
abort boundary.  It frames each event as a CRC-checked record
(:mod:`repro.wal.records`), appends it to the active segment of its
*sink*, and rolls to a new segment (with a fresh segment header) when
the active one exceeds ``segment_bytes``.

Two sinks ship:

* :class:`MemoryWalSink` -- a list of ``bytearray`` segments; the
  default, used by the crash-fuzzing harness (truncating a byte string
  simulates a crash) and by the overhead benchmark;
* :class:`FileWalSink` -- one ``wal-NNNNNNNN.seg`` file per segment in
  a directory; ``flush`` does ``flush`` + ``os.fsync`` so a flushed
  prefix survives a process (or machine) crash.

The writer is internally locked: under the striped thread-safe facade
two performs on different stripes may append concurrently, and the
append order then *is* the log's serialization of those transitions
(concurrent transitions never conflict -- same-object and same-tree
transitions are already ordered by the facade's locks, so any append
interleaving of the rest replays to the same state).

Observability: with an observer attached the writer counts
``wal.append`` (labelled by record kind), ``wal.flush``, ``wal.fsync``
and ``wal.segment_roll``, and feeds the ``wal.append_bytes``
histogram -- see ``docs/OBSERVABILITY.md`` for the catalogue idiom.
"""

from __future__ import annotations

import os
import threading
from typing import Any, Dict, List, Optional, Tuple

from zlib import crc32

from repro.errors import EngineError
from repro.wal import records as rec
from repro.wal.records import (
    _BYTE,
    _acquire_tail,
    encode_acquire_record,
    encode_txn_record,
    encode_varint,
)

#: Default segment size before rolling to a new one.
DEFAULT_SEGMENT_BYTES = 64 * 1024

# Body templates for the writer's inlined fast paths, one per record
# kind x transaction depth (the leading byte is the kind tag).  Depths
# 1-3 cover every hot workload; deeper trees fall back to the generic
# encoders.  ``bytes %% int`` renders the same decimal digits as
# ``json.dumps``, so the output is byte-identical to
# :func:`repro.wal.records.encode_record` -- pinned by
# ``tests/wal/test_format.py::TestWriterMatchesEncodeRecord``.
_BEGIN1 = b'\x01{"lsn":%d,"txn":[%d]}'
_BEGIN2 = b'\x01{"lsn":%d,"txn":[%d,%d]}'
_BEGIN3 = b'\x01{"lsn":%d,"txn":[%d,%d,%d]}'
_COMMIT1 = b'\x03{"lsn":%d,"txn":[%d]}'
_COMMIT2 = b'\x03{"lsn":%d,"txn":[%d,%d]}'
_COMMIT3 = b'\x03{"lsn":%d,"txn":[%d,%d,%d]}'
_ABORT1 = b'\x04{"lsn":%d,"txn":[%d]}'
_ABORT2 = b'\x04{"lsn":%d,"txn":[%d,%d]}'
_ABORT3 = b'\x04{"lsn":%d,"txn":[%d,%d,%d]}'
_ACQ1 = b'\x02{"access":[%d],"gen":%d,"lsn":%d,'
_ACQ2 = b'\x02{"access":[%d,%d],"gen":%d,"lsn":%d,'
_ACQ3 = b'\x02{"access":[%d,%d,%d],"gen":%d,"lsn":%d,'

#: Rendered ``"object":...,"op":{...}}`` tails keyed by
#: ``(id(operation), object_name)``.  The identity key makes the
#: lookup pure C (a frozen dataclass ``__hash__`` is a Python frame);
#: the cached entry holds the operation so its id cannot be recycled
#: while cached, and the ``is`` check keeps correctness independent of
#: that lifetime argument.
_TAILS: Dict[Tuple[int, str], Tuple[Any, bytes]] = {}
_TAILS_LIMIT = 4096


class MemoryWalSink:
    """Append-only segments kept in memory.

    Frames are held unconcatenated (one list entry per append) so the
    hot path never copies; ``getvalue`` joins on demand.
    """

    #: Nothing to fsync: the writer skips ``flush`` calls entirely.
    DURABLE = False

    def __init__(self):
        self._frames: List[List[bytes]] = [[]]
        self._active = self._frames[0]
        # The instance attribute shadows nothing: ``append`` IS the
        # active segment's ``list.append``, re-bound on roll.
        self.append = self._active.append

    def roll(self) -> None:
        self._active = []
        self._frames.append(self._active)
        self.append = self._active.append

    def flush(self) -> int:
        """No durability to add; returns the number of fsyncs (0)."""
        return 0

    def active_size(self) -> int:
        return sum(len(data) for data in self._active)

    @property
    def segments(self) -> List[bytes]:
        """The segments as byte strings (joined on access)."""
        return [b"".join(frames) for frames in self._frames]

    def getvalue(self) -> bytes:
        """The whole log as one byte string (segments concatenated)."""
        return b"".join(
            data for frames in self._frames for data in frames
        )

    def close(self) -> None:
        pass


class FileWalSink:
    """One file per segment in *directory*; flush fsyncs the active file."""

    #: ``flush`` buys real durability (fsync); the writer must call it.
    DURABLE = True

    #: Segment file name pattern; sorting file names sorts segments.
    PATTERN = "wal-%08d.seg"

    def __init__(self, directory: str):
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        self._index = 0
        self._handle = open(self._path(self._index), "wb")
        self._active_size = 0

    def _path(self, index: int) -> str:
        return os.path.join(self.directory, self.PATTERN % index)

    def append(self, data: bytes) -> None:
        self._handle.write(data)
        self._active_size += len(data)

    def roll(self) -> None:
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._handle.close()
        self._index += 1
        self._handle = open(self._path(self._index), "wb")
        self._active_size = 0

    def flush(self) -> int:
        self._handle.flush()
        os.fsync(self._handle.fileno())
        return 1

    def active_size(self) -> int:
        return self._active_size

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._handle.close()


class GroupCommitSink(FileWalSink):
    """A :class:`FileWalSink` that coalesces fsyncs across flushers.

    Plain ``FileWalSink`` pays one fsync per top-level commit.  Under
    many concurrent committers (the async service, the sharded
    coordinator's decision log) most of those fsyncs cover each other:
    any fsync that happens after an append makes it durable.  This
    sink runs one background syncer thread; ``flush`` becomes *take a
    ticket for everything appended so far, wake the syncer, wait until
    a group fsync covers the ticket*.  Committers whose tickets land
    within ``window_ms`` of each other share one fsync.

    The split API lets callers wait without holding their own locks:

    * :meth:`flush_begin` -- snapshot the ticket and nudge the syncer
      (cheap; safe under a lock);
    * :meth:`flush_wait` -- block until the ticket is durable (call
      *outside* the lock so other committers can reach their own
      ``flush_begin`` and join the group).

    Appends must be externally serialized (they are: the WAL writer's
    lock, or the decision log's), exactly as for ``FileWalSink``.
    ``flush``/``roll``/``close`` stay synchronous and durable, so the
    sink is a drop-in replacement.
    """

    #: Default coalescing window (milliseconds).
    DEFAULT_WINDOW_MS = 2.0

    def __init__(self, directory: str, window_ms: float = DEFAULT_WINDOW_MS):
        super().__init__(directory)
        self._window_s = max(0.0, float(window_ms)) / 1000.0
        self._cv = threading.Condition()
        self._seq = 0  # appends so far (the ticket source)
        self._synced = 0  # highest ticket covered by a finished fsync
        self._fsyncs = 0
        self._stopping = False
        self._syncer = threading.Thread(
            target=self._sync_loop,
            name="repro-wal-group-sync",
            daemon=True,
        )
        self._syncer.start()

    @property
    def fsync_count(self) -> int:
        """Fsyncs actually issued (the writer reports this figure)."""
        return self._fsyncs

    def append(self, data: bytes) -> None:
        super().append(data)
        # The write above happens-before this publish, so a ticket
        # equal to the new _seq covers it.
        self._seq += 1

    def flush_begin(self) -> int:
        """Snapshot the durability target and wake the syncer."""
        with self._cv:
            ticket = self._seq
            self._cv.notify_all()
        return ticket

    def flush_wait(self, ticket: int) -> None:
        """Block until a group fsync has covered *ticket*."""
        with self._cv:
            while self._synced < ticket:
                if self._stopping:
                    self._sync_locked(ticket)
                    return
                self._cv.wait()

    def flush(self) -> int:
        """Synchronous durable flush; returns fsyncs newly issued."""
        before = self._fsyncs
        self.flush_wait(self.flush_begin())
        return max(0, self._fsyncs - before)

    def roll(self) -> None:
        # Swap segments under the condition variable so the syncer
        # never fsyncs a mid-swap handle.
        with self._cv:
            self._sync_locked(self._seq)
            super().roll()

    def close(self) -> None:
        with self._cv:
            self._stopping = True
            self._cv.notify_all()
        self._syncer.join(timeout=5.0)
        super().close()

    def _sync_locked(self, target: int) -> None:
        """One flush+fsync covering *target*; caller holds the cv."""
        try:
            self._handle.flush()
            os.fsync(self._handle.fileno())
        except ValueError:
            return  # closed underneath us (shutdown race)
        self._fsyncs += 1
        if target > self._synced:
            self._synced = target
        self._cv.notify_all()

    def _sync_loop(self) -> None:
        cv = self._cv
        while True:
            with cv:
                while self._synced >= self._seq:
                    if self._stopping:
                        return
                    cv.wait()
                if self._window_s and not self._stopping:
                    # Let more committers reach flush_begin and share
                    # the fsync about to happen.
                    cv.wait(self._window_s)
                self._sync_locked(self._seq)


def read_log_bytes(path: str) -> bytes:
    """Read a log back as one byte string.

    *path* may be a single log file or a :class:`FileWalSink`
    directory; segment files concatenate in name order (the writer
    numbers them monotonically).
    """
    if os.path.isdir(path):
        parts = []
        for name in sorted(os.listdir(path)):
            if name.startswith("wal-") and name.endswith(".seg"):
                with open(os.path.join(path, name), "rb") as handle:
                    parts.append(handle.read())
        if not parts:
            raise EngineError("no wal-*.seg segments under %r" % path)
        return b"".join(parts)
    with open(path, "rb") as handle:
        return handle.read()


class WriteAheadLog:
    """Frames engine transitions into an append-only segmented log.

    Parameters
    ----------
    sink:
        A :class:`MemoryWalSink` (default) or :class:`FileWalSink`.
    segment_bytes:
        Roll to a new segment (writing a fresh header) once the active
        segment exceeds this size.
    observer:
        Optional :class:`repro.obs.Observer`; receives the ``wal.*``
        counters and histograms through its generic instruments.
    """

    def __init__(
        self,
        sink=None,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        observer=None,
    ):
        if segment_bytes < 1:
            raise EngineError(
                "segment_bytes must be >= 1, got %d" % segment_bytes
            )
        self.sink = sink if sink is not None else MemoryWalSink()
        self.segment_bytes = segment_bytes
        self.obs = observer
        self._lock = threading.Lock()
        # Bound methods: the event API runs per engine transition and
        # a ``with`` block (plus a layer of dispatch) costs a
        # surprising amount next to ~2us of encoding work.
        self._acquire_lock = self._lock.acquire
        self._release_lock = self._lock.release
        self._sink_append = self.sink.append
        self._lsn = 0
        self._segment = 0
        self._opened = False
        self._closed = False
        self._writable = False  # opened and not closed
        self._scheme = ""
        self._objects: List[Tuple[str, str]] = []
        # Hot-path counters are plain ints (``stats`` builds the dict
        # on demand); the writer tracks the active segment size itself
        # so appends skip a sink call.
        self._active_bytes = 0
        self._n_appends = 0
        self._n_bytes = 0
        self._n_flushes = 0
        self._n_fsyncs = 0
        self._n_rolls = 0

    @property
    def stats(self) -> Dict[str, int]:
        """Writer counters (appends, bytes, flushes, fsyncs, rolls)."""
        return {
            "appends": self._n_appends,
            "bytes": self._n_bytes,
            "flushes": self._n_flushes,
            "fsyncs": self._n_fsyncs,
            "segment_rolls": self._n_rolls,
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def lsn(self) -> int:
        """The last assigned log sequence number (0 = nothing logged)."""
        return self._lsn

    def open(self, scheme: str, specs) -> None:
        """Write the first segment header; called by ``attach_wal``.

        *specs* are the engine's object specs; their names and ADT
        class names go into the header so a log is self-describing
        (``repro recover`` rebuilds the store from it).  Idempotent
        for the same scheme; re-opening for a different engine is an
        error -- one log describes one engine's history.
        """
        with self._lock:
            objects = [
                (spec.name, type(spec).__name__) for spec in specs
            ]
            if self._opened:
                if self._scheme != scheme or self._objects != objects:
                    raise EngineError(
                        "write-ahead log already opened for scheme %r"
                        % self._scheme
                    )
                return
            self._scheme = scheme
            self._objects = objects
            self._opened = True
            self._writable = True
            self._append_locked(
                rec.SEGMENT,
                rec.segment_payload(
                    self._next_lsn(), self._segment, scheme, objects
                ),
            )

    def close(self) -> None:
        """Flush and close the sink (further appends are errors)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._writable = False
            self.sink.flush()
            self.sink.close()

    # ------------------------------------------------------------------
    # Event API (called by the engine under its own locks)
    #
    # These bodies are deliberately flat: encode, frame, append and
    # count run inline with no helper calls on the common shapes.  The
    # calls arrive interleaved with ~60us of engine work per
    # transaction, so every extra Python frame executes cold and costs
    # several times its tight-loop price; the overhead guard (bench
    # E22) holds the whole path under 20% of commit throughput.
    # Byte-compatibility with ``encode_record`` is pinned by
    # ``tests/wal/test_format.py::TestWriterMatchesEncodeRecord``.
    # ------------------------------------------------------------------
    def log_begin(self, name) -> None:
        self._acquire_lock()
        try:
            if not self._writable:
                self._refuse_locked()
            lsn = self._lsn = self._lsn + 1
            body = None
            count = len(name)
            if count == 1:
                n0 = name[0]
                if type(n0) is int:
                    body = _BEGIN1 % (lsn, n0)
            elif count == 2:
                n0 = name[0]
                n1 = name[1]
                if type(n0) is int and type(n1) is int:
                    body = _BEGIN2 % (lsn, n0, n1)
            elif count == 3:
                n0 = name[0]
                n1 = name[1]
                n2 = name[2]
                if (
                    type(n0) is int
                    and type(n1) is int
                    and type(n2) is int
                ):
                    body = _BEGIN3 % (lsn, n0, n1, n2)
            if body is None:
                self._put_locked(
                    encode_txn_record(rec.BEGIN, lsn, name), rec.BEGIN
                )
                return
            length = len(body)
            if length < 0x80:
                size = length + 5
                self._sink_append(
                    _BYTE[length]
                    + body
                    + (crc32(body) & 0xFFFFFFFF).to_bytes(4, "little")
                )
            else:
                frame = (
                    encode_varint(length)
                    + body
                    + (crc32(body) & 0xFFFFFFFF).to_bytes(4, "little")
                )
                size = len(frame)
                self._sink_append(frame)
            self._n_appends += 1
            self._n_bytes += size
            active = self._active_bytes = self._active_bytes + size
            obs = self.obs
            if obs is not None:
                obs.count("wal.append", kind="begin")
                obs.observe("wal.append_bytes", float(size))
            if active >= self.segment_bytes:
                self._roll_locked()
        finally:
            self._release_lock()

    def log_acquire(
        self, access, object_name: str, operation, generation: int
    ) -> None:
        self._acquire_lock()
        try:
            if not self._writable:
                self._refuse_locked()
            lsn = self._lsn = self._lsn + 1
            head = None
            count = len(access)
            if count == 1:
                a0 = access[0]
                if type(a0) is int:
                    head = _ACQ1 % (a0, generation, lsn)
            elif count == 2:
                a0 = access[0]
                a1 = access[1]
                if type(a0) is int and type(a1) is int:
                    head = _ACQ2 % (a0, a1, generation, lsn)
            elif count == 3:
                a0 = access[0]
                a1 = access[1]
                a2 = access[2]
                if (
                    type(a0) is int
                    and type(a1) is int
                    and type(a2) is int
                ):
                    head = _ACQ3 % (a0, a1, a2, generation, lsn)
            if head is None:
                self._put_locked(
                    encode_acquire_record(
                        lsn, access, object_name, operation, generation
                    ),
                    rec.ACQUIRE,
                )
                return
            entry = _TAILS.get((id(operation), object_name))
            if entry is not None and entry[0] is operation:
                body = head + entry[1]
            else:
                tail = _acquire_tail(object_name, operation).encode()
                if len(_TAILS) < _TAILS_LIMIT:
                    _TAILS[(id(operation), object_name)] = (
                        operation,
                        tail,
                    )
                body = head + tail
            length = len(body)
            if length < 0x80:
                size = length + 5
                self._sink_append(
                    _BYTE[length]
                    + body
                    + (crc32(body) & 0xFFFFFFFF).to_bytes(4, "little")
                )
            else:
                frame = (
                    encode_varint(length)
                    + body
                    + (crc32(body) & 0xFFFFFFFF).to_bytes(4, "little")
                )
                size = len(frame)
                self._sink_append(frame)
            self._n_appends += 1
            self._n_bytes += size
            active = self._active_bytes = self._active_bytes + size
            obs = self.obs
            if obs is not None:
                obs.count("wal.append", kind="acquire")
                obs.observe("wal.append_bytes", float(size))
            if active >= self.segment_bytes:
                self._roll_locked()
        finally:
            self._release_lock()

    def log_commit(self, name) -> None:
        self._acquire_lock()
        try:
            if not self._writable:
                self._refuse_locked()
            lsn = self._lsn = self._lsn + 1
            body = None
            count = len(name)
            if count == 1:
                n0 = name[0]
                if type(n0) is int:
                    body = _COMMIT1 % (lsn, n0)
            elif count == 2:
                n0 = name[0]
                n1 = name[1]
                if type(n0) is int and type(n1) is int:
                    body = _COMMIT2 % (lsn, n0, n1)
            elif count == 3:
                n0 = name[0]
                n1 = name[1]
                n2 = name[2]
                if (
                    type(n0) is int
                    and type(n1) is int
                    and type(n2) is int
                ):
                    body = _COMMIT3 % (lsn, n0, n1, n2)
            if body is None:
                self._put_locked(
                    encode_txn_record(rec.COMMIT, lsn, name), rec.COMMIT
                )
                return
            length = len(body)
            if length < 0x80:
                size = length + 5
                self._sink_append(
                    _BYTE[length]
                    + body
                    + (crc32(body) & 0xFFFFFFFF).to_bytes(4, "little")
                )
            else:
                frame = (
                    encode_varint(length)
                    + body
                    + (crc32(body) & 0xFFFFFFFF).to_bytes(4, "little")
                )
                size = len(frame)
                self._sink_append(frame)
            self._n_appends += 1
            self._n_bytes += size
            active = self._active_bytes = self._active_bytes + size
            obs = self.obs
            if obs is not None:
                obs.count("wal.append", kind="commit")
                obs.observe("wal.append_bytes", float(size))
            if active >= self.segment_bytes:
                self._roll_locked()
        finally:
            self._release_lock()

    def log_abort(self, name) -> None:
        self._acquire_lock()
        try:
            if not self._writable:
                self._refuse_locked()
            lsn = self._lsn = self._lsn + 1
            body = None
            count = len(name)
            if count == 1:
                n0 = name[0]
                if type(n0) is int:
                    body = _ABORT1 % (lsn, n0)
            elif count == 2:
                n0 = name[0]
                n1 = name[1]
                if type(n0) is int and type(n1) is int:
                    body = _ABORT2 % (lsn, n0, n1)
            elif count == 3:
                n0 = name[0]
                n1 = name[1]
                n2 = name[2]
                if (
                    type(n0) is int
                    and type(n1) is int
                    and type(n2) is int
                ):
                    body = _ABORT3 % (lsn, n0, n1, n2)
            if body is None:
                self._put_locked(
                    encode_txn_record(rec.ABORT, lsn, name), rec.ABORT
                )
                return
            length = len(body)
            if length < 0x80:
                size = length + 5
                self._sink_append(
                    _BYTE[length]
                    + body
                    + (crc32(body) & 0xFFFFFFFF).to_bytes(4, "little")
                )
            else:
                frame = (
                    encode_varint(length)
                    + body
                    + (crc32(body) & 0xFFFFFFFF).to_bytes(4, "little")
                )
                size = len(frame)
                self._sink_append(frame)
            self._n_appends += 1
            self._n_bytes += size
            active = self._active_bytes = self._active_bytes + size
            obs = self.obs
            if obs is not None:
                obs.count("wal.append", kind="abort")
                obs.observe("wal.append_bytes", float(size))
            if active >= self.segment_bytes:
                self._roll_locked()
        finally:
            self._release_lock()

    def flush(self) -> None:
        """Force the log durable (top-level commits are flush points).

        With a group-commit sink the wait happens *outside* the
        writer's lock: the ticket is taken under it (so it covers this
        committer's appends), then the lock is released while the
        group fsync completes -- concurrent committers reach their own
        tickets and share the fsync instead of queueing one each.
        """
        sink = self.sink
        flush_begin = getattr(sink, "flush_begin", None)
        if flush_begin is not None:
            self._acquire_lock()
            try:
                ticket = flush_begin()
                self._n_flushes += 1
            finally:
                self._release_lock()
            sink.flush_wait(ticket)
            fsyncs = 0
            self._acquire_lock()
            try:
                issued = sink.fsync_count
                if issued > self._n_fsyncs:
                    fsyncs = issued - self._n_fsyncs
                    self._n_fsyncs = issued
            finally:
                self._release_lock()
        else:
            self._acquire_lock()
            try:
                # A non-durable sink (``DURABLE = False``) has nothing
                # to add; unknown sinks are flushed to be safe.
                if getattr(sink, "DURABLE", True):
                    fsyncs = sink.flush()
                else:
                    fsyncs = 0
                self._n_flushes += 1
                self._n_fsyncs += fsyncs
            finally:
                self._release_lock()
        obs = self.obs
        if obs is not None:
            obs.count("wal.flush")
            if fsyncs:
                obs.count("wal.fsync", fsyncs)

    def flush_async(self):
        """Take a flush ticket now; return a waiter to call later.

        The seam group commit needs: callers holding coarse locks (the
        thread-safe facade commits under its mutex plus stripe set) take
        the ticket *inside* the critical section -- it covers every
        append made so far -- and run the returned waiter *after*
        releasing their locks, so concurrent committers' waits overlap
        and share one fsync.  With a plain (non-group) sink there is
        nothing to overlap; the flush happens inline here and ``None``
        is returned.
        """
        sink = self.sink
        flush_begin = getattr(sink, "flush_begin", None)
        if flush_begin is None:
            self.flush()
            return None
        self._acquire_lock()
        try:
            ticket = flush_begin()
            self._n_flushes += 1
        finally:
            self._release_lock()

        def waiter() -> None:
            sink.flush_wait(ticket)
            fsyncs = 0
            self._acquire_lock()
            try:
                issued = sink.fsync_count
                if issued > self._n_fsyncs:
                    fsyncs = issued - self._n_fsyncs
                    self._n_fsyncs = issued
            finally:
                self._release_lock()
            obs = self.obs
            if obs is not None:
                obs.count("wal.flush")
                if fsyncs:
                    obs.count("wal.fsync", fsyncs)

        return waiter

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _next_lsn(self) -> int:
        self._lsn += 1
        return self._lsn

    def _append_locked(self, kind: int, payload: Dict[str, Any]) -> None:
        self._write_locked(kind, rec.encode_record(kind, payload))

    def _write_locked(self, kind: int, frame: bytes) -> None:
        if not self._writable:
            self._refuse_locked()
        self._put_locked(frame, kind)

    def _put_locked(self, frame: bytes, kind: int) -> None:
        self._sink_append(frame)
        size = len(frame)
        self._n_appends += 1
        self._n_bytes += size
        active = self._active_bytes = self._active_bytes + size
        obs = self.obs
        if obs is not None:
            obs.count("wal.append", kind=rec.KIND_NAMES[kind])
            obs.observe("wal.append_bytes", float(size))
        if active >= self.segment_bytes and kind != rec.SEGMENT:
            self._roll_locked()

    def _refuse_locked(self) -> None:
        if self._closed:
            raise EngineError("write-ahead log is closed")
        raise EngineError(
            "write-ahead log not opened; attach it to an engine"
        )

    def _roll_locked(self) -> None:
        self.sink.flush()
        self.sink.roll()
        self._sink_append = self.sink.append
        self._segment += 1
        self._active_bytes = 0
        self._n_rolls += 1
        obs = self.obs
        if obs is not None:
            obs.count("wal.segment_roll")
        self._append_locked(
            rec.SEGMENT,
            rec.segment_payload(
                self._next_lsn(),
                self._segment,
                self._scheme,
                self._objects,
            ),
        )
