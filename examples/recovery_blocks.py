"""Recovery blocks: the System R savepoint pattern, recovered from nesting.

The paper's introduction points at System R as "a primitive example" of
nested transactions: "a recovery block can be aborted and the transaction
restarted at the last savepoint."  This example runs a small order-
processing pipeline where each stage is a recovery block: a failing stage
rolls back to its savepoint and retries with degraded parameters, while
completed stages' work is never redone.

Run:  python examples/recovery_blocks.py
"""

from repro.adt import BankAccount, Counter, FifoQueue
from repro.checking import check_engine_trace
from repro.engine import Engine, SavepointSession


def process_order(engine, order_id, amount):
    """One order: charge -> reserve stock -> enqueue shipment.

    The charge stage retries at its savepoint with a smaller amount
    (partial shipment) when funds are short; the whole order aborts only
    if even the minimum charge fails.
    """
    session = SavepointSession(engine.begin_top())
    charged = None

    mark = session.savepoint()
    for attempt_amount in (amount, amount // 2, 10):
        ok = session.perform(
            "customer", BankAccount.withdraw(attempt_amount)
        )
        if ok:
            charged = attempt_amount
            break
        # The failed charge attempt (and anything else since the mark)
        # vanishes; the earlier stages' work would be preserved.
        session.rollback_to(mark)
    if charged is None:
        session.abort()
        return None

    session.perform("stock", Counter.decrement(1))
    session.perform("shipments", FifoQueue.enqueue((order_id, charged)))
    session.commit("order-%d" % order_id)
    return charged


def main():
    engine = Engine(
        [
            BankAccount("customer", 250),
            Counter("stock", initial=10),
            FifoQueue("shipments"),
        ],
        trace=True,
    )
    results = []
    for order_id, amount in enumerate([100, 100, 100, 100]):
        charged = process_order(engine, order_id, amount)
        results.append(charged)
        print(
            "order %d: %s"
            % (
                order_id,
                "charged %d" % charged if charged else "aborted",
            )
        )

    balance = engine.object_value("customer")
    shipments = engine.object_value("shipments")
    print("final balance: %d, shipments: %s" % (balance, shipments))
    # 100 + 100 + 50 (degraded) + 10 (minimum) = 260 > 250, so the
    # degradation ladder matters: verify money accounting exactly.
    total_charged = sum(charge for charge in results if charge)
    assert balance == 250 - total_charged
    assert len(shipments) == sum(1 for charge in results if charge)
    assert engine.object_value("stock") == 10 - len(shipments)

    conformance = check_engine_trace(engine)
    print(
        "trace of %d events refines Moss' model: %s"
        % (conformance.trace_length, conformance.ok)
    )
    assert conformance.ok
    print("recovery blocks example OK")


if __name__ == "__main__":
    main()
